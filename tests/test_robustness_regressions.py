"""Regression tests for runner/replayer edge cases fixed alongside the
trace-mode fast path: empty-run per-shard means, REPRO_REQUESTS
validation, replay-schedule seeding, and the degenerate behaviors of the
median-window stack means.
"""

import numpy as np
import pytest

from repro.analysis.quantiles import median_window_mean, median_window_mean_columns
from repro.experiments import default_num_requests
from repro.experiments.runner import REQUESTS_ENV, RunResult
from repro.models import drm1
from repro.requests import ReplaySchedule
from repro.sharding import singular_plan


class TestEmptyRunResult:
    """A run that completed zero requests must degrade, not divide by zero."""

    @pytest.fixture()
    def empty_result(self):
        model = drm1()
        return RunResult(model.name, "singular", singular_plan(model))

    def test_mean_per_shard_op_time_empty(self, empty_result):
        assert empty_result.mean_per_shard_op_time() == {}

    def test_mean_per_shard_net_op_time_empty(self, empty_result):
        assert empty_result.mean_per_shard_net_op_time() == {}

    def test_len_and_columns_empty(self, empty_result):
        assert len(empty_result) == 0
        assert empty_result.e2e.size == 0
        for kind in ("latency", "embedded", "cpu"):
            for column in empty_result.stack_columns(kind).values():
                assert column.size == 0


class TestDefaultNumRequests:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(REQUESTS_ENV, raising=False)
        assert default_num_requests() == 200

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv(REQUESTS_ENV, "123")
        assert default_num_requests() == 123

    @pytest.mark.parametrize("bad", ["", "ten", "12.5", "1e3"])
    def test_malformed_value_names_variable_and_value(self, monkeypatch, bad):
        monkeypatch.setenv(REQUESTS_ENV, bad)
        with pytest.raises(ValueError, match=REQUESTS_ENV) as excinfo:
            default_num_requests()
        assert repr(bad) in str(excinfo.value)

    @pytest.mark.parametrize("bad", ["0", "-5"])
    def test_non_positive_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(REQUESTS_ENV, bad)
        with pytest.raises(ValueError, match=f"{REQUESTS_ENV} must be >= 1"):
            default_num_requests()


class TestReplayScheduleSeeding:
    def test_int_and_float_qps_replay_identically(self):
        int_times = ReplaySchedule.open_loop(25).arrival_times(500)
        float_times = ReplaySchedule.open_loop(25.0).arrival_times(500)
        assert np.array_equal(int_times, float_times)

    def test_numpy_scalar_qps_normalized(self):
        np_times = ReplaySchedule.open_loop(np.float64(25.0)).arrival_times(200)
        py_times = ReplaySchedule.open_loop(25.0).arrival_times(200)
        assert np.array_equal(np_times, py_times)
        assert type(ReplaySchedule.open_loop(np.float64(25.0)).qps) is float

    def test_different_rates_still_diverge(self):
        a = ReplaySchedule.open_loop(25.0).arrival_times(100)
        b = ReplaySchedule.open_loop(26.0).arrival_times(100)
        assert not np.array_equal(a, b)

    def test_schedules_compare_equal_across_spellings(self):
        assert ReplaySchedule.open_loop(25) == ReplaySchedule.open_loop(25.0)


class TestMedianWindowMeanEquivalence:
    """Pin the columnar and row-oriented medians to each other on the
    degenerate inputs where their fallbacks must agree."""

    BUCKETS = ("a", "b")

    def _both(self, values, keys, **kwargs):
        samples = [
            {bucket: float(row[i]) for i, bucket in enumerate(self.BUCKETS)}
            for row in values
        ]
        columns = {
            bucket: np.asarray([row[i] for row in values], dtype=float)
            for i, bucket in enumerate(self.BUCKETS)
        }
        rows_out = median_window_mean(samples, keys, **kwargs)
        cols_out = median_window_mean_columns(columns, keys, **kwargs)
        return rows_out, cols_out

    def test_single_request(self):
        rows_out, cols_out = self._both([(1.5, 2.5)], [3.0])
        assert rows_out == cols_out == {"a": 1.5, "b": 2.5}

    def test_constant_keys_select_everything(self):
        values = [(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)]
        rows_out, cols_out = self._both(values, [7.0, 7.0, 7.0])
        assert rows_out == pytest.approx(cols_out)
        assert rows_out == pytest.approx({"a": 3.0, "b": 4.0})

    def test_empty_window_falls_back_to_all_samples(self):
        """An inverted percentile window selects nothing; both paths must
        fall back to averaging every sample."""
        values = [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        keys = [1.0, 2.0, 3.0, 4.0]
        rows_out, cols_out = self._both(values, keys, lo_pct=90.0, hi_pct=10.0)
        assert rows_out == pytest.approx(cols_out)
        assert rows_out == pytest.approx({"a": 2.5, "b": 25.0})

    def test_regular_window_agrees(self):
        rng = np.random.default_rng(11)
        values = [tuple(row) for row in rng.uniform(0, 1, size=(40, 2))]
        keys = list(rng.uniform(0, 1, size=40))
        rows_out, cols_out = self._both(values, keys)
        assert rows_out == pytest.approx(cols_out, rel=1e-12)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            median_window_mean([{"a": 1.0}], [1.0, 2.0])
        with pytest.raises(ValueError):
            median_window_mean_columns({"a": np.ones(3)}, [1.0, 2.0])

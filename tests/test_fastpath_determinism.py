"""Determinism regression tests for the simulation fast path.

The fast path must be *exactly* the slow path, faster:

* the vectorized bulk request generator and the scalar reference path
  must draw identical requests from the same seed;
* a parallel sweep must be byte-identical to a serial one (same e2e/cpu
  arrays, same attribution stacks) for the same settings;
* pooling-factor memoization must not change estimates;
* columnar ``RunResult`` storage must agree with the retained
  per-request attributions.
"""

import numpy as np
import pytest

from repro.experiments import (
    SuiteSettings,
    run_suite,
    run_suite_parallel,
)
from repro.models import drm1, drm3
from repro.requests import RequestGenerator
from repro.requests.generator import _DAY_SECONDS
from repro.serving import ServingConfig
from repro.sharding import estimate_pooling_factors
from repro.sharding.pooling import clear_pooling_cache

SETTINGS = SuiteSettings(
    num_requests=25, pooling_requests=120, serving=ServingConfig(seed=1)
)


def _assert_requests_equal(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.request_id == rb.request_id
        assert ra.timestamp == rb.timestamp
        assert ra.num_items == rb.num_items
        assert set(ra.draws) == set(rb.draws)
        for name, da in ra.draws.items():
            db = rb.draws[name]
            assert da.total_ids == db.total_ids
            if da.per_item_counts is None:
                assert db.per_item_counts is None
            else:
                assert np.array_equal(da.per_item_counts, db.per_item_counts)


class TestGeneratorEquivalence:
    @pytest.mark.parametrize("model_factory", [drm1, drm3])
    def test_vectorized_matches_scalar(self, model_factory):
        """Bulk numpy draws consume each substream exactly like the
        scalar reference path."""
        model = model_factory()
        vectorized = RequestGenerator(model, seed=3).generate_many(60)
        timestamps = np.linspace(0.0, 5.0 * _DAY_SECONDS, 60, endpoint=False)
        scalar_gen = RequestGenerator(model, seed=3)
        scalar = [
            scalar_gen.generate(i, float(t)) for i, t in enumerate(timestamps)
        ]
        _assert_requests_equal(vectorized, scalar)

    def test_generate_many_is_stable_across_calls(self):
        model = drm1()
        _assert_requests_equal(
            RequestGenerator(model, seed=7).generate_many(30),
            RequestGenerator(model, seed=7).generate_many(30),
        )

    def test_table_totals_matches_generated_requests(self):
        model = drm1()
        totals = RequestGenerator(model, seed=5).table_totals(40)
        requests = RequestGenerator(model, seed=5).generate_many(40)
        observed = {table.name: 0.0 for table in model.tables}
        for request in requests:
            for draw in request.draws.values():
                observed[draw.table_name] += draw.total_ids
        assert totals == observed


class TestPoolingMemoization:
    def test_memoized_estimate_is_equal_and_copied(self):
        model = drm1()
        clear_pooling_cache()
        first = estimate_pooling_factors(model, num_requests=80, seed=9)
        second = estimate_pooling_factors(model, num_requests=80, seed=9)
        assert first == second
        # Callers receive independent dicts: mutating one result must not
        # poison the cache.
        first[next(iter(first))] = -1.0
        assert estimate_pooling_factors(model, num_requests=80, seed=9) == second

    def test_distinct_keys_not_conflated(self):
        model = drm1()
        a = estimate_pooling_factors(model, num_requests=80, seed=9)
        b = estimate_pooling_factors(model, num_requests=81, seed=9)
        c = estimate_pooling_factors(model, num_requests=80, seed=10)
        assert a != b and a != c


class TestParallelSerialIdentity:
    @pytest.fixture(scope="class")
    def serial_results(self):
        return run_suite(drm1(), SETTINGS)

    def test_parallel_matches_serial_exactly(self, serial_results):
        parallel_results = run_suite_parallel(drm1(), SETTINGS, max_workers=2)
        assert list(parallel_results) == list(serial_results)
        for label, serial in serial_results.items():
            parallel = parallel_results[label]
            assert np.array_equal(serial.e2e, parallel.e2e), label
            assert np.array_equal(serial.cpu, parallel.cpu), label
            for kind in ("latency", "embedded", "cpu"):
                serial_cols = serial.stack_columns(kind)
                parallel_cols = parallel.stack_columns(kind)
                assert serial_cols.keys() == parallel_cols.keys()
                for bucket in serial_cols:
                    assert np.array_equal(
                        serial_cols[bucket], parallel_cols[bucket]
                    ), (label, kind, bucket)
            for a, b in zip(serial.attributions, parallel.attributions):
                assert a.latency_stack == b.latency_stack
                assert a.embedded_stack == b.embedded_stack
                assert a.cpu_stack == b.cpu_stack
                assert a.per_shard_op_time == b.per_shard_op_time

    def test_in_process_fallback_matches(self, serial_results):
        fallback = run_suite_parallel(drm1(), SETTINGS, max_workers=1)
        for label, serial in serial_results.items():
            assert np.array_equal(serial.e2e, fallback[label].e2e), label


class TestColumnarRunResult:
    @pytest.fixture(scope="class")
    def result(self):
        results = run_suite(drm1(), SETTINGS)
        return results["load-bal 2 shards"]

    def test_columns_match_attributions(self, result):
        assert len(result) == len(result.attributions) == 25
        assert np.array_equal(
            result.e2e, np.array([a.e2e for a in result.attributions])
        )
        assert np.array_equal(
            result.cpu, np.array([a.cpu_total for a in result.attributions])
        )
        columns = result.stack_columns("latency")
        for i, attribution in enumerate(result.attributions):
            for bucket, value in attribution.latency_stack.items():
                assert columns[bucket][i] == value

    def test_embedded_totals_match(self, result):
        expected = np.array([a.embedded_total for a in result.attributions])
        assert np.allclose(result.embedded_totals, expected, rtol=1e-12, atol=0.0)

    def test_row_views_rebuild_equal_dicts(self, result):
        stacks = result.cpu_stacks()
        assert len(stacks) == 25
        for stack, attribution in zip(stacks, result.attributions):
            assert stack == attribution.cpu_stack

    def test_growth_beyond_initial_capacity(self):
        small = SuiteSettings(
            num_requests=40, pooling_requests=120, serving=ServingConfig(seed=1)
        )
        from repro.experiments import ShardingConfiguration, build_plan, run_configuration, suite_requests
        from repro.experiments.runner import RunResult

        model = drm1()
        requests = suite_requests(model, small)
        plan = build_plan(model, ShardingConfiguration("singular"))
        result = RunResult(model.name, plan.label, plan, expected_requests=4)
        from repro.serving.simulator import ClusterSimulation
        from repro.tracing.attribution import attribute_request

        cluster = ClusterSimulation(model, plan, ServingConfig(seed=1))
        cluster.on_complete = lambda rid: result.add(
            attribute_request(cluster.tracer.pop_request(rid))
        )
        cluster.run_serial(requests)
        assert len(result) == 40
        assert np.array_equal(
            result.e2e, np.array([a.e2e for a in result.attributions])
        )

"""DET002 good twin: generator construction goes through substream()."""

import numpy as np

from repro.core.rng import substream


def seeded_generator(seed: int) -> np.random.Generator:
    return substream(seed, "fixture-det002")

"""DET002 bad twin: unseeded generator drawn from OS entropy."""

import numpy as np


def fresh_generator() -> np.random.Generator:
    return np.random.default_rng()

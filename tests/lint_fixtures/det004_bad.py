"""DET004 bad twin: substream derivation under un-sorted dict iteration."""

import numpy as np

from repro.core.rng import substream


def per_table_streams(
    seed: int, tables: dict[str, int]
) -> dict[str, np.random.Generator]:
    streams = {}
    for name in tables.keys():
        streams[name] = substream(seed, "fixture-det004", name)
    return streams

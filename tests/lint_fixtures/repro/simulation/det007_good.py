"""DET007 good twin: the knob arrives through an explicit config."""


def tuned_worker_count(config: object) -> int:
    return int(getattr(config, "service_workers"))

"""DET007 bad twin: env read inside the simulation core scope."""

import os


def tuned_worker_count() -> int:
    return int(os.environ.get("REPRO_WORKERS", "4"))

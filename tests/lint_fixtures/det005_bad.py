"""DET005 bad twin: salted builtin hash() derives a stream key."""


def stream_key(table_name: str) -> int:
    return hash(table_name) & 0xFFFF

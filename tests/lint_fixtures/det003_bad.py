"""DET003 bad twin: wall-clock read in replayed code."""

import time


def arrival_timestamp() -> float:
    return time.time()

"""DET006 bad twin (site B): derives the same key path as site A."""

import numpy as np

from repro.core.rng import substream


def jitter_stream(seed: int) -> np.random.Generator:
    return substream(seed, "chaos", "spike")

"""DET006 good twin (site A): component-unique constant key prefix."""

import numpy as np

from repro.core.rng import substream


def spike_stream(seed: int) -> np.random.Generator:
    return substream(seed, "chaos-spike", "jitter")

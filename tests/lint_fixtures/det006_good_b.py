"""DET006 good twin (site B): a different prefix, a different stream."""

import numpy as np

from repro.core.rng import substream


def straggler_stream(seed: int) -> np.random.Generator:
    return substream(seed, "chaos-straggler", "jitter")

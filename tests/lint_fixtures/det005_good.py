"""DET005 good twin: SHA-256 key derivation, stable across processes."""

from repro.core.rng import derive_seed


def stream_key(table_name: str) -> int:
    return derive_seed(0, table_name) & 0xFFFF

"""DET001 bad twin: np.random module-level global-state draw."""

import numpy as np


def shuffle_rows(rows: "np.ndarray") -> None:
    np.random.shuffle(rows)

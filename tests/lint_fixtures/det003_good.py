"""DET003 good twin: time comes from the simulation engine."""


def arrival_timestamp(engine: object) -> float:
    return float(getattr(engine, "now"))

"""DET004 good twin: iteration order is pinned with sorted()."""

import numpy as np

from repro.core.rng import substream


def per_table_streams(
    seed: int, tables: dict[str, int]
) -> dict[str, np.random.Generator]:
    streams = {}
    for name in sorted(tables.keys()):
        streams[name] = substream(seed, "fixture-det004-good", name)
    return streams

"""DET006 bad twin (site A): clean alone, collides with site B."""

import numpy as np

from repro.core.rng import substream


def spike_stream(seed: int) -> np.random.Generator:
    return substream(seed, "chaos", "spike")

"""DET001 good twin: the draw comes from a named substream."""

import numpy as np

from repro.core.rng import substream


def shuffle_rows(rows: "np.ndarray", seed: int) -> None:
    substream(seed, "fixture-det001", "shuffle").shuffle(rows)

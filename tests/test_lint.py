"""Tests for the determinism linter (``repro.lint`` / ``repro lint``).

Covers the fixture corpus (each bad fixture triggers exactly its rule,
each good twin is clean), suppression-comment parsing (a reason is
mandatory), the DET006 cross-file key-path registry, path-scoped
allowlists, both reporters, CLI exit codes, and the self-lint gate that
keeps ``src/`` (and ``benchmarks``/``examples``) clean.
"""

import json
import os

import pytest

from repro.cli import main
from repro.lint import (
    AllowRule,
    LintConfig,
    RULES,
    discover_files,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.lint.registry import collision_findings
from repro.lint.rules import SubstreamKeySite

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")

#: Rules with a single-file bad/good fixture pair (DET006 is cross-file).
SINGLE_FILE_RULES = ("DET001", "DET002", "DET003", "DET004", "DET005", "DET007")

#: No allowlist: fixture findings must survive on their own terms.
BARE = LintConfig(allowlist=())


def fixture_path(name: str) -> str:
    # DET007 is path-scoped to the simulation core, so its fixtures live
    # under a repro/simulation/ subtree inside the corpus.
    if name.startswith("det007"):
        return os.path.join(FIXTURES, "repro", "simulation", f"{name}.py")
    return os.path.join(FIXTURES, f"{name}.py")


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule", SINGLE_FILE_RULES)
    def test_bad_fixture_triggers_exactly_its_rule(self, rule):
        report = lint_paths([fixture_path(f"{rule.lower()}_bad")], BARE)
        assert len(report.findings) == 1
        assert report.findings[0].rule == rule
        assert report.findings[0].message
        assert report.findings[0].suggestion

    @pytest.mark.parametrize("rule", SINGLE_FILE_RULES)
    def test_good_twin_is_clean(self, rule):
        report = lint_paths([fixture_path(f"{rule.lower()}_good")], BARE)
        assert report.findings == []

    def test_det006_sites_are_clean_alone(self):
        for name in ("det006_bad_a", "det006_bad_b"):
            assert lint_paths([fixture_path(name)], BARE).findings == []

    def test_det006_pair_collides_cross_file(self):
        report = lint_paths(
            [fixture_path("det006_bad_a"), fixture_path("det006_bad_b")], BARE
        )
        assert [finding.rule for finding in report.findings] == ["DET006", "DET006"]
        # Each site's message cross-references the other file.
        first, second = report.findings
        assert "det006_bad_b.py" in first.message
        assert "det006_bad_a.py" in second.message
        assert "'chaos', 'spike'" in first.message

    def test_det006_good_twins_use_distinct_prefixes(self):
        report = lint_paths(
            [fixture_path("det006_good_a"), fixture_path("det006_good_b")], BARE
        )
        assert report.findings == []

    def test_whole_corpus_covers_every_rule(self):
        report = lint_paths([FIXTURES], BARE)
        triggered = {finding.rule for finding in report.findings}
        assert triggered == set(SINGLE_FILE_RULES) | {"DET006"}
        # One finding per bad fixture, two for the DET006 pair.
        assert len(report.findings) == len(SINGLE_FILE_RULES) + 2

    def test_every_rule_is_registered(self):
        assert set(SINGLE_FILE_RULES) | {"DET000", "DET006"} == set(RULES)


class TestRuleDetection:
    """Spelling variants beyond the minimal fixtures, via lint_source."""

    def _rules(self, source, path="pkg/module.py"):
        findings, _ = lint_source(source, path)
        return [finding.rule for finding in findings]

    def test_stdlib_random_import_and_call(self):
        src = "import random\n\nx = random.random()\n"
        assert self._rules(src) == ["DET001", "DET001"]

    def test_from_random_import(self):
        assert self._rules("from random import shuffle\n") == ["DET001"]

    def test_np_random_alias_spellings(self):
        src = (
            "import numpy as np\n"
            "import numpy.random\n"
            "from numpy.random import rand\n"
            "a = np.random.seed(3)\n"
            "b = numpy.random.normal()\n"
            "c = rand(4)\n"
        )
        assert self._rules(src) == ["DET001", "DET001", "DET001"]

    def test_np_generator_annotation_is_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> np.random.Generator:\n"
            "    return rng\n"
        )
        assert self._rules(src) == []

    def test_unseeded_spellings(self):
        src = (
            "import numpy as np\n"
            "from numpy.random import default_rng\n"
            "a = np.random.default_rng()\n"
            "b = np.random.default_rng(None)\n"
            "c = default_rng(seed=None)\n"
            "d = np.random.Generator(np.random.PCG64())\n"
        )
        assert self._rules(src) == ["DET002", "DET002", "DET002", "DET002"]

    def test_seeded_construction_is_clean(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng(7)\n"
            "b = np.random.default_rng(seed=7)\n"
            "c = np.random.Generator(np.random.PCG64(7))\n"
        )
        assert self._rules(src) == []

    def test_rng_module_is_exempt_from_det001_and_det002(self):
        src = "import numpy as np\n\nx = np.random.default_rng()\n"
        assert self._rules(src, path="src/repro/core/rng.py") == []
        assert self._rules(src, path="src/repro/core/other.py") == ["DET002"]

    def test_wall_clock_spellings(self):
        src = (
            "import time\n"
            "from datetime import datetime\n"
            "from time import perf_counter\n"
            "a = time.monotonic()\n"
            "b = datetime.now()\n"
            "c = perf_counter()\n"
        )
        assert self._rules(src) == ["DET003", "DET003", "DET003"]

    def test_draw_under_set_literal_and_glob(self):
        src = (
            "import glob\n"
            "from repro.core.rng import substream\n"
            "def f(seed):\n"
            "    out = []\n"
            "    for tag in {'a', 'b'}:\n"
            "        out.append(substream(seed, 'k', tag))\n"
            "    for path in glob.glob('*.json'):\n"
            "        out.append(substream(seed, 'p', path))\n"
            "    return out\n"
        )
        assert self._rules(src) == ["DET004", "DET004"]

    def test_draw_in_comprehension_over_dict_view(self):
        src = (
            "from repro.core.rng import substream\n"
            "def f(seed, tables):\n"
            "    return [substream(seed, 'k', t) for t in tables.keys()]\n"
        )
        assert self._rules(src) == ["DET004"]

    def test_sorted_wrap_is_ordered(self):
        src = (
            "from repro.core.rng import substream\n"
            "def f(seed, tables):\n"
            "    return [substream(seed, 'k', t) for t in sorted(tables.keys())]\n"
        )
        assert self._rules(src) == []

    def test_enumerate_over_unordered_still_flagged(self):
        src = (
            "from repro.core.rng import substream\n"
            "def f(seed, names):\n"
            "    out = []\n"
            "    for i, n in enumerate(set(names)):\n"
            "        out.append(substream(seed, 'k', i, n))\n"
            "    return out\n"
        )
        assert self._rules(src) == ["DET004"]

    def test_non_draw_work_under_unordered_iteration_is_clean(self):
        src = (
            "def f(tables):\n"
            "    total = 0\n"
            "    for name in tables.keys():\n"
            "        total += len(name)\n"
            "    return total\n"
        )
        assert self._rules(src) == []

    def test_hash_in_dunder_hash_is_allowed(self):
        src = (
            "class Key:\n"
            "    def __hash__(self):\n"
            "        return hash(('key', 1))\n"
        )
        assert self._rules(src) == []
        assert self._rules("seed = hash('table')\n") == ["DET005"]

    def test_det007_is_scoped_to_simulation_core(self):
        src = "import os\n\nworkers = os.environ.get('W', '1')\n"
        assert self._rules(src, path="src/repro/serving/host.py") == ["DET007"]
        assert self._rules(src, path="src/repro/chaos/knobs.py") == ["DET007"]
        assert self._rules(src, path="src/repro/analysis/knobs.py") == []

    def test_det007_getenv_and_from_import(self):
        src = (
            "from os import environ, getenv\n"
            "a = environ['X']\n"
            "b = getenv('Y')\n"
        )
        assert self._rules(src, path="src/repro/simulation/knobs.py") == [
            "DET007",
            "DET007",
        ]

    def test_syntax_error_reports_det000(self):
        assert self._rules("def broken(:\n") == ["DET000"]


class TestSuppressions:
    def _findings(self, source, path="pkg/module.py"):
        return lint_source(source, path)[0]

    def test_reasoned_suppression_silences_the_finding(self):
        src = (
            "import time\n"
            "t = time.time()  # detlint: disable=DET003 -- host profiling stamp\n"
        )
        assert self._findings(src) == []

    def test_missing_reason_is_rejected_and_suppresses_nothing(self):
        src = "import time\n\nt = time.time()  # detlint: disable=DET003\n"
        rules = sorted(finding.rule for finding in self._findings(src))
        assert rules == ["DET000", "DET003"]

    def test_empty_reason_is_rejected(self):
        src = "import time\n\nt = time.time()  # detlint: disable=DET003 -- \n"
        rules = sorted(finding.rule for finding in self._findings(src))
        assert rules == ["DET000", "DET003"]

    def test_unknown_rule_id_is_rejected(self):
        src = "x = 1  # detlint: disable=DET999 -- not a rule\n"
        findings = self._findings(src)
        assert [finding.rule for finding in findings] == ["DET000"]
        assert "DET999" in findings[0].message

    def test_det000_cannot_be_suppressed(self):
        src = "x = 1  # detlint: disable=DET000 -- quiet the meta rule\n"
        assert [finding.rule for finding in self._findings(src)] == ["DET000"]

    def test_multi_rule_directive(self):
        src = (
            "import time\n"
            "import os\n"
            "t = (time.time(), os.getenv('X'))"
            "  # detlint: disable=DET003,DET007 -- host diagnostics\n"
        )
        assert self._findings(src, path="src/repro/simulation/diag.py") == []

    def test_suppression_only_covers_its_own_line(self):
        src = (
            "import time\n"
            "a = 1  # detlint: disable=DET003 -- wrong line\n"
            "t = time.time()\n"
        )
        assert [finding.rule for finding in self._findings(src)] == ["DET003"]

    def test_directive_inside_string_literal_is_ignored(self):
        src = "doc = '# detlint: disable=DET003'\n"
        assert self._findings(src) == []

    def test_det006_site_can_be_suppressed(self, tmp_path):
        site_a = tmp_path / "a.py"
        site_b = tmp_path / "b.py"
        site_a.write_text(
            "from repro.core.rng import substream\n"
            "s = substream(0, 'dup', 'key')\n"
        )
        site_b.write_text(
            "from repro.core.rng import substream\n"
            "s = substream(0, 'dup', 'key')"
            "  # detlint: disable=DET006 -- intentional shared stream\n"
        )
        report = lint_paths([str(site_a), str(site_b)], BARE)
        assert [finding.rule for finding in report.findings] == ["DET006"]
        assert report.findings[0].path.endswith("a.py")


class TestDet006Registry:
    def test_duplicate_in_one_file_is_flagged(self):
        src = (
            "from repro.core.rng import substream\n"
            "a = substream(0, 'chaos', 'spike')\n"
            "b = substream(0, 'chaos', 'spike')\n"
        )
        report_path = "pkg/module.py"
        findings, sites = lint_source(src, report_path)
        assert findings == []  # single-file rules see nothing
        collisions = collision_findings(list(sites))
        assert [finding.rule for finding in collisions] == ["DET006", "DET006"]
        assert {finding.line for finding in collisions} == {2, 3}

    def test_dynamic_tail_is_not_registered(self):
        src = (
            "from repro.core.rng import substream\n"
            "def f(seed, name):\n"
            "    return substream(seed, 'requests', name)\n"
        )
        _, sites = lint_source(src, "pkg/module.py")
        assert sites == []

    def test_distinct_constant_paths_do_not_collide(self):
        sites = [
            SubstreamKeySite(("'fabric'",), "a.py", 1, 0),
            SubstreamKeySite(("'cluster'",), "b.py", 1, 0),
        ]
        assert collision_findings(sites) == []


class TestConfigAndReporters:
    def test_allowlist_drops_matching_findings(self):
        config = LintConfig(allowlist=(AllowRule("DET003", "*det003_bad.py"),))
        report = lint_paths([fixture_path("det003_bad")], config)
        assert report.findings == []

    def test_allowlist_is_rule_specific(self):
        config = LintConfig(allowlist=(AllowRule("DET001", "*det003_bad.py"),))
        report = lint_paths([fixture_path("det003_bad")], config)
        assert [finding.rule for finding in report.findings] == ["DET003"]

    def test_allow_rule_parse(self):
        rule = AllowRule.parse("DET003:benchmarks/*")
        assert rule == AllowRule("DET003", "benchmarks/*")
        with pytest.raises(ValueError):
            AllowRule.parse("DET003")
        with pytest.raises(ValueError):
            AllowRule.parse(":benchmarks/*")

    def test_json_report_shape(self):
        report = lint_paths([fixture_path("det001_bad")], BARE)
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["files_linted"] == 1
        assert payload["counts"] == {"DET001": 1}
        finding = payload["findings"][0]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "suggestion",
        }

    def test_text_report_mentions_rule_titles(self):
        report = lint_paths([fixture_path("det001_bad")], BARE)
        text = render_text(report)
        assert "DET001" in text and "global-state RNG" in text

    def test_discovery_is_sorted_and_deduplicated(self):
        once = discover_files([FIXTURES, fixture_path("det001_bad")])
        assert once == sorted(once)
        assert len(once) == len(set(once))


class TestCli:
    @pytest.mark.parametrize(
        "name",
        [f"{rule.lower()}_bad" for rule in SINGLE_FILE_RULES],
    )
    def test_bad_fixture_exits_1(self, capsys, name):
        code = main(["lint", "--no-default-allow", fixture_path(name)])
        assert code == 1
        assert name.split("_")[0].upper() in capsys.readouterr().out

    def test_clean_tree_exits_0(self, capsys):
        code = main(["lint", fixture_path("det001_good")])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format_and_output_artifact(self, capsys, tmp_path):
        out = tmp_path / "lint_report.json"
        code = main(
            [
                "lint", "--format", "json", "--output", str(out),
                "--no-default-allow", fixture_path("det002_bad"),
            ]
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["counts"] == {"DET002": 1}
        assert json.loads(capsys.readouterr().out)["counts"] == {"DET002": 1}

    def test_cli_allow_flag(self, capsys):
        code = main(
            ["lint", "--allow", "DET003:*det003_bad.py", fixture_path("det003_bad")]
        )
        assert code == 0
        capsys.readouterr()

    def test_det006_pair_through_cli(self, capsys):
        code = main(
            [
                "lint", "--no-default-allow",
                fixture_path("det006_bad_a"), fixture_path("det006_bad_b"),
            ]
        )
        assert code == 1
        assert "DET006" in capsys.readouterr().out


class TestSelfLint:
    """The gate the tentpole exists for: the repo's own tree stays clean."""

    def test_src_is_clean(self):
        report = lint_paths([os.path.join(ROOT, "src")], LintConfig())
        assert report.findings == [], render_text(report)
        assert len(report.files) > 50

    def test_benchmarks_and_examples_are_clean(self, monkeypatch):
        # Relative paths so the default DET003 benchmarks/* allowlist
        # entry applies, exactly as CI invokes it.
        monkeypatch.chdir(ROOT)
        report = lint_paths(["benchmarks", "examples"], LintConfig())
        assert report.findings == [], render_text(report)

    def test_benchmarks_wall_clock_is_allowlisted_not_invisible(self, monkeypatch):
        monkeypatch.chdir(ROOT)
        report = lint_paths(["benchmarks"], LintConfig(allowlist=()))
        assert {finding.rule for finding in report.findings} == {"DET003"}

    def test_lint_is_deterministic(self):
        paths = [FIXTURES, os.path.join(ROOT, "src")]
        first = lint_paths(paths, BARE)
        second = lint_paths(paths, BARE)
        assert first.findings == second.findings
        assert first.files == second.files
        assert render_json(first) == render_json(second)

"""mypy gate over the determinism-critical packages (see mypy.ini).

The committed config types ``repro.core``, ``repro.tracing``,
``repro.chaos``, and ``repro.lint`` -- the packages a type confusion
could silently desynchronize (seed arithmetic, column dtypes, fault
schedules, the linter itself).  The baseline is clean; regressions fail
here and in the dedicated CI step.  Skipped when mypy is not installed
(the repo itself has no third-party dependencies beyond numpy; CI
installs mypy for this gate).
"""

import os

import pytest

pytest.importorskip("mypy.api", reason="mypy not installed; CI runs this gate")

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_mypy_clean_over_determinism_critical_packages(monkeypatch):
    from mypy import api

    monkeypatch.chdir(ROOT)  # mypy.ini 'files' entries are root-relative
    stdout, stderr, status = api.run(
        ["--config-file", os.path.join(ROOT, "mypy.ini")]
    )
    assert status == 0, f"mypy reported errors:\n{stdout}\n{stderr}"

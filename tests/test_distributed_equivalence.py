"""Integration + property tests: distributed execution == singular execution.

The paper's serving transformation must not change model outputs -- the
whole point of sharding is to relocate the embedding tables, not to alter
the math.  These tests partition materialized models with every strategy
and assert the scores match the unsharded forward pass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dlrm import MaterializedModel
from repro.core.operators import RemoteCall
from repro.models import drm1, drm3
from repro.requests import RequestGenerator, materialize_numeric
from repro.sharding import (
    STRATEGIES,
    DistributedModel,
    estimate_pooling_factors,
    singular_plan,
)


@pytest.fixture(scope="module")
def tiny_drm1():
    return MaterializedModel.build(drm1(scale=1e-6), max_rows=64, seed=7)


@pytest.fixture(scope="module")
def tiny_drm3():
    return MaterializedModel.build(drm3(scale=1e-6), max_rows=64, seed=7)


@pytest.fixture(scope="module")
def drm1_pooling(tiny_drm1):
    return estimate_pooling_factors(tiny_drm1.config, num_requests=100, seed=9)


def scores_match(singular, distributed, request):
    expected = singular.forward(request)
    actual = distributed.forward(request)
    np.testing.assert_allclose(actual, expected, rtol=1e-5, atol=1e-7)


class TestDistributedEquivalence:
    @pytest.mark.parametrize(
        "strategy_name,num_shards",
        [("1-shard", 1), ("cap-bal", 2), ("cap-bal", 4), ("load-bal", 4), ("NSBP", 2), ("NSBP", 4)],
    )
    def test_drm1_strategies_match_singular(
        self, tiny_drm1, drm1_pooling, strategy_name, num_shards
    ):
        plan = STRATEGIES[strategy_name].build_plan(
            tiny_drm1.config, num_shards, drm1_pooling
        )
        distributed = DistributedModel(tiny_drm1, plan)
        generator = RequestGenerator(tiny_drm1.config, seed=21)
        for request_id in range(3):
            request = materialize_numeric(
                tiny_drm1.config, generator.generate(request_id), seed=5
            )
            scores_match(tiny_drm1, distributed, request)

    def test_drm3_nsbp_with_row_partitioning(self, tiny_drm3):
        plan = STRATEGIES["NSBP"].build_plan(tiny_drm3.config, 8)
        distributed = DistributedModel(tiny_drm3, plan)
        # The dominant table really is row-partitioned in this plan.
        parts = plan.assignments_for_table(
            max(tiny_drm3.config.tables, key=lambda t: t.nbytes).name
        )
        assert len(parts) > 1
        generator = RequestGenerator(tiny_drm3.config, seed=21)
        for request_id in range(3):
            request = materialize_numeric(
                tiny_drm3.config, generator.generate(request_id), seed=5
            )
            scores_match(tiny_drm3, distributed, request)

    def test_singular_plan_is_identity(self, tiny_drm1):
        distributed = DistributedModel(tiny_drm1, singular_plan(tiny_drm1.config))
        assert distributed.rpc_op_count == 0
        generator = RequestGenerator(tiny_drm1.config, seed=21)
        request = materialize_numeric(tiny_drm1.config, generator.generate(0), seed=5)
        np.testing.assert_array_equal(
            distributed.forward(request), tiny_drm1.forward(request)
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_property_random_requests(self, tiny_drm1, drm1_pooling, seed):
        plan = STRATEGIES["cap-bal"].build_plan(tiny_drm1.config, 4)
        distributed = DistributedModel(tiny_drm1, plan)
        generator = RequestGenerator(tiny_drm1.config, seed=seed)
        request = materialize_numeric(tiny_drm1.config, generator.generate(0), seed=seed)
        scores_match(tiny_drm1, distributed, request)


class TestRpcStructure:
    def test_rpc_count_nsbp_vs_load_balanced(self, tiny_drm1, drm1_pooling):
        """NSBP issues one RPC per shard; net-agnostic strategies issue up
        to one per (net, shard) pair -- the paper's compute-overhead driver
        (Section VI-C1)."""
        nsbp = DistributedModel(
            tiny_drm1, STRATEGIES["NSBP"].build_plan(tiny_drm1.config, 4)
        )
        load = DistributedModel(
            tiny_drm1,
            STRATEGIES["load-bal"].build_plan(tiny_drm1.config, 4, drm1_pooling),
        )
        assert nsbp.rpc_op_count == 4  # one per shard
        assert load.rpc_op_count == 8  # one per net per shard

    def test_rpc_ops_are_async(self, tiny_drm1):
        distributed = DistributedModel(
            tiny_drm1, STRATEGIES["NSBP"].build_plan(tiny_drm1.config, 2)
        )
        rpc_ops = [
            op for op in distributed.graph.all_operators() if isinstance(op, RemoteCall)
        ]
        assert rpc_ops and all(op.is_async for op in rpc_ops)

    def test_shards_are_stateless_between_calls(self, tiny_drm1):
        """Calling a shard twice with the same payload gives identical
        results (no retained state, paper Section III-A1)."""
        plan = STRATEGIES["NSBP"].build_plan(tiny_drm1.config, 2)
        distributed = DistributedModel(tiny_drm1, plan)
        shard = distributed.shards[0]
        net = tiny_drm1.config.tables[0].net
        shard_tables = shard.tables_for_net(net)
        assert shard_tables
        payload = {}
        for st_ in shard_tables:
            payload[f"{st_.name}_hashed"] = np.array([0, 0], dtype=np.int64)
            payload[f"{st_.name}_lengths"] = np.array([2], dtype=np.int64)
        first = shard.invoke(net, payload)
        second = shard.invoke(net, payload)
        for blob in first:
            np.testing.assert_array_equal(first[blob], second[blob])

"""Direct tests for the cost model, network fabric, and platform specs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import DType, US
from repro.models.config import FeatureScope, NetConfig, TableConfig
from repro.simulation.costmodel import (
    CostModel,
    ranking_response_bytes,
    rpc_request_bytes,
    rpc_response_bytes,
)
from repro.simulation.network import Fabric, FabricSpec
from repro.simulation.platform import PLATFORMS, SC_LARGE, SC_SMALL


def table(dim=64, scope=FeatureScope.USER, dtype=DType.FP32):
    return TableConfig("t", "net1", num_rows=1000, dim=dim, dtype=dtype, scope=scope)


class TestCostModel:
    def setup_method(self):
        self.cm = CostModel()

    def test_serde_scales_with_bytes(self):
        small = self.cm.serde_time(1_000, SC_LARGE)
        large = self.cm.serde_time(1_000_000, SC_LARGE)
        assert large > small

    def test_serde_scales_with_tables(self):
        no_tables = self.cm.serde_time(1_000, SC_LARGE, tables=0)
        many = self.cm.serde_time(1_000, SC_LARGE, tables=50)
        assert many - no_tables == pytest.approx(50 * self.cm.serde_per_table)

    def test_client_serde_cheaper_per_table(self):
        shard = self.cm.serde_time(0, SC_LARGE, tables=40)
        client = self.cm.serde_time(0, SC_LARGE, tables=40, client_side=True)
        assert client < shard

    def test_serde_slower_on_slower_clock(self):
        assert self.cm.serde_time(10_000, SC_SMALL, tables=10) > self.cm.serde_time(
            10_000, SC_LARGE, tables=10
        )

    def test_dense_time_scales_with_items_and_clock(self):
        net = NetConfig("n", dense_us_per_item=2.0, dense_us_fixed=100.0)
        base = self.cm.dense_time(net, 10, SC_LARGE)
        assert self.cm.dense_time(net, 100, SC_LARGE) > base
        assert self.cm.dense_time(net, 10, SC_SMALL) == pytest.approx(
            base / SC_SMALL.relative_clock
        )

    def test_sls_per_id_platform_insensitive(self):
        """The Figure-15 property: lookups are DRAM-latency bound."""
        large = self.cm.sls_per_id(table(), SC_LARGE)
        small = self.cm.sls_per_id(table(), SC_SMALL)
        assert small / large == pytest.approx(
            SC_SMALL.dram_access_ns / SC_LARGE.dram_access_ns
        )

    def test_sls_per_id_scales_with_dim(self):
        assert self.cm.sls_per_id(table(dim=128), SC_LARGE) > self.cm.sls_per_id(
            table(dim=32), SC_LARGE
        )

    def test_quantized_rows_add_dequant_cost(self):
        fp32 = self.cm.sls_per_id(table(dtype=DType.FP32), SC_LARGE)
        int8 = self.cm.sls_per_id(table(dim=64, dtype=DType.INT8), SC_LARGE)
        # Fewer cache lines but extra dequant ALU work: near-neutral.
        assert int8 == pytest.approx(fp32, rel=0.6)

    def test_sls_time_dispatch_for_empty_tables(self):
        # Singular nets dispatch every table even with no lookups.
        idle = self.cm.sls_time([], SC_LARGE, dispatched_tables=100)
        assert idle == pytest.approx(100 * self.cm.sls_dispatch_per_table)

    def test_net_overhead_grows_with_ops(self):
        assert self.cm.net_overhead(100) > self.cm.net_overhead(10)

    @given(ids=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_sls_time_monotone_in_ids(self, ids):
        lookups = [(table(), ids)]
        more = [(table(), ids + 1)]
        assert self.cm.sls_time(more, SC_LARGE) >= self.cm.sls_time(lookups, SC_LARGE)


class TestPayloadSizing:
    def test_request_bytes_scale_with_ids(self):
        few = rpc_request_bytes([(table(), 10)], segments=1)
        many = rpc_request_bytes([(table(), 1000)], segments=1)
        assert many - few == pytest.approx(990 * 8.0)

    def test_response_bytes_user_vs_item_scope(self):
        user = rpc_response_bytes([table(scope=FeatureScope.USER)], batch_items=50)
        item = rpc_response_bytes([table(scope=FeatureScope.ITEM)], batch_items=50)
        # ITEM features return one pooled vector per candidate item.
        assert item > 40 * user / 2

    def test_ranking_response_scales_with_items(self):
        assert ranking_response_bytes(1000) > ranking_response_bytes(10)


class TestFabric:
    def test_delay_above_floor(self):
        fabric = Fabric(seed=0)
        for _ in range(100):
            delay = fabric.one_way_delay(SC_LARGE, SC_LARGE, 0.0)
            assert delay > fabric.expected_floor()

    def test_wire_time_uses_slower_nic(self):
        spec = FabricSpec(jitter_median=0.0)
        fabric = Fabric(spec, seed=0)
        fast = np.median([fabric.one_way_delay(SC_LARGE, SC_LARGE, 1e6) for _ in range(200)])
        slow = np.median([fabric.one_way_delay(SC_LARGE, SC_SMALL, 1e6) for _ in range(200)])
        assert slow > fast
        assert slow - fast == pytest.approx(
            1e6 / SC_SMALL.nic_bandwidth - 1e6 / SC_LARGE.nic_bandwidth, rel=0.2
        )

    def test_jitter_long_tailed(self):
        fabric = Fabric(seed=3)
        delays = np.array(
            [fabric.one_way_delay(SC_LARGE, SC_LARGE, 0.0) for _ in range(4000)]
        )
        jitter = delays - fabric.expected_floor()
        assert np.percentile(jitter, 99) > 3 * np.percentile(jitter, 50)

    def test_deterministic_given_seed(self):
        a = [Fabric(seed=5).one_way_delay(SC_LARGE, SC_LARGE, 0.0) for _ in range(5)]
        b = [Fabric(seed=5).one_way_delay(SC_LARGE, SC_LARGE, 0.0) for _ in range(5)]
        assert a == b


class TestPlatforms:
    def test_registry(self):
        assert set(PLATFORMS) == {"SC-Large", "SC-Small"}

    def test_sc_small_is_smaller(self):
        assert SC_SMALL.dram_capacity < SC_LARGE.dram_capacity
        assert SC_SMALL.clock_ghz < SC_LARGE.clock_ghz
        assert SC_SMALL.nic_bandwidth < SC_LARGE.nic_bandwidth

    def test_relative_clock(self):
        assert SC_LARGE.relative_clock == 1.0
        assert SC_SMALL.relative_clock == pytest.approx(0.8)

    def test_dram_latency_nearly_identical(self):
        """The premise behind Figure 15."""
        ratio = SC_SMALL.dram_access_ns / SC_LARGE.dram_access_ns
        assert 0.9 < ratio < 1.1

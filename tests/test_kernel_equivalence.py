"""Kernel-equivalence regression pins: batched == reference, bit for bit.

The batched DES kernel (``BatchedEngine`` + ``SyncResource`` + fused
``At`` yields in the serving fast path) must replay every paper
configuration *bit-identically* to the reference kernel, in both trace
modes, serial and open-loop, healthy and under a chaos schedule.  This
is the determinism story the kernel selector ships with (see the
"Canonical event ordering" section in ``repro/simulation/engine.py`` and
rule 2 of the determinism contract in ``repro/core/rng.py``): the
batched kernel preserves the reference ``(time, sequence)`` order except
for synchronous resource grants, which only ever move pure computation
earlier within a timestamp -- so every recorded value, every column, and
every accumulator sum lands on the same floats.

The vectorized kernel extends the same contract to the columnar replay
path: eligible runs (serial closed-loop, chaos-free, AGGREGATE tracing)
bypass the event loop entirely yet land on the same floats (the
"vectorized equivalence" clauses in ``engine.py``/``rng.py``), and every
ineligible run falls back to the batched kernel with the reason recorded
on ``RunResult.kernel_fallback`` -- both pinned here.
"""

import tracemalloc

import numpy as np
import pytest

from repro.chaos import FaultSchedule, HealingPolicy, HostCrash, NetworkSpike, StragglerShard
from repro.experiments import (
    ShardingConfiguration,
    SuiteSettings,
    build_plan,
    run_configuration,
    run_mix_suite,
    run_suite,
    run_suite_parallel,
)
from repro.experiments.runner import suite_requests
from repro.models import drm1, drm2, drm3
from repro.requests import ReplaySchedule
from repro.serving import ServingConfig, TraceMode
from repro.serving.columnar import (
    REASON_CHAOS,
    REASON_FULL_TRACE,
    REASON_MIX,
    REASON_OPEN_LOOP,
)
from repro.sharding.pooling import estimate_pooling_factors
from repro.workloads import PiecewiseRateArrivals, Workload, WorkloadMix
from repro.simulation.engine import (
    DEFAULT_KERNEL,
    KERNELS,
    BatchedEngine,
    Engine,
    make_engine,
)

pytestmark = pytest.mark.filterwarnings("error")


def assert_run_identical(ref, new, label=""):
    """Bitwise equality of every RunResult column, chaos columns included."""
    assert np.array_equal(ref.e2e, new.e2e), label
    assert np.array_equal(ref.cpu, new.cpu), label
    for kind in ("latency", "embedded", "cpu"):
        ref_cols = ref.stack_columns(kind)
        new_cols = new.stack_columns(kind)
        for bucket in ref_cols:
            assert np.array_equal(ref_cols[bucket], new_cols[bucket]), (
                label, kind, bucket,
            )
    assert np.array_equal(ref.request_ids, new.request_ids), label
    assert np.array_equal(ref.status, new.status), label
    assert np.array_equal(ref.degraded, new.degraded), label
    assert np.array_equal(ref.retries, new.retries), label
    assert np.array_equal(ref.workloads, new.workloads), label
    assert ref.mean_cpu_by_shard() == new.mean_cpu_by_shard(), label
    assert ref.chaos_timeline == new.chaos_timeline, label
    assert ref.incomplete_requests == new.incomplete_requests, label


def assert_suites_identical(ref, new):
    assert list(ref) == list(new)
    for label in ref:
        assert_run_identical(ref[label], new[label], label)


def settings(kernel=None, trace_mode=None, num_requests=20, **serving_kwargs):
    return SuiteSettings(
        num_requests=num_requests,
        pooling_requests=150,
        serving=ServingConfig(seed=1, **serving_kwargs),
        trace_mode=trace_mode,
        kernel=kernel,
    )


class TestKernelSelection:
    def test_make_engine_kernels(self):
        assert type(make_engine("reference")) is Engine
        assert isinstance(make_engine("batched"), BatchedEngine)
        assert DEFAULT_KERNEL == "reference"
        assert DEFAULT_KERNEL in KERNELS and "batched" in KERNELS

    def test_vectorized_kernel_registered(self):
        assert "vectorized" in KERNELS
        # An *engine* for the vectorized kernel is by definition the
        # fallback path (the columnar replay never runs an event loop),
        # which is the batched kernel.
        assert isinstance(make_engine("vectorized"), BatchedEngine)
        assert ServingConfig(kernel="vectorized").kernel == "vectorized"

    def test_make_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown DES kernel"):
            make_engine("calendar")

    def test_serving_config_validates_kernel(self):
        with pytest.raises(ValueError):
            ServingConfig(kernel="bogus")

    def test_suite_override_applies_kernel(self):
        resolved = settings(kernel="batched").resolved_serving()
        assert resolved.kernel == "batched"
        # no override keeps the serving config object untouched
        base = settings()
        assert base.resolved_serving() is base.serving

    def test_with_kernel_round_trip(self):
        config = ServingConfig(seed=3)
        assert config.with_kernel("batched").kernel == "batched"
        assert config.with_kernel("batched").seed == 3


class TestPaperConfigurationEquivalence:
    @pytest.mark.parametrize("factory", [drm1, drm2, drm3])
    def test_every_paper_configuration_full_trace(self, factory):
        model = factory()
        assert_suites_identical(
            run_suite(model, settings()),
            run_suite(model, settings(kernel="batched")),
        )

    @pytest.mark.parametrize("factory", [drm1, drm2, drm3])
    def test_every_paper_configuration_aggregate_trace(self, factory):
        model = factory()
        assert_suites_identical(
            run_suite(model, settings(trace_mode=TraceMode.AGGREGATE)),
            run_suite(
                model, settings(kernel="batched", trace_mode=TraceMode.AGGREGATE)
            ),
        )

    def test_open_loop_contended_with_clock_skew(self):
        """Queueing overlap + sync resource grants under contention."""
        model = drm1()

        def contended(kernel):
            return SuiteSettings(
                num_requests=40,
                pooling_requests=150,
                serving=ServingConfig(
                    seed=1, service_workers=2, clock_skew_sigma=0.002
                ),
                schedule=ReplaySchedule.open_loop(25.0, seed=2),
                kernel=kernel,
            )

        assert_suites_identical(
            run_suite(model, contended(None)),
            run_suite(model, contended("batched")),
        )

    def test_full_equals_aggregate_on_batched_kernel(self):
        model = drm1()
        full = run_suite(model, settings(kernel="batched"))
        aggregate = run_suite(
            model, settings(kernel="batched", trace_mode=TraceMode.AGGREGATE)
        )
        assert list(full) == list(aggregate)
        for label in full:
            f, a = full[label], aggregate[label]
            assert np.array_equal(f.e2e, a.e2e), label
            assert np.array_equal(f.cpu, a.cpu), label
            for kind in ("latency", "embedded", "cpu"):
                fc, ac = f.stack_columns(kind), a.stack_columns(kind)
                for bucket in fc:
                    assert np.array_equal(fc[bucket], ac[bucket]), (label, bucket)

    def test_parallel_batched_matches_serial_batched(self):
        model = drm1()
        batched = settings(kernel="batched", trace_mode=TraceMode.AGGREGATE)
        assert_suites_identical(
            run_suite(model, batched),
            run_suite_parallel(model, batched, max_workers=2),
        )


class TestChaosEquivalence:
    """Chaos replays must run identically on both kernels.

    A chaos schedule disables the fused serving fast path (straggler
    multipliers are read at call time), but the BatchedEngine still
    drives the replay -- failover routing, heartbeat healing, and the
    fault timers all schedule through the deque-merged loop.
    """

    SCHEDULE = FaultSchedule(
        experiments=(
            HostCrash(shard=0, at=0.05, restart_after=0.3),
            StragglerShard(shard=1, start=0.0, duration=0.4, multiplier=3.0),
            NetworkSpike(start=0.1, duration=0.2, extra_latency=2e-4),
        ),
        replicas=2,
        healing=HealingPolicy(check_interval=0.05, consecutive_misses=2),
    )

    @pytest.mark.parametrize(
        "trace_mode", [None, TraceMode.AGGREGATE], ids=["full", "aggregate"]
    )
    def test_chaos_replay_matches_reference(self, trace_mode):
        model = drm1()
        pooling = estimate_pooling_factors(model, num_requests=150, seed=42)
        plan = build_plan(model, ShardingConfiguration("load-bal", 4), pooling)
        base = SuiteSettings(
            num_requests=50, schedule=ReplaySchedule.open_loop(120.0, seed=2)
        )
        requests = suite_requests(model, base)
        schedule = base.resolved_schedule()

        def replay(kernel):
            serving = ServingConfig(
                seed=1, chaos=self.SCHEDULE, kernel=kernel,
                trace_mode=trace_mode or TraceMode.FULL,
            )
            return run_configuration(model, plan, requests, serving, schedule)

        ref = replay("reference")
        new = replay("batched")
        assert_run_identical(ref, new, "chaos")
        # the schedule actually bit: the equivalence is not vacuous
        assert ref.retries.sum() > 0 or ref.status.sum() > 0 or len(ref.chaos_timeline) > 0


class TestVectorizedEquivalence:
    """Columnar replay == reference, bit for bit, in the eligible regime.

    The vectorized kernel never runs a DES loop: per-request costs are
    transposed into per-chunk numpy columns and replayed as array
    programs with the exact left-associated float order the chained
    yields produce (see the module docstring of
    ``repro/simulation/vectorized.py``).  Every DRM1/DRM2/DRM3 paper
    configuration must land on the same floats in every RunResult
    column, serial and parallel.
    """

    @pytest.mark.parametrize("factory", [drm1, drm2, drm3])
    def test_every_paper_configuration(self, factory):
        model = factory()
        ref = run_suite(model, settings(trace_mode=TraceMode.AGGREGATE))
        vec = run_suite(
            model, settings(kernel="vectorized", trace_mode=TraceMode.AGGREGATE)
        )
        for label, result in vec.items():
            assert result.kernel_used == "vectorized", (
                label, result.kernel_fallback,
            )
            assert result.kernel_fallback is None, label
        assert_suites_identical(ref, vec)

    def test_parallel_matches_serial(self):
        model = drm1()
        vectorized = settings(kernel="vectorized", trace_mode=TraceMode.AGGREGATE)
        serial = run_suite(model, vectorized)
        parallel = run_suite_parallel(model, vectorized, max_workers=2)
        for result in parallel.values():
            assert result.kernel_used == "vectorized"
        assert_suites_identical(serial, parallel)

    def test_clock_skew(self):
        """Skewed trace stamps ride the same bulk-jitter substreams."""
        model = drm1()

        def skewed(kernel):
            return settings(
                kernel=kernel, trace_mode=TraceMode.AGGREGATE,
                clock_skew_sigma=0.002,
            )

        assert_suites_identical(
            run_suite(model, skewed(None)),
            run_suite(model, skewed("vectorized")),
        )


class TestVectorizedFallback:
    """Every ineligible run silently takes the batched kernel.

    The chosen kernel and the machine-readable reason are exposed on
    ``RunResult.kernel_used`` / ``RunResult.kernel_fallback`` so sweeps
    can assert which path produced their numbers.
    """

    def _replay(self, serving, schedule=None, num_requests=15):
        model = drm1()
        pooling = estimate_pooling_factors(model, num_requests=150, seed=42)
        plan = build_plan(model, ShardingConfiguration("load-bal", 2), pooling)
        requests = suite_requests(
            model, SuiteSettings(num_requests=num_requests, pooling_requests=150)
        )
        return run_configuration(model, plan, requests, serving, schedule)

    def test_open_loop_falls_back(self):
        result = self._replay(
            ServingConfig(seed=1, kernel="vectorized", trace_mode=TraceMode.AGGREGATE),
            ReplaySchedule.open_loop(25.0, seed=2),
        )
        assert result.kernel_used == "batched"
        assert result.kernel_fallback == REASON_OPEN_LOOP

    def test_chaos_falls_back(self):
        result = self._replay(
            ServingConfig(
                seed=1, kernel="vectorized", trace_mode=TraceMode.AGGREGATE,
                chaos=FaultSchedule(experiments=(HostCrash(shard=0, at=0.05),)),
            ),
        )
        assert result.kernel_used == "batched"
        assert result.kernel_fallback == REASON_CHAOS

    def test_full_trace_falls_back(self):
        result = self._replay(ServingConfig(seed=1, kernel="vectorized"))
        assert result.kernel_used == "batched"
        assert result.kernel_fallback == REASON_FULL_TRACE

    def test_mix_falls_back(self):
        mix = WorkloadMix(
            (
                Workload(
                    "drm1-mix", drm1(),
                    PiecewiseRateArrivals.diurnal(50.0, seed=7), request_seed=3,
                ),
                Workload(
                    "drm2-mix", drm2(),
                    PiecewiseRateArrivals.diurnal(30.0, seed=8), request_seed=4,
                ),
            )
        )
        results = run_mix_suite(
            mix,
            SuiteSettings(
                num_requests=10, pooling_requests=150,
                serving=ServingConfig(seed=1),
                trace_mode=TraceMode.AGGREGATE, kernel="vectorized",
            ),
            (ShardingConfiguration("load-bal", 2),),
        )
        for result in results.values():
            assert result.kernel_used == "batched"
            assert result.kernel_fallback == REASON_MIX

    def test_eligible_run_takes_the_fast_path(self):
        result = self._replay(
            ServingConfig(seed=1, kernel="vectorized", trace_mode=TraceMode.AGGREGATE),
        )
        assert result.kernel_used == "vectorized"
        assert result.kernel_fallback is None

    def test_fallback_result_matches_batched(self):
        """The fallback is not merely labeled batched -- it *is* batched."""
        schedule = ReplaySchedule.open_loop(25.0, seed=2)
        fallback = self._replay(
            ServingConfig(seed=1, kernel="vectorized", trace_mode=TraceMode.AGGREGATE),
            schedule,
        )
        batched = self._replay(
            ServingConfig(seed=1, kernel="batched", trace_mode=TraceMode.AGGREGATE),
            schedule,
        )
        assert_run_identical(fallback, batched, "fallback")


class TestChunkedReplay:
    """``REPRO_CHUNK`` bounds builder memory without changing a bit.

    Chunking only splits the columnarization pass; the replay arithmetic
    and every substream walk are chunk-size invariant.  The memory smoke
    pins the bound the vectorized path claims at REPRO_REQUESTS=1M: peak
    replay memory tracks the chunk size, not the request count (the
    O(num_requests) output columns are excluded by measuring the chunked
    run against the same run columnarized in one piece).
    """

    def test_chunk_size_invariance(self, monkeypatch):
        model = drm1()
        vectorized = settings(kernel="vectorized", trace_mode=TraceMode.AGGREGATE)
        base = run_suite(model, vectorized)
        monkeypatch.setenv("REPRO_CHUNK", "7")
        chunked = run_suite(model, vectorized)
        for result in chunked.values():
            assert result.kernel_used == "vectorized"
        assert_suites_identical(base, chunked)

    def test_replay_memory_bounded_by_chunk(self, monkeypatch):
        from repro.serving import columnar

        model = drm1()
        pooling = estimate_pooling_factors(model, num_requests=150, seed=42)
        plan = build_plan(model, ShardingConfiguration("singular"), pooling)
        num_requests = 1024
        requests = suite_requests(
            model,
            SuiteSettings(num_requests=num_requests, pooling_requests=150),
        )
        serving = ServingConfig(
            seed=1, kernel="vectorized", trace_mode=TraceMode.AGGREGATE
        )
        # Disable the two builder caches: retention is their (bounded)
        # business, this smoke measures the per-chunk working set.
        monkeypatch.setattr(columnar, "_PLANS_CACHE_MAX", 0)
        monkeypatch.setattr(columnar, "_BUNDLE_CACHE_MAX", 0)

        def peak_bytes(chunk_size):
            monkeypatch.setenv("REPRO_CHUNK", str(chunk_size))
            columnar._PLANS_CACHE.clear()
            columnar._BUNDLE_CACHE.clear()
            tracemalloc.start()
            result = run_configuration(model, plan, requests, serving)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert result.kernel_used == "vectorized"
            return peak

        whole = peak_bytes(num_requests)  # one chunk: O(num_requests)
        chunked = peak_bytes(32)  # 32 chunks of 32 requests
        assert chunked < whole / 4, (chunked, whole)

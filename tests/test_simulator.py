"""Tests for the serving simulator: structure, queueing, determinism."""

import numpy as np
import pytest

from repro.models import drm1, drm3
from repro.requests import RequestGenerator, ReplaySchedule
from repro.serving import ClusterSimulation, ServingConfig
from repro.sharding import STRATEGIES, estimate_pooling_factors, singular_plan
from repro.tracing import Layer, MAIN_SHARD, attribute_request


@pytest.fixture(scope="module")
def model():
    return drm1()


@pytest.fixture(scope="module")
def requests(model):
    return RequestGenerator(model, seed=3).generate_many(25)


@pytest.fixture(scope="module")
def pooling(model):
    return estimate_pooling_factors(model, num_requests=200, seed=42)


def run(model, plan, requests, config=None):
    sim = ClusterSimulation(model, plan, config or ServingConfig(seed=1))
    sim.run_serial(requests)
    return sim


class TestStructure:
    def test_all_requests_complete(self, model, requests):
        sim = run(model, singular_plan(model), requests)
        assert sorted(sim.completed) == [r.request_id for r in requests]

    def test_singular_has_no_rpc_spans(self, model, requests):
        sim = run(model, singular_plan(model), requests)
        spans = sim.tracer.for_request(requests[0].request_id)
        assert not any(s.layer is Layer.RPC_CLIENT for s in spans)
        assert all(s.shard == MAIN_SHARD for s in spans)

    def test_distributed_touches_sparse_shards(self, model, requests, pooling):
        plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
        sim = run(model, plan, requests)
        spans = sim.tracer.for_request(requests[0].request_id)
        shards_touched = {s.shard for s in spans if s.shard != MAIN_SHARD}
        assert shards_touched <= {0, 1, 2, 3}
        assert len(shards_touched) >= 2

    def test_rpc_count_matches_fanout(self, model, requests, pooling):
        """Every (batch, net, active shard) triple issues exactly one RPC."""
        plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
        sim = run(model, plan, requests)
        for request in requests[:5]:
            spans = sim.tracer.for_request(request.request_id)
            clients = [s for s in spans if s.layer is Layer.RPC_CLIENT]
            shard_services = [
                s for s in spans if s.layer is Layer.SERVICE and s.shard != MAIN_SHARD
            ]
            assert len(clients) == len(shard_services)
            keys = {(s.batch, s.net, s.rpc_id) for s in clients}
            assert len(keys) == len(clients)

    def test_nsbp_issues_fewer_rpcs_than_load_balanced(self, model, requests, pooling):
        nsbp = run(model, STRATEGIES["NSBP"].build_plan(model, 4), requests)
        load = run(model, STRATEGIES["load-bal"].build_plan(model, 4, pooling), requests)

        def rpcs(sim):
            return sum(
                1
                for r in requests
                for s in sim.tracer.for_request(r.request_id)
                if s.layer is Layer.RPC_CLIENT
            )

        assert rpcs(nsbp) < rpcs(load)

    def test_drm3_touches_two_shards_per_request(self):
        """Paper Section VI-E1: only one partition of the dominant table
        plus the small-tables shard are accessed per inference."""
        model = drm3()
        plan = STRATEGIES["NSBP"].build_plan(model, 8)
        reqs = RequestGenerator(model, seed=3).generate_many(20)
        sim = run(model, plan, reqs)
        for request in reqs:
            spans = sim.tracer.for_request(request.request_id)
            touched = {s.shard for s in spans if s.shard != MAIN_SHARD}
            assert len(touched) == 2

    def test_batch_cap_respected(self, model):
        big = [r for r in RequestGenerator(model, seed=3).generate_many(200)
               if r.num_items > 1000]
        assert big, "need at least one tail-sized request"
        sim = run(model, singular_plan(model), big[:2])
        for request in big[:2]:
            spans = sim.tracer.for_request(request.request_id)
            batches = [s for s in spans if s.layer is Layer.BATCH]
            assert len(batches) == 8  # ServingConfig.max_batches default

    def test_single_batch_mode(self, model, requests):
        config = ServingConfig(seed=1).with_batch_size(10**9)
        sim = run(model, singular_plan(model), requests, config)
        spans = sim.tracer.for_request(requests[0].request_id)
        assert sum(1 for s in spans if s.layer is Layer.BATCH) == 1


class TestDeterminismAndOrdering:
    def test_identical_seeds_identical_latencies(self, model, requests):
        a = run(model, singular_plan(model), requests).completed
        b = run(model, singular_plan(model), requests).completed
        assert a == b

    def test_different_seed_different_latencies(self, model, requests, pooling):
        # Distributed latencies depend on sampled network jitter; singular
        # runs are deterministic functions of the request sample alone.
        plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
        a = run(model, plan, requests).completed
        b = run(model, plan, requests, ServingConfig(seed=9)).completed
        assert a != b
        sa = run(model, singular_plan(model), requests).completed
        sb = run(model, singular_plan(model), requests, ServingConfig(seed=9)).completed
        assert sa == sb

    def test_serial_replay_never_overlaps(self, model, requests):
        """Serial blocking: request n+1 starts after request n completes."""
        sim = run(model, singular_plan(model), requests)
        windows = []
        for request in requests:
            spans = sim.tracer.for_request(request.request_id)
            service = next(
                s for s in spans if s.layer is Layer.SERVICE and s.shard == MAIN_SHARD
            )
            windows.append((service.start, service.end))
        windows.sort()
        for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
            assert next_start >= prev_end

    def test_open_loop_overlaps_under_load(self, model, requests):
        config = ServingConfig(seed=1, service_workers=2)
        sim = ClusterSimulation(model, singular_plan(model), config)
        sim.run_open_loop(requests, ReplaySchedule.open_loop(qps=2000.0, seed=4))
        windows = []
        for request in requests:
            spans = sim.tracer.for_request(request.request_id)
            service = next(
                s for s in spans if s.layer is Layer.SERVICE and s.shard == MAIN_SHARD
            )
            windows.append((service.start, service.end))
        windows.sort()
        overlaps = sum(
            1 for (_, e), (s, _) in zip(windows, windows[1:]) if s < e
        )
        assert overlaps > 0


class TestLatencyPhysics:
    def test_distributed_slower_serially(self, model, requests, pooling):
        """Paper: serial blocking requests always lose with distribution."""
        base = np.median(list(run(model, singular_plan(model), requests).completed.values()))
        for strategy, shards in (("1-shard", 1), ("load-bal", 8), ("NSBP", 2)):
            plan = STRATEGIES[strategy].build_plan(model, shards, pooling)
            dist = np.median(list(run(model, plan, requests).completed.values()))
            assert dist > base

    def test_more_shards_lower_latency_overhead(self, model, requests, pooling):
        plans = {
            n: STRATEGIES["load-bal"].build_plan(model, n, pooling) for n in (2, 8)
        }
        medians = {
            n: np.median(list(run(model, plan, requests).completed.values()))
            for n, plan in plans.items()
        }
        assert medians[8] < medians[2]

    def test_network_latency_positive_everywhere(self, model, requests, pooling):
        plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
        sim = run(model, plan, requests)
        for request in requests[:10]:
            att = attribute_request(sim.tracer.for_request(request.request_id))
            assert att.embedded_stack["Network Latency"] > 0

    def test_sc_small_similar_shard_op_latency(self, model, requests, pooling):
        """Paper Figure 15: per-shard operator latencies nearly identical
        across server platforms (lookups are DRAM-latency bound)."""
        from repro.simulation.platform import SC_SMALL

        plan = STRATEGIES["load-bal"].build_plan(model, 8, pooling)
        large = run(model, plan, requests)
        small = run(
            model, plan, requests, ServingConfig(seed=1, sparse_platform=SC_SMALL)
        )

        def mean_op(sim):
            total = count = 0.0
            for r in requests:
                for s in sim.tracer.for_request(r.request_id):
                    if s.layer is Layer.OPERATOR and s.shard != MAIN_SHARD:
                        total += s.duration
                        count += 1
            return total / count

        ratio = mean_op(small) / mean_op(large)
        assert 0.9 < ratio < 1.15

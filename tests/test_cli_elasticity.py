"""Tests for the CLI and the diurnal elasticity study."""

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import SuiteSettings, run_configuration, suite_requests
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.models import drm1
from repro.serving import ServingConfig
from repro.serving.elasticity import (
    assess_elasticity,
    diurnal_qps_curve,
    dram_hours_saved,
)
from repro.sharding import estimate_pooling_factors, load_plan


class TestCli:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "DRM1" in out and "DRM3" in out
        assert "194.05" in out

    def test_shard_command_prints_plan(self, capsys):
        code = main(
            ["shard", "--model", "DRM1", "--strategy", "NSBP", "--shards", "2",
             "--pooling-requests", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NSBP 2 shards" in out
        assert "net1" in out and "net2" in out

    def test_shard_command_writes_json(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        code = main(
            ["shard", "--model", "DRM1", "--strategy", "cap-bal", "--shards", "4",
             "--pooling-requests", "50", "--output", str(path)]
        )
        assert code == 0
        plan = load_plan(path.read_text(), drm1())
        assert plan.num_shards == 4

    def test_simulate_command(self, capsys):
        code = main(
            ["simulate", "--model", "DRM3", "--strategy", "NSBP", "--shards", "4",
             "--requests", "15", "--pooling-requests", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P50" in out and "P99" in out

    def test_simulate_singular(self, capsys):
        code = main(
            ["simulate", "--model", "DRM3", "--strategy", "singular",
             "--requests", "10", "--pooling-requests", "50"]
        )
        assert code == 0
        assert "singular" in capsys.readouterr().out

    def test_trace_command(self, capsys):
        code = main(
            ["trace", "--model", "DRM1", "--strategy", "load-bal", "--shards", "2",
             "--pooling-requests", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "main request" in out and "sparse shard" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])


class TestDiurnalCurve:
    def test_curve_bounds(self):
        curve = diurnal_qps_curve(peak_qps=1000.0, trough_fraction=0.4)
        assert len(curve) == 24
        assert curve.max() == pytest.approx(1000.0, rel=1e-6)
        assert curve.min() == pytest.approx(400.0, rel=1e-6)

    def test_trough_at_start(self):
        curve = diurnal_qps_curve(1000.0, 0.5)
        assert curve[0] == curve.min()

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            diurnal_qps_curve(0.0)
        with pytest.raises(ValueError):
            diurnal_qps_curve(100.0, trough_fraction=0.0)


class TestElasticity:
    @pytest.fixture(scope="class")
    def results(self):
        model = drm1()
        settings = SuiteSettings(num_requests=25, pooling_requests=100)
        requests = suite_requests(model, settings)
        pooling = estimate_pooling_factors(model, 100, seed=42)
        serving = ServingConfig(seed=1)
        singular = run_configuration(
            model, build_plan(model, ShardingConfiguration("singular")),
            requests, serving,
        )
        distributed = run_configuration(
            model,
            build_plan(model, ShardingConfiguration("load-bal", 8), pooling),
            requests, serving,
        )
        return model, singular, distributed

    def test_distributed_saves_dram_hours(self, results):
        model, singular, distributed = results
        curve = diurnal_qps_curve(peak_qps=60_000.0)
        singular_report = assess_elasticity(model, singular, curve)
        distributed_report = assess_elasticity(model, distributed, curve)
        assert dram_hours_saved(singular_report, distributed_report) > 3.0

    def test_singular_breathes_whole_model(self, results):
        """Singular elasticity drags the full model with every replica."""
        model, singular, _ = results
        curve = diurnal_qps_curve(peak_qps=60_000.0)
        report = assess_elasticity(model, singular, curve)
        assert report.elasticity_ratio > 1.5  # replicas scale with traffic
        # DRAM-hours = servers x whole model.
        assert report.dram_byte_hours == pytest.approx(
            report.server_hours * model.total_bytes, rel=1e-6
        )

    def test_distributed_sparse_tier_stays_flat(self, results):
        """The sparse tier is capacity-bound, not compute-bound: its
        replica count barely moves across the day."""
        model, _, distributed = results
        curve = diurnal_qps_curve(peak_qps=60_000.0)
        report = assess_elasticity(model, distributed, curve)
        # Total servers still breathe (main shard scales)...
        assert report.peak_servers > report.trough_servers
        # ...but far less DRAM is pinned at peak than singular would pin.
        assert report.hourly_servers[0] == report.trough_servers

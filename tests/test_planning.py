"""Tests for the repro.planning package: per-shard columnar demand, the
closed-loop CapacityPlanner, SLA/elasticity validation, and the
deprecation shims over the historical repro.serving.* paths."""

import numpy as np
import pytest

import repro.planning as planning
import repro.serving.elasticity as serving_elasticity
import repro.serving.replication as serving_replication
import repro.serving.sla as serving_sla
from repro.cli import main
from repro.experiments import (
    RunResult,
    ShardingConfiguration,
    SuiteSettings,
    run_mix_suite,
    run_suite,
)
from repro.models import drm1, drm2
from repro.planning import (
    CandidateSpace,
    CapacityPlanner,
    ElasticityReport,
    NoFeasiblePlanError,
    PerShardDemandError,
    PlanningError,
    ReplicationDemand,
    SlaPolicy,
    assess_elasticity,
    plan_replication,
)
from repro.serving import ServingConfig, TraceMode
from repro.sharding import singular_plan
from repro.workloads import (
    PiecewiseRateArrivals,
    PoissonArrivals,
    SerialArrivals,
    Workload,
    WorkloadMix,
)

SETTINGS = SuiteSettings(
    num_requests=25, pooling_requests=100, serving=ServingConfig(seed=1)
)
AGGREGATE_SETTINGS = SuiteSettings(
    num_requests=25,
    pooling_requests=100,
    serving=ServingConfig(seed=1),
    trace_mode=TraceMode.AGGREGATE,
)


def small_mix() -> WorkloadMix:
    return WorkloadMix(
        (
            Workload(
                "drm1-diurnal", drm1(),
                PiecewiseRateArrivals.diurnal(50.0, seed=7), request_seed=3,
            ),
            Workload(
                "drm2-diurnal", drm2(),
                PiecewiseRateArrivals.diurnal(30.0, trough_fraction=0.5, seed=8),
                request_seed=4,
            ),
        )
    )


SMALL_SPACE = CandidateSpace(
    configurations=(
        ShardingConfiguration("singular"),
        ShardingConfiguration("load-bal", 4),
        ShardingConfiguration("NSBP", 8),
    )
)


@pytest.fixture(scope="module")
def suite_pair():
    """The DRM1 paper sweep in both trace modes (shared across tests)."""
    model = drm1()
    return model, run_suite(model, SETTINGS), run_suite(model, AGGREGATE_SETTINGS)


class TestPerShardColumns:
    def test_full_equals_aggregate_bitwise(self, suite_pair):
        _, full, aggregate = suite_pair
        for label in full:
            assert (
                full[label].mean_cpu_by_shard()
                == aggregate[label].mean_cpu_by_shard()
            ), label
            assert (
                full[label].mean_per_shard_op_time()
                == aggregate[label].mean_per_shard_op_time()
            ), label

    def test_matches_historical_attribution_accumulation(self, suite_pair):
        """The columnar means reproduce the per-attribution Python-loop
        accumulation bit-for-bit (sequential sums, exact +0.0 padding)."""
        _, full, _ = suite_pair
        for label, result in full.items():
            cpu_totals: dict[int, float] = {}
            op_totals: dict[int, float] = {}
            for attribution in result.attributions:
                for shard, value in attribution.per_shard_cpu.items():
                    cpu_totals[shard] = cpu_totals.get(shard, 0.0) + value
                for shard, value in attribution.per_shard_op_time.items():
                    op_totals[shard] = op_totals.get(shard, 0.0) + value
            count = len(result.attributions)
            assert result.mean_cpu_by_shard() == {
                shard: total / count for shard, total in sorted(cpu_totals.items())
            }, label
            assert result.mean_per_shard_op_time() == {
                shard: total / count for shard, total in sorted(op_totals.items())
            }, label

    def test_per_workload_demand_partitions_the_mix(self):
        """Each tenant's label-column demand is its own; the mix-wide mean
        is the request-count-weighted combination."""
        mix = small_mix()
        results = run_mix_suite(
            mix, SETTINGS, (ShardingConfiguration("load-bal", 4),)
        )
        result = results["load-bal 4 shards"]
        per_tenant = {
            name: result.mean_cpu_by_shard(workload=name) for name in mix.labels()
        }
        counts = {
            name: int(np.count_nonzero(result.workload_mask(name)))
            for name in mix.labels()
        }
        combined = result.mean_cpu_by_shard()
        for shard, value in combined.items():
            weighted = sum(
                per_tenant[name].get(shard, 0.0) * counts[name]
                for name in mix.labels()
            ) / len(result)
            assert weighted == pytest.approx(value, rel=1e-12), shard

    def test_empty_result_has_no_demand(self):
        model = drm1()
        empty = RunResult(model.name, "singular", singular_plan(model))
        assert empty.mean_cpu_by_shard() == {}
        assert empty.mean_per_shard_op_time() == {}

    def test_unknown_workload_label_rejected(self, suite_pair):
        _, full, _ = suite_pair
        with pytest.raises(ValueError):
            full["singular"].mean_cpu_by_shard(workload="nope")


class TestPlanReplication:
    def test_full_and_aggregate_plans_identical(self, suite_pair):
        """The latent AGGREGATE bug, fixed: plans no longer silently size
        to one replica without attributions."""
        model, full, aggregate = suite_pair
        demand = ReplicationDemand(qps=20000.0)
        for label in full:
            assert plan_replication(
                model, full[label], demand
            ) == plan_replication(model, aggregate[label], demand), label

    def test_aggregate_distributed_plan_actually_replicates(self, suite_pair):
        """Regression: before the columnar demand, AGGREGATE results sized
        every tier to exactly one replica."""
        model, _, aggregate = suite_pair
        plan = plan_replication(
            model, aggregate["load-bal 8 shards"], ReplicationDemand(qps=50000.0)
        )
        assert plan.main_replicas > 1

    def test_unavailable_demand_raises_clearly(self):
        model = drm1()
        empty = RunResult(model.name, "singular", singular_plan(model))
        with pytest.raises(PerShardDemandError, match="no completed requests"):
            plan_replication(model, empty, ReplicationDemand(qps=100.0))


class TestSlaValidation:
    def test_derived_policy_requires_valid_inputs(self):
        baseline = [0.01, 0.02, 0.03]
        with pytest.raises(ValueError, match="non-empty"):
            SlaPolicy.from_baseline_quantile([])
        with pytest.raises(ValueError, match="quantile"):
            SlaPolicy.from_baseline_quantile(baseline, quantile=0.0)
        with pytest.raises(ValueError, match="quantile"):
            SlaPolicy.from_baseline_quantile(baseline, quantile=101.0)
        with pytest.raises(ValueError, match="slack"):
            SlaPolicy.from_baseline_quantile(baseline, slack=0.0)

    def test_derived_policy_valid_inputs(self):
        policy = SlaPolicy.from_baseline_quantile([1.0, 2.0, 3.0], quantile=100.0, slack=2.0)
        assert policy.target_latency == pytest.approx(6.0)


class TestElasticity:
    @pytest.fixture(scope="class")
    def sized_result(self):
        model = drm1()
        results = run_suite(
            model, SETTINGS, (ShardingConfiguration("load-bal", 4),)
        )
        return model, results["load-bal 4 shards"]

    def test_arrival_conditioned_equals_hourly_array(self, sized_result):
        """A PiecewiseRateArrivals at one-hour resolution is the identical
        rate function: sizing it equals sizing the raw curve."""
        model, result = sized_result
        curve = planning.diurnal_qps_curve(peak_qps=40_000.0)
        arrivals = PiecewiseRateArrivals(
            rates=tuple(curve), interval_seconds=3600.0
        )
        from_array = assess_elasticity(model, result, curve)
        from_process = assess_elasticity(model, result, arrivals)
        assert from_process.hourly_servers == from_array.hourly_servers
        assert from_process.server_hours == from_array.server_hours
        assert from_process.dram_byte_hours == from_array.dram_byte_hours

    def test_finer_resolution_weights_by_interval(self, sized_result):
        """Half-hour segments weigh half an hour each: a flat curve gives
        the same resource-hours at any resolution."""
        model, result = sized_result
        hourly = assess_elasticity(
            model, result,
            PiecewiseRateArrivals(rates=(25_000.0,) * 24, interval_seconds=3600.0),
        )
        half_hourly = assess_elasticity(
            model, result,
            PiecewiseRateArrivals(rates=(25_000.0,) * 48, interval_seconds=1800.0),
        )
        assert half_hourly.server_hours == pytest.approx(hourly.server_hours)
        assert half_hourly.dram_byte_hours == pytest.approx(hourly.dram_byte_hours)

    def test_empty_curve_is_well_defined(self, sized_result):
        model, result = sized_result
        report = assess_elasticity(model, result, np.empty(0))
        assert report.hourly_servers == []
        assert report.peak_servers == 0 and report.trough_servers == 0
        assert report.elasticity_ratio == 1.0

    def test_zero_trough_ratio_clamped(self):
        report = ElasticityReport(
            label="x", server_hours=1.0, dram_byte_hours=1.0,
            peak_servers=4, trough_servers=0,
        )
        assert report.elasticity_ratio == 4.0


class TestDeprecationShims:
    def test_sla_shim_reexports_identical_objects(self):
        assert serving_sla.SlaPolicy is planning.SlaPolicy
        assert serving_sla.evaluate_sla is planning.evaluate_sla
        assert serving_sla.sla_sweep is planning.sla_sweep

    def test_replication_shim_reexports_identical_objects(self):
        assert serving_replication.plan_replication is planning.plan_replication
        assert serving_replication.ReplicationDemand is planning.ReplicationDemand
        assert serving_replication.ReplicationPlan is planning.ReplicationPlan
        assert (
            serving_replication.memory_efficiency_vs_singular
            is planning.memory_efficiency_vs_singular
        )

    def test_elasticity_shim_reexports_identical_objects(self):
        assert serving_elasticity.assess_elasticity is planning.assess_elasticity
        assert serving_elasticity.ElasticityReport is planning.ElasticityReport
        assert serving_elasticity.dram_hours_saved is planning.dram_hours_saved
        assert serving_elasticity.diurnal_qps_curve is planning.diurnal_qps_curve

    def test_serving_package_exports_still_work(self):
        from repro.serving import SlaPolicy as ServingSlaPolicy
        from repro.serving import plan_replication as serving_plan_replication

        assert ServingSlaPolicy is planning.SlaPolicy
        assert serving_plan_replication is planning.plan_replication


class TestArrivalRates:
    def test_open_loop_rates(self):
        assert PoissonArrivals(25.0).peak_rate() == 25.0
        assert PoissonArrivals(25.0).mean_rate() == 25.0
        diurnal = PiecewiseRateArrivals.diurnal(100.0, trough_fraction=0.5)
        assert diurnal.peak_rate() == pytest.approx(100.0, rel=1e-3)
        assert diurnal.mean_rate() == pytest.approx(75.0, rel=1e-2)

    def test_serial_has_no_rate(self):
        assert SerialArrivals().peak_rate() is None
        assert SerialArrivals().mean_rate() is None


class TestCapacityPlanner:
    @pytest.fixture(scope="class")
    def planned(self):
        def build(trace_mode):
            return CapacityPlanner(
                space=SMALL_SPACE,
                settings=SuiteSettings(
                    num_requests=25,
                    pooling_requests=100,
                    serving=ServingConfig(seed=1),
                    trace_mode=trace_mode,
                ),
            )

        mix = small_mix()
        return {
            "full": build(None).plan(mix),
            "aggregate": build(TraceMode.AGGREGATE).plan(mix),
            "parallel": build(TraceMode.AGGREGATE).plan(
                mix, parallel=True, max_workers=2
            ),
        }

    def test_returns_a_feasible_sla_meeting_plan(self, planned):
        plan = planned["full"]
        chosen = plan.require()
        assert chosen.meets_sla and chosen.fits_memory
        # Per-workload replica counts are present for every tenant.
        assert {s.workload for s in chosen.workloads} == {
            "drm1-diurnal", "drm2-diurnal"
        }
        for sizing in chosen.workloads:
            assert sizing.standalone.main_replicas >= 1
            assert sizing.sla.met_p99

    def test_capacity_drives_scale_out(self, planned):
        """The paper's thesis, closed-loop: the singular deployment meets
        the SLA but cannot pin DRM1+DRM2 in one server's DRAM, so the
        chosen plan is distributed."""
        plan = planned["full"]
        singular = [c for c in plan.candidates if c.label == "singular"]
        assert singular and all(c.meets_sla for c in singular)
        assert all(not c.fits_memory for c in singular)
        assert plan.require().label != "singular"

    def test_bit_identical_across_trace_modes_and_parallelism(self, planned):
        assert planned["full"] == planned["aggregate"] == planned["parallel"]

    def test_explicit_policy_and_minimum_server_choice(self, planned):
        plan = planned["full"]
        feasible = [c for c in plan.candidates if c.feasible]
        chosen = plan.require()
        assert chosen.total_servers == min(c.total_servers for c in feasible)
        ties = [c for c in feasible if c.total_servers == chosen.total_servers]
        assert chosen.total_memory_bytes == min(c.total_memory_bytes for c in ties)

    def test_single_workload_plan(self):
        planner = CapacityPlanner(
            policy=SlaPolicy(10.0),  # generous: every config qualifies
            space=CandidateSpace(
                configurations=(
                    ShardingConfiguration("singular"),
                    ShardingConfiguration("load-bal", 2),
                )
            ),
            settings=SuiteSettings(
                num_requests=10, pooling_requests=100, serving=ServingConfig(seed=1)
            ),
        )
        plan = planner.plan(
            Workload("drm1", drm1(), PoissonArrivals(25.0, seed=2), request_seed=3)
        )
        # DRM1 alone fits in one SC-Large, so the 1-server singular wins.
        assert plan.require().label == "singular"

    def test_serial_arrivals_rejected(self):
        planner = CapacityPlanner(policy=SlaPolicy(1.0))
        with pytest.raises(PlanningError, match="closed-loop"):
            planner.plan(Workload("w", drm1(), SerialArrivals()))

    def test_infeasible_sla_raises_on_require(self):
        planner = CapacityPlanner(
            policy=SlaPolicy(1e-9),  # impossible window
            space=SMALL_SPACE,
            settings=SuiteSettings(
                num_requests=10, pooling_requests=100, serving=ServingConfig(seed=1)
            ),
        )
        plan = planner.plan(small_mix())
        assert not plan.feasible
        with pytest.raises(NoFeasiblePlanError, match="no candidate"):
            plan.require()

    def test_candidate_space_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            CandidateSpace(utilization_targets=())
        with pytest.raises(ValueError, match="utilization"):
            CandidateSpace(utilization_targets=(1.5,))

    def test_infeasible_message_diagnoses_every_candidate(self):
        """The NoFeasiblePlanError message must say *why* each candidate
        fell out -- the SLA target, and per candidate either the DRAM
        verdict or its worst drop rate."""
        planner = CapacityPlanner(
            policy=SlaPolicy(1e-9),
            space=SMALL_SPACE,
            settings=SuiteSettings(
                num_requests=10, pooling_requests=100, serving=ServingConfig(seed=1)
            ),
        )
        plan = planner.plan(small_mix())
        with pytest.raises(NoFeasiblePlanError) as excinfo:
            plan.require()
        message = str(excinfo.value)
        assert f"target {planner.policy.target_latency * 1e3:.2f} ms" in message
        for candidate in plan.candidates:
            assert candidate.label in message
        # the singular candidate fails on DRAM, the sharded ones on SLA
        assert "does not fit DRAM" in message
        assert "drop rate" in message


class TestPlanCli:
    def test_plan_command_smoke(self, capsys):
        code = main(
            [
                "plan", "--models", "DRM1", "DRM2", "--requests", "15",
                "--pooling-requests", "100", "--trace-mode", "aggregate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "closed-loop search" in out
        assert "chosen:" in out
        assert "per-workload sizing" in out

    def test_plan_command_infeasible_exit_code(self, capsys):
        code = main(
            [
                "plan", "--models", "DRM1", "--arrivals", "poisson",
                "--requests", "10", "--pooling-requests", "100",
                "--target-ms", "0.0001",
            ]
        )
        assert code == 1
        assert "no feasible deployment" in capsys.readouterr().out

"""Workload-subsystem tests: arrival processes, mixes, cache-aware streams.

Covers the refactor's compatibility contract (ReplaySchedule is a thin
facade with byte-identical classic streams), arrival-stream determinism
across rate spellings and across serial/parallel sweeps, stable mix
merging, the FULL == AGGREGATE bit-for-bit guarantee for co-located
multi-model runs (including the per-workload label column), and the
correlated sparse-ID stream feeding the caching analysis.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.caching import cache_curve, cache_curves, trace_hit_summary
from repro.core.rng import substream
from repro.experiments import (
    ShardingConfiguration,
    SuiteSettings,
    mix_configurations,
    paper_configurations,
    run_mix_configuration,
    run_mix_suite,
    run_mix_suite_parallel,
    run_suite,
    run_suite_parallel,
    TraceMode,
)
from repro.experiments.configs import build_plan
from repro.models import drm1, drm2
from repro.requests import (
    CorrelatedStream,
    ReplaySchedule,
    RequestGenerator,
    collect_access_trace,
    collect_correlated_trace,
)
from repro.serving import ClusterSimulation, ServingConfig
from repro.serving.elasticity import diurnal_qps_curve as elasticity_curve
from repro.sharding import singular_plan
from repro.workloads import (
    ConstantRateArrivals,
    MMPPArrivals,
    PiecewiseRateArrivals,
    PoissonArrivals,
    SerialArrivals,
    Workload,
    WorkloadMix,
    diurnal_qps_curve,
)

SETTINGS = SuiteSettings(
    num_requests=12, pooling_requests=120, serving=ServingConfig(seed=1)
)
TWO_CONFIGS = (
    ShardingConfiguration("singular"),
    ShardingConfiguration("load-bal", 2),
)


def small_mix(arrivals_a=None, arrivals_b=None) -> WorkloadMix:
    return WorkloadMix(
        (
            Workload(
                "ranking", drm1(),
                arrivals_a or PiecewiseRateArrivals.diurnal(50.0, seed=7),
                request_seed=3,
            ),
            Workload(
                "retrieval", drm2(),
                arrivals_b or PiecewiseRateArrivals.diurnal(30.0, seed=8),
                request_seed=4,
            ),
        )
    )


class TestReplayScheduleFacade:
    """Satellite: count validation + byte-identical classic streams."""

    def test_negative_count_raises_clearly(self):
        with pytest.raises(ValueError, match="count must be >= 0"):
            ReplaySchedule.open_loop(25.0).arrival_times(-1)
        with pytest.raises(ValueError, match="count must be >= 0"):
            ReplaySchedule.serial().arrival_times(-3)

    def test_non_integer_count_raises(self):
        with pytest.raises(TypeError, match="count must be an integer"):
            ReplaySchedule.open_loop(25.0).arrival_times(2.5)

    def test_zero_count_returns_empty_array_open_loop(self):
        times = ReplaySchedule.open_loop(25.0).arrival_times(0)
        assert isinstance(times, np.ndarray)
        assert times.shape == (0,)

    def test_zero_count_returns_none_serial(self):
        assert ReplaySchedule.serial().arrival_times(0) is None
        assert ReplaySchedule.serial().arrival_times(5) is None

    def test_open_loop_stream_is_byte_identical_to_history(self):
        """The facade must replay the exact historical Poisson stream."""
        schedule = ReplaySchedule.open_loop(25.0, seed=2)
        historical = np.cumsum(
            substream(2, "arrivals", 25.0).exponential(1.0 / 25.0, size=400)
        )
        assert np.array_equal(schedule.arrival_times(400), historical)
        assert np.array_equal(
            PoissonArrivals(25.0, seed=2).arrival_times(400), historical
        )

    def test_facade_exposes_its_process(self):
        assert isinstance(ReplaySchedule.serial().arrival_process(), SerialArrivals)
        process = ReplaySchedule.open_loop(25, seed=3).arrival_process()
        assert process == PoissonArrivals(25.0, seed=3)
        diurnal = PiecewiseRateArrivals.diurnal(40.0, seed=1)
        wrapped = ReplaySchedule.from_arrivals(diurnal)
        assert wrapped.arrival_process() is diurnal
        assert np.array_equal(
            wrapped.arrival_times(100), diurnal.arrival_times(100)
        )
        assert ReplaySchedule.from_arrivals(SerialArrivals()) == ReplaySchedule.serial()

    def test_custom_process_requires_open_loop(self):
        from repro.requests.replayer import ReplayMode

        with pytest.raises(ValueError, match="open-loop"):
            ReplaySchedule(
                mode=ReplayMode.SERIAL, process=ConstantRateArrivals(10.0)
            )


class TestArrivalDeterminism:
    """Satellite: identical streams across int/float/numpy rate spellings."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda rate: PoissonArrivals(rate, seed=1),
            lambda rate: ConstantRateArrivals(rate),
            lambda rate: PiecewiseRateArrivals.diurnal(rate, seed=1),
            lambda rate: MMPPArrivals((rate, 4 * rate), 30.0, seed=1),
        ],
        ids=["poisson", "constant", "diurnal", "mmpp"],
    )
    def test_rate_spellings_share_one_stream(self, factory):
        spellings = [25, 25.0, np.float64(25.0), np.int64(25)]
        streams = [factory(rate).arrival_times(300) for rate in spellings]
        for other in streams[1:]:
            assert np.array_equal(streams[0], other)
        assert factory(25) == factory(np.float64(25.0))

    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(40.0, seed=5),
            ConstantRateArrivals(40.0),
            PiecewiseRateArrivals.diurnal(40.0, seed=5),
            MMPPArrivals((10.0, 120.0), 45.0, seed=5),
        ],
        ids=["poisson", "constant", "diurnal", "mmpp"],
    )
    def test_streams_are_sorted_prefix_stable_and_replayable(self, process):
        times = process.arrival_times(500)
        assert times.shape == (500,)
        assert np.all(np.diff(times) >= 0.0)
        assert np.all(times >= 0.0)
        assert np.array_equal(times, process.arrival_times(500))
        # Prefix stability: asking for fewer arrivals replays a prefix.
        assert np.array_equal(times[:200], process.arrival_times(200))
        assert process.arrival_times(0).shape == (0,)

    def test_piecewise_tracks_its_rate_curve(self):
        """More arrivals land in high-rate segments than low-rate ones."""
        process = PiecewiseRateArrivals(
            rates=(5.0, 100.0), interval_seconds=100.0, seed=3
        )
        times = process.arrival_times(4000)
        phase = times % process.period_seconds
        slow = int(np.count_nonzero(phase < 100.0))
        fast = len(times) - slow
        assert fast > 5 * slow

    def test_mmpp_is_burstier_than_poisson(self):
        """Squared coefficient of variation of gaps must exceed ~1."""
        bursty = MMPPArrivals((5.0, 150.0), 30.0, seed=9).arrival_times(4000)
        gaps = np.diff(bursty)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5

    @pytest.mark.parametrize(
        "arrivals",
        [
            PoissonArrivals(200.0, seed=11),
            PiecewiseRateArrivals.diurnal(200.0, seed=11),
        ],
        ids=["poisson", "diurnal"],
    )
    def test_suite_matches_parallel_suite(self, arrivals):
        """Satellite: run_suite == run_suite_parallel under any process."""
        model = drm1()
        settings = dataclasses.replace(SETTINGS, arrivals=arrivals)
        serial = run_suite(model, settings, TWO_CONFIGS)
        parallel = run_suite_parallel(model, settings, TWO_CONFIGS, max_workers=2)
        assert list(serial) == list(parallel)
        for label in serial:
            assert np.array_equal(serial[label].e2e, parallel[label].e2e), label
            assert np.array_equal(serial[label].cpu, parallel[label].cpu), label


class TestDiurnalCurveDedup:
    """Satellite: one diurnal curve shared by elasticity and arrivals."""

    def test_elasticity_reexports_the_workloads_curve(self):
        assert elasticity_curve is diurnal_qps_curve

    def test_defaults_match_historical_output(self):
        curve = diurnal_qps_curve(1000.0, 0.4)
        phase = 2.0 * np.pi * (np.arange(24) / 24)
        historical = 1000.0 * (0.7 - 0.3 * np.cos(phase))
        assert np.array_equal(curve, historical)

    def test_generalized_sampling_covers_same_day(self):
        coarse = diurnal_qps_curve(100.0, 0.5, hours=24)
        fine = diurnal_qps_curve(100.0, 0.5, hours=24, samples=96)
        assert len(fine) == 96
        # Every 4th fine sample sits on the hourly grid.
        assert np.allclose(fine[::4], coarse)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            diurnal_qps_curve(100.0, trough_fraction=0.0)
        with pytest.raises(ValueError):
            diurnal_qps_curve(100.0, samples=0)
        with pytest.raises(ValueError):
            diurnal_qps_curve(100.0, period_hours=0.0)


class TestWorkloadMix:
    def test_merge_is_stable_under_equal_timestamps(self):
        """Satellite: equal-time arrivals keep workload declaration order."""
        mix = WorkloadMix(
            (
                Workload("a", drm1(), ConstantRateArrivals(10.0), request_seed=1),
                Workload("b", drm1(), ConstantRateArrivals(10.0), request_seed=2),
            )
        )
        stream = mix.sample(6)
        # Identical constant-rate processes collide at every timestamp:
        # workload a must precede workload b at each collision.
        assert stream.workload_ids.tolist() == [0, 1] * 6
        assert [r.request_id for r in stream.requests] == list(range(12))
        # Times are the merged nondecreasing union.
        assert np.all(np.diff(stream.times) >= 0.0)
        assert stream.counts == (6, 6)

    def test_sample_rejects_serial_arrivals_and_bad_counts(self):
        serial_workload = Workload("s", drm1(), SerialArrivals())
        with pytest.raises(ValueError, match="serial arrivals"):
            serial_workload.sample(4)
        mix = small_mix()
        with pytest.raises(ValueError, match="counts"):
            mix.sample([3])
        with pytest.raises(ValueError, match="unique"):
            WorkloadMix(
                (
                    Workload("x", drm1(), ConstantRateArrivals(1.0)),
                    Workload("x", drm2(), ConstantRateArrivals(1.0)),
                )
            )
        with pytest.raises(ValueError, match="at least one"):
            WorkloadMix(())

    def test_per_workload_counts(self):
        stream = small_mix().sample([5, 9])
        assert stream.counts == (5, 9)
        assert len(stream) == 14
        assert np.count_nonzero(stream.workload_ids == 0) == 5
        assert np.count_nonzero(stream.workload_ids == 1) == 9

    def test_request_timestamps_are_arrival_times(self):
        """Diurnal size modulation must track the arrival curve."""
        stream = small_mix().sample(8)
        for time, _, request in stream:
            assert request.timestamp == pytest.approx(time)

    def test_suite_requests_track_arrivals_when_set(self):
        """SuiteSettings.arrivals couples request timestamps (and thus
        size modulation) to the arrival curve, like Workload.sample."""
        from repro.experiments import suite_requests

        model = drm1()
        arrivals = PiecewiseRateArrivals.diurnal(80.0, seed=3)
        settings = dataclasses.replace(SETTINGS, arrivals=arrivals)
        requests = suite_requests(model, settings)
        times = arrivals.arrival_times(len(requests))
        assert [r.timestamp for r in requests] == pytest.approx(times.tolist())
        # Serial arrivals (and no arrivals) keep the classic window.
        classic = suite_requests(model, SETTINGS)
        serial = suite_requests(
            model, dataclasses.replace(SETTINGS, arrivals=SerialArrivals())
        )
        assert [r.timestamp for r in serial] == [r.timestamp for r in classic]


class TestMixConfigurations:
    def test_same_model_keeps_full_matrix(self):
        assert mix_configurations(["DRM1", "DRM2"]) == paper_configurations("DRM1")

    def test_drm3_restricts_the_intersection(self):
        common = mix_configurations(["DRM1", "DRM3"])
        assert common == paper_configurations("DRM3")
        assert all(c.strategy in ("singular", "1-shard", "NSBP") for c in common)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            mix_configurations([])


class TestColocatedCluster:
    def test_single_tenant_colocated_matches_classic(self):
        """A one-tenant colocated cluster is byte-identical to the classic
        single-model constructor (same substream keys, same hosts)."""
        model = drm1()
        plan = singular_plan(model)
        requests = RequestGenerator(model, seed=3).generate_many(6)
        classic = ClusterSimulation(model, plan, ServingConfig(seed=1))
        classic.run_serial(requests)
        requests2 = RequestGenerator(model, seed=3).generate_many(6)
        colocated = ClusterSimulation.colocated(
            [(model, plan)], ServingConfig(seed=1)
        )
        colocated.run_serial(requests2)
        assert classic.completed == colocated.completed

    def test_mix_full_and_aggregate_agree_bit_for_bit(self):
        """Acceptance: two-model diurnal mix, FULL == AGGREGATE columns
        including the per-workload label column."""
        mix = small_mix()
        full = run_mix_suite(mix, SETTINGS, TWO_CONFIGS)
        aggregate = run_mix_suite(
            mix,
            dataclasses.replace(SETTINGS, trace_mode=TraceMode.AGGREGATE),
            TWO_CONFIGS,
        )
        assert list(full) == list(aggregate)
        for label in full:
            f, a = full[label], aggregate[label]
            assert len(f) == len(a) == 24
            assert np.array_equal(f.e2e, a.e2e), label
            assert np.array_equal(f.cpu, a.cpu), label
            assert np.array_equal(f.workloads, a.workloads), label
            assert f.workload_labels == a.workload_labels == ("ranking", "retrieval")
            for kind in ("latency", "embedded", "cpu"):
                full_cols = f.stack_columns(kind)
                agg_cols = a.stack_columns(kind)
                for bucket in full_cols:
                    assert np.array_equal(
                        full_cols[bucket], agg_cols[bucket]
                    ), (label, kind, bucket)
            # AGGREGATE retains no attributions, FULL retains all.
            assert a.attributions == []
            assert len(f.attributions) == 24

    def test_mix_serial_matches_parallel(self):
        mix = small_mix()
        serial = run_mix_suite(mix, SETTINGS, TWO_CONFIGS)
        parallel = run_mix_suite_parallel(mix, SETTINGS, TWO_CONFIGS, max_workers=2)
        assert list(serial) == list(parallel)
        for label in serial:
            assert np.array_equal(serial[label].e2e, parallel[label].e2e)
            assert np.array_equal(serial[label].workloads, parallel[label].workloads)

    def test_per_workload_views(self):
        mix = small_mix()
        stream = mix.sample(10)
        plans = [singular_plan(w.model) for w in mix.workloads]
        result = run_mix_configuration(mix, plans, stream, ServingConfig(seed=1))
        per = result.per_workload_e2e()
        assert set(per) == {"ranking", "retrieval"}
        assert sum(len(v) for v in per.values()) == len(result) == 20
        assert np.count_nonzero(result.workload_mask("ranking")) == 10
        assert result.plans == plans

    def test_colocation_contends_on_shared_hosts(self):
        """Co-located replay must be slower than the same workload running
        the same stream alone on the same hosts (worker contention)."""
        mix = small_mix(
            arrivals_a=PoissonArrivals(2000.0, seed=7),
            arrivals_b=PoissonArrivals(2000.0, seed=8),
        )
        serving = ServingConfig(seed=1, service_workers=2)
        stream = mix.sample(30)
        plans = [singular_plan(w.model) for w in mix.workloads]
        together = run_mix_configuration(mix, plans, stream, serving)
        ranking_alone = WorkloadMix((mix.workloads[0],))
        alone = run_mix_configuration(
            ranking_alone,
            [plans[0]],
            ranking_alone.sample(30),
            serving,
        )
        together_p99 = np.percentile(together.per_workload_e2e()["ranking"], 99)
        alone_p99 = np.percentile(alone.e2e, 99)
        assert together_p99 > alone_p99

    def test_classic_runs_default_to_one_workload_label(self):
        model = drm1()
        results = run_suite(model, SETTINGS, TWO_CONFIGS)
        for result in results.values():
            assert result.workload_labels == (model.name,)
            assert np.array_equal(result.workloads, np.zeros(len(result), dtype=np.int64))

    def test_run_stream_rejects_time_travel(self):
        model = drm1()
        cluster = ClusterSimulation(model, singular_plan(model), ServingConfig(seed=1))
        requests = RequestGenerator(model, seed=3).generate_many(2)
        with pytest.raises(ValueError, match="nondecreasing"):
            cluster.run_stream([(1.0, 0, requests[0]), (0.5, 0, requests[1])])


class TestCorrelatedStream:
    def test_trace_is_deterministic(self):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(30)
        stream = CorrelatedStream(recency_weight=0.4, window=512, seed=5)
        first = collect_correlated_trace(model, requests, stream)
        second = collect_correlated_trace(model, requests, stream)
        assert first.tables() == second.tables()
        for name in first.tables():
            assert np.array_equal(first.accesses[name], second.accesses[name])

    def test_recency_raises_lru_hit_rate(self):
        """The cache-aware loop: recency-correlated streams must be more
        cacheable online than i.i.d. popularity draws."""
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(60)
        iid = collect_access_trace(model, requests, seed=5)
        correlated = collect_correlated_trace(
            model, requests, CorrelatedStream(recency_weight=0.5, window=1024, seed=5)
        )
        iid_hits = trace_hit_summary(iid, cache_fraction=0.05)["overall"]
        correlated_hits = trace_hit_summary(correlated, cache_fraction=0.05)["overall"]
        assert correlated_hits > iid_hits

    def test_generator_and_workload_expose_the_stream_option(self):
        model = drm1()
        generator = RequestGenerator(model, seed=3)
        requests = generator.generate_many(20)
        stream = CorrelatedStream(recency_weight=0.3, seed=3)
        via_generator = generator.access_trace(requests, id_stream=stream)
        workload = Workload(
            "w", model, ConstantRateArrivals(10.0), request_seed=3, id_stream=stream
        )
        via_workload = workload.access_trace(requests)
        for name in via_generator.tables():
            assert np.array_equal(
                via_generator.accesses[name], via_workload.accesses[name]
            )
        # Default (no stream) falls back to the i.i.d. collector.
        iid = generator.access_trace(requests)
        reference = collect_access_trace(model, requests, seed=3)
        for name in reference.tables():
            assert np.array_equal(iid.accesses[name], reference.accesses[name])

    def test_trace_feeds_caching_analysis_directly(self):
        model = drm1()
        workload = Workload(
            "w", model, ConstantRateArrivals(50.0), request_seed=3,
            id_stream=CorrelatedStream(recency_weight=0.3, seed=1),
        )
        _, requests = workload.sample(25)
        trace = workload.access_trace(requests)
        curves = cache_curves(trace, fractions=(0.05, 0.25), policies=("lru",))
        assert set(curves) == set(trace.tables())
        for points in curves.values():
            assert [p.cache_fraction for p in points] == [0.05, 0.25]
            assert all(0.0 <= p.hit_rate <= 1.0 for p in points)
        # Single-table entry point still works on workload traces.
        table = trace.tables()[0]
        assert cache_curve(trace, table, fractions=(0.1,), policies=("lru",))

    def test_invalid_stream_parameters_raise(self):
        with pytest.raises(ValueError):
            CorrelatedStream(recency_weight=1.0)
        with pytest.raises(ValueError):
            CorrelatedStream(window=0)

    def test_mix_access_traces_split_by_workload(self):
        mix = small_mix()
        stream = mix.sample(10)
        traces = mix.access_traces(stream)
        assert set(traces) == {"ranking", "retrieval"}
        assert traces["ranking"].num_requests == 10
        assert traces["retrieval"].num_requests == 10

    def test_trace_is_invariant_to_colocation(self):
        """A workload's trace is position-keyed: identical whether its
        stream was sampled alone or renumbered inside a mix."""
        mix = small_mix()
        mixed = mix.access_traces(mix.sample(10))
        for workload in mix.workloads:
            solo_mix = WorkloadMix((workload,))
            solo = solo_mix.access_traces(solo_mix.sample(10))[workload.name]
            for name in solo.tables():
                assert np.array_equal(
                    solo.accesses[name], mixed[workload.name].accesses[name]
                ), (workload.name, name)

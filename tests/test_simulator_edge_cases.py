"""Edge-case and failure-injection tests for the serving simulator."""

import dataclasses

import numpy as np
import pytest

from repro.models import drm1, drm3
from repro.models.config import (
    FeatureScope,
    ModelConfig,
    NetConfig,
    RequestProfile,
    TableConfig,
)
from repro.requests import ReplaySchedule, RequestGenerator
from repro.requests.generator import Request
from repro.serving import ClusterSimulation, ServingConfig
from repro.sharding import STRATEGIES, ShardingError, singular_plan
from repro.sharding.plan import ShardingPlan, ShardSpec, TableAssignment
from repro.tracing import Layer, MAIN_SHARD, attribute_request


def minimal_model(activation=1.0):
    """A one-net, two-table model for boundary testing."""
    return ModelConfig(
        name="MINI",
        nets=(NetConfig("net1", dense_us_per_item=1.0, dense_us_fixed=20.0),),
        tables=(
            TableConfig(
                "mini_a", "net1", 1000, 16,
                scope=FeatureScope.USER, activation_prob=activation, mean_ids=3,
            ),
            TableConfig(
                "mini_b", "net1", 1000, 16,
                scope=FeatureScope.ITEM, activation_prob=activation * 0.5, mean_ids=0.2,
            ),
        ),
        profile=RequestProfile(median_items=8, sigma_items=0.3, batch_size=16),
    )


class TestBoundaryModels:
    def test_single_item_requests(self):
        model = minimal_model()
        requests = [
            dataclasses.replace(r, num_items=1)
            for r in RequestGenerator(model, seed=1).generate_many(5)
        ]
        # ITEM draws carry per-item arrays sized to the original item
        # count; regenerate cleanly instead.
        requests = [
            Request(r.request_id, r.timestamp, 1, {}) for r in requests
        ]
        sim = ClusterSimulation(model, singular_plan(model), ServingConfig(seed=1))
        sim.run_serial(requests)
        assert len(sim.completed) == 5

    def test_request_with_no_sparse_features(self):
        """A fully-dense request must still serve (and issue no RPCs)."""
        model = minimal_model(activation=0.0)
        generator = RequestGenerator(model, seed=1)
        requests = generator.generate_many(5)
        assert all(not r.draws for r in requests)
        plan = STRATEGIES["1-shard"].build_plan(model, 1)
        sim = ClusterSimulation(model, plan, ServingConfig(seed=1))
        sim.run_serial(requests)
        for request in requests:
            att = attribute_request(sim.tracer.pop_request(request.request_id))
            assert att.rpcs == 0
            assert att.e2e > 0

    def test_single_worker_serializes_batches(self):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(5)
        fat = [r for r in requests if r.num_items > 200]
        assert fat
        config = ServingConfig(seed=1, service_workers=1)
        sim = ClusterSimulation(model, singular_plan(model), config)
        sim.run_serial(fat)
        spans = sim.tracer.for_request(fat[0].request_id)
        # Batch spans include worker-queue wait and may overlap, but
        # operator execution holds the single worker: op windows must be
        # strictly serialized.
        ops = sorted(
            ((s.start, s.end) for s in spans if s.layer is Layer.OPERATOR)
        )
        for (_, prev_end), (next_start, _) in zip(ops, ops[1:]):
            assert next_start >= prev_end - 1e-12

    def test_extreme_clock_skew_does_not_break_simulation(self):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(5)
        pooling = {t.name: 1.0 for t in model.tables}
        plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
        config = ServingConfig(seed=1, clock_skew_sigma=10.0)  # +/- tens of s
        sim = ClusterSimulation(model, plan, config)
        sim.run_serial(requests)
        for request in requests:
            att = attribute_request(sim.tracer.pop_request(request.request_id))
            assert 0 < att.e2e < 1.0  # attribution unaffected by skew

    def test_overload_storm_completes(self):
        """Open-loop far beyond capacity must still drain (no deadlock)."""
        model = drm3()
        requests = RequestGenerator(model, seed=3).generate_many(40)
        config = ServingConfig(seed=1, service_workers=1)
        sim = ClusterSimulation(model, singular_plan(model), config)
        sim.run_open_loop(requests, ReplaySchedule.open_loop(qps=50_000.0, seed=2))
        assert len(sim.completed) == 40
        latencies = np.array(list(sim.completed.values()))
        # The backlog drains in arrival order: late arrivals queue behind
        # the storm while the earliest request sails through.
        assert latencies.max() > 3 * latencies.min()

    def test_mismatched_plan_rejected(self):
        model = drm1()
        other = minimal_model()
        plan = STRATEGIES["1-shard"].build_plan(other, 1)
        with pytest.raises(ShardingError):
            ClusterSimulation(model, plan, ServingConfig(seed=1))

    def test_partitioned_table_ids_split_conserved(self):
        """Multinomial id routing conserves the total lookup count."""
        model = drm3()
        plan = STRATEGIES["NSBP"].build_plan(model, 8)
        sim = ClusterSimulation(model, plan, ServingConfig(seed=1))
        request = RequestGenerator(model, seed=3).generate(0)
        dominant = max(model.tables, key=lambda t: t.nbytes)
        parts = plan.assignments_for_table(dominant.name)
        split = sim._partition_split(
            request, dominant, 17, parts[0].num_parts
        )
        assert split.sum() == 17
        again = sim._partition_split(request, dominant, 17, parts[0].num_parts)
        np.testing.assert_array_equal(split, again)  # deterministic


class TestTracerVolume:
    def test_incremental_pop_keeps_memory_flat(self):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(20)
        pooling = {t.name: 1.0 for t in model.tables}
        plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
        sim = ClusterSimulation(model, plan, ServingConfig(seed=1))
        popped = []
        sim.on_complete = lambda rid: popped.append(
            len(sim.tracer.pop_request(rid))
        )
        sim.run_serial(requests)
        assert len(popped) == 20
        assert all(count > 0 for count in popped)
        assert sim.tracer.request_ids() == []  # nothing retained

    def test_span_count_scales_with_fanout(self):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(5)
        pooling = {t.name: 1.0 for t in model.tables}

        def spans_for(plan):
            sim = ClusterSimulation(model, plan, ServingConfig(seed=1))
            sim.run_serial(requests)
            return sim.tracer.spans_recorded

        single = spans_for(STRATEGIES["1-shard"].build_plan(model, 1))
        eight = spans_for(STRATEGIES["load-bal"].build_plan(model, 8, pooling))
        assert eight > 2 * single

"""Tests for the operator graph, numeric operators, and the executor."""

import numpy as np
import pytest

from repro.core.embedding import EmbeddingTable
from repro.core.executor import NetExecutor
from repro.core.graph import GraphError, ModelGraph, Net, validate_net
from repro.core.operators import (
    Clip,
    Concat,
    DotInteraction,
    FullyConnected,
    HashMod,
    Relu,
    RemoteCall,
    Sigmoid,
    SparseLengthsSum,
    SumBlobs,
    Workspace,
    ZeroFill,
)
from repro.core.types import OpCategory
from repro.models.config import TableConfig


class TestWorkspace:
    def test_feed_fetch_roundtrip(self):
        ws = Workspace()
        ws.feed("x", np.array([1.0, 2.0]))
        np.testing.assert_array_equal(ws.fetch("x"), [1.0, 2.0])

    def test_missing_blob_raises(self):
        with pytest.raises(KeyError):
            Workspace().fetch("nope")

    def test_has(self):
        ws = Workspace()
        assert not ws.has("x")
        ws.feed("x", np.zeros(1))
        assert ws.has("x")


class TestOperators:
    def test_fully_connected(self):
        ws = Workspace()
        ws.feed("x", np.array([[1.0, 2.0]]))
        ws.feed("w", np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]))
        ws.feed("b", np.array([0.5, 0.5, 0.5]))
        FullyConnected("fc", ("x",), ("y",), weight_blob="w", bias_blob="b").run(ws)
        np.testing.assert_allclose(ws.fetch("y"), [[1.5, 2.5, 3.5]])

    def test_relu(self):
        ws = Workspace()
        ws.feed("x", np.array([-1.0, 0.0, 2.0]))
        Relu("r", ("x",), ("y",)).run(ws)
        np.testing.assert_array_equal(ws.fetch("y"), [0.0, 0.0, 2.0])

    def test_sigmoid_bounds(self):
        ws = Workspace()
        ws.feed("x", np.array([-100.0, 0.0, 100.0]))
        Sigmoid("s", ("x",), ("y",)).run(ws)
        out = ws.fetch("y")
        assert out[1] == pytest.approx(0.5)
        assert 0.0 <= out[0] < 1e-6 and 1 - 1e-6 < out[2] <= 1.0

    def test_clip(self):
        ws = Workspace()
        ws.feed("x", np.array([-5.0, 0.0, 5.0]))
        Clip("c", ("x",), ("y",), lo=-1.0, hi=1.0).run(ws)
        np.testing.assert_array_equal(ws.fetch("y"), [-1.0, 0.0, 1.0])

    def test_hash_mod_in_range_and_deterministic(self):
        ws = Workspace()
        raw = np.array([0, 1, 2**40, -17, 123456789], dtype=np.int64)
        ws.feed("raw", raw)
        HashMod("h", ("raw",), ("ids",), num_buckets=97).run(ws)
        ids = ws.fetch("ids")
        assert ((ids >= 0) & (ids < 97)).all()
        HashMod("h2", ("raw",), ("ids2",), num_buckets=97).run(ws)
        np.testing.assert_array_equal(ids, ws.fetch("ids2"))

    def test_hash_mod_spreads_sequential_ids(self):
        ws = Workspace()
        ws.feed("raw", np.arange(1000, dtype=np.int64))
        HashMod("h", ("raw",), ("ids",), num_buckets=64).run(ws)
        counts = np.bincount(ws.fetch("ids"), minlength=64)
        assert counts.max() < 3 * counts.mean()

    def test_concat_broadcasts_request_level_blobs(self):
        ws = Workspace()
        ws.feed("a", np.ones((1, 2)))
        ws.feed("b", np.arange(6.0).reshape(3, 2))
        Concat("c", ("a", "b"), ("y",)).run(ws)
        out = ws.fetch("y")
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out[:, :2], np.ones((3, 2)))

    def test_zero_fill_rows_like(self):
        ws = Workspace()
        ws.feed("ref", np.zeros((5, 3)))
        ZeroFill("z", (), ("y",), dim=4, rows_like="ref").run(ws)
        assert ws.fetch("y").shape == (5, 4)

    def test_zero_fill_request_level(self):
        ws = Workspace()
        ZeroFill("z", (), ("y",), dim=4).run(ws)
        assert ws.fetch("y").shape == (1, 4)

    def test_sum_blobs(self):
        ws = Workspace()
        ws.feed("a", np.ones((2, 2)))
        ws.feed("b", 2 * np.ones((2, 2)))
        SumBlobs("s", ("a", "b"), ("y",)).run(ws)
        np.testing.assert_array_equal(ws.fetch("y"), 3 * np.ones((2, 2)))

    def test_dot_interaction_pairwise(self):
        ws = Workspace()
        ws.feed("u", np.array([[1.0, 0.0]]))
        ws.feed("v", np.array([[2.0, 3.0], [0.0, 1.0]]))
        DotInteraction("d", ("u", "v"), ("y",)).run(ws)
        np.testing.assert_allclose(ws.fetch("y"), [[2.0], [0.0]])

    def test_sparse_lengths_sum_op(self):
        config = TableConfig("t", "net1", 16, 4)
        table = EmbeddingTable.materialize(config, max_rows=16)
        ws = Workspace()
        ws.feed("ids", np.array([1, 2]))
        ws.feed("lens", np.array([2]))
        SparseLengthsSum("sls", ("ids", "lens"), ("out",), table=table).run(ws)
        np.testing.assert_allclose(
            ws.fetch("out")[0], table.weights[1] + table.weights[2], rtol=1e-6
        )

    def test_remote_call_roundtrip(self):
        calls = []

        def invoke(net_name, payload):
            calls.append((net_name, sorted(payload)))
            return {"t_pooled": np.ones((1, 4))}

        ws = Workspace()
        ws.feed("t_values", np.array([1]))
        ws.feed("t_lengths", np.array([1]))
        op = RemoteCall(
            "rpc", ("t_values", "t_lengths"), ("t_pooled",),
            shard_index=0, net_name="net1", invoke=invoke,
        )
        assert op.is_async
        op.run(ws)
        assert calls == [("net1", ["t_lengths", "t_values"])]
        np.testing.assert_array_equal(ws.fetch("t_pooled"), np.ones((1, 4)))

    def test_remote_call_wrong_outputs_rejected(self):
        op = RemoteCall(
            "rpc", (), ("expected",), shard_index=0, net_name="n",
            invoke=lambda net, payload: {"wrong": np.zeros(1)},
        )
        with pytest.raises(RuntimeError):
            op.run(Workspace())


class TestGraphValidation:
    def test_valid_net_passes(self):
        net = Net("n", external_inputs={"x"})
        net.add(Relu("r", ("x",), ("y",)))
        net.external_outputs.append("y")
        validate_net(net)

    def test_undefined_input_rejected(self):
        net = Net("n")
        net.add(Relu("r", ("ghost",), ("y",)))
        with pytest.raises(GraphError):
            validate_net(net)

    def test_double_production_rejected(self):
        net = Net("n", external_inputs={"x"})
        net.add(Relu("a", ("x",), ("y",)))
        net.add(Relu("b", ("x",), ("y",)))
        with pytest.raises(GraphError):
            validate_net(net)

    def test_missing_external_output_rejected(self):
        net = Net("n", external_inputs={"x"})
        net.external_outputs.append("never")
        with pytest.raises(GraphError):
            validate_net(net)

    def test_model_graph_net_lookup(self):
        graph = ModelGraph("m", [Net("a"), Net("b")])
        assert graph.net("b").name == "b"
        with pytest.raises(KeyError):
            graph.net("c")


class TestExecutor:
    def test_stats_collected(self):
        net = Net("n", external_inputs={"x"})
        net.add(Relu("r", ("x",), ("y",)))
        net.add(Clip("c", ("y",), ("z",)))
        executor = NetExecutor()
        executor.workspace.feed("x", np.array([1.0]))
        executor.run_net(net)
        assert executor.stats.ops_run == 2
        assert executor.stats.ops_by_category[OpCategory.ACTIVATIONS] == 1
        assert executor.stats.ops_by_category[OpCategory.SCALE_CLIP] == 1

    def test_missing_external_input_raises(self):
        net = Net("n", external_inputs={"x"})
        with pytest.raises(KeyError):
            NetExecutor().run_net(net)

"""Coverage for the figure generators not exercised in test_experiments:
batching stacks (13/14), platforms (15), QPS (16), and compression (T3)."""

import numpy as np
import pytest

from repro.compression import compress_model
from repro.experiments import SuiteSettings, figures, run_configuration, run_suite, suite_requests
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.models import drm1
from repro.requests import ReplaySchedule
from repro.serving import ServingConfig
from repro.sharding import SINGULAR, estimate_pooling_factors
from repro.simulation.platform import SC_SMALL

SMALL = SuiteSettings(num_requests=25, pooling_requests=100)


@pytest.fixture(scope="module")
def model():
    return drm1()


@pytest.fixture(scope="module")
def pooling(model):
    return estimate_pooling_factors(model, 100, seed=42)


@pytest.fixture(scope="module")
def mini_suite(model):
    configs = (
        ShardingConfiguration(SINGULAR),
        ShardingConfiguration("load-bal", 8),
        ShardingConfiguration("cap-bal", 8),
        ShardingConfiguration("NSBP", 2),
        ShardingConfiguration("NSBP", 8),
        ShardingConfiguration("load-bal", 2),
    )
    return run_suite(model, SMALL, configurations=configs)


@pytest.fixture(scope="module")
def mini_single_batch(model):
    configs = (
        ShardingConfiguration(SINGULAR),
        ShardingConfiguration("load-bal", 8),
        ShardingConfiguration("cap-bal", 8),
        ShardingConfiguration("NSBP", 2),
        ShardingConfiguration("NSBP", 8),
        ShardingConfiguration("load-bal", 2),
    )
    settings = SuiteSettings(
        num_requests=25, pooling_requests=100,
        serving=ServingConfig(seed=1).with_batch_size(10**9),
    )
    return run_suite(model, settings, configurations=configs)


class TestBatchingFigures:
    def test_fig13_structure(self, mini_suite, mini_single_batch):
        artifact = figures.fig13_batching_latency(
            {"DRM1": mini_suite}, {"DRM1": mini_single_batch}
        )
        overheads = artifact.data["p50_overheads"]
        assert "DRM1/default" in overheads and "DRM1/single-batch" in overheads
        assert "DRM1/default/singular" in artifact.data["stacks"]
        # Single-batch reduces the 8-shard latency overhead.
        assert (
            overheads["DRM1/single-batch"]["load-bal 8 shards"]
            < overheads["DRM1/default"]["load-bal 8 shards"]
        )

    def test_fig14_structure(self, mini_suite, mini_single_batch):
        artifact = figures.fig14_batching_cpu(
            {"DRM1": mini_suite}, {"DRM1": mini_single_batch}
        )
        overheads = artifact.data["p50_overheads"]
        assert (
            overheads["DRM1/single-batch"]["load-bal 8 shards"]
            < overheads["DRM1/default"]["load-bal 8 shards"]
        )


class TestPlatformFigure:
    def test_fig15(self, model, pooling):
        requests = suite_requests(model, SMALL)
        plan = build_plan(model, ShardingConfiguration("load-bal", 8), pooling)
        large = run_configuration(model, plan, requests, ServingConfig(seed=1))
        small = run_configuration(
            model, plan, requests, ServingConfig(seed=1, sparse_platform=SC_SMALL)
        )
        artifact = figures.fig15_platforms(large, small)
        assert artifact.data["mean_ratio_small_over_large"] == pytest.approx(1.0, abs=0.12)
        assert "SC-Small" in artifact.text


class TestQpsFigure:
    def test_fig16(self, model):
        settings = SuiteSettings(
            num_requests=40, pooling_requests=100,
            serving=ServingConfig(seed=1, service_workers=2),
            schedule=ReplaySchedule.open_loop(25.0, seed=2),
        )
        configs = (
            ShardingConfiguration(SINGULAR),
            ShardingConfiguration("load-bal", 8),
        )
        results = run_suite(model, settings, configurations=configs)
        artifact = figures.fig16_qps_overheads(results)
        assert artifact.data["load-bal 8 shards"][99]["latency"] < 0.05


class TestCompressionTable:
    def test_table3(self, model):
        compressed, report = compress_model(model)
        requests = suite_requests(model, SMALL)
        base = run_configuration(
            model, build_plan(model, ShardingConfiguration(SINGULAR)),
            requests, ServingConfig(seed=1),
        )
        comp = run_configuration(
            compressed, build_plan(compressed, ShardingConfiguration(SINGULAR)),
            requests, ServingConfig(seed=1),
        )
        artifact = figures.table3_compression(base, comp, report)
        assert artifact.data["ratio"] == pytest.approx(5.56, rel=0.08)
        u50, c50 = artifact.data["E2E Latency-P50"]
        assert u50 == pytest.approx(1.0)
        assert c50 == pytest.approx(1.0, rel=0.05)

    def test_figure_artifact_str(self):
        artifact = figures.fig1_model_growth()
        assert "Model growth" in str(artifact)

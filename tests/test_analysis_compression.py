"""Tests for the analysis helpers and the compression subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    format_stack_bars,
    format_table,
    median_window_mean,
    overhead_series,
    overhead_vs_baseline,
    quantile,
    quantiles,
)
from repro.compression import (
    CompressionSpec,
    compress_model,
    dequantize_rows,
    prune_by_frequency,
    prune_by_magnitude,
    quantization_error_bound,
    quantize_rows,
    remap_ids,
)
from repro.core.types import GIB, DType
from repro.models import drm1, drm3


class TestQuantiles:
    def test_quantile_basic(self):
        assert quantile([1, 2, 3, 4, 5], 50) == 3.0

    def test_quantiles_keys(self):
        qs = quantiles(np.arange(100))
        assert set(qs) == {50, 90, 99}
        assert qs[50] < qs[90] < qs[99]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantile([], 50)

    def test_overhead_vs_baseline(self):
        base = [1.0] * 10
        values = [1.2] * 10
        assert overhead_vs_baseline(values, base, 50) == pytest.approx(0.2)

    def test_overhead_series_points(self):
        base = np.ones(100)
        lat = np.full(100, 1.1)
        cpu = np.full(100, 1.5)
        points = overhead_series(lat, cpu, base, base)
        assert [p.quantile for p in points] == [50, 90, 99]
        assert all(p.latency_overhead == pytest.approx(0.1) for p in points)
        assert all(p.compute_overhead == pytest.approx(0.5) for p in points)

    def test_median_window_mean(self):
        stacks = [{"a": float(i)} for i in range(101)]
        keys = list(range(101))
        merged = median_window_mean(stacks, keys)
        assert merged["a"] == pytest.approx(50.0, abs=1.0)

    def test_median_window_mismatch_rejected(self):
        with pytest.raises(ValueError):
            median_window_mean([{"a": 1.0}], [1.0, 2.0])


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["x", "yy"], [[1, 2.5], ["ab", 3.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_format_stack_bars_normalizes(self):
        stacks = {
            "small": {"a": 1.0, "b": 1.0},
            "big": {"a": 2.0, "b": 2.0},
        }
        text = format_stack_bars(stacks, ["a", "b"])
        assert "(1.00)" in text  # the tallest bar
        assert "(0.50)" in text


class TestQuantization:
    def test_roundtrip_error_within_bound_8bit(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 0.1, size=(64, 32)).astype(np.float32)
        q = quantize_rows(weights, 8)
        error = np.abs(dequantize_rows(q) - weights)
        bound = quantization_error_bound(weights, 8)
        assert (error.max(axis=1) <= bound).all()

    def test_roundtrip_error_within_bound_4bit(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(0, 0.1, size=(64, 32)).astype(np.float32)
        q = quantize_rows(weights, 4)
        error = np.abs(dequantize_rows(q) - weights)
        bound = quantization_error_bound(weights, 4)
        assert (error.max(axis=1) <= bound).all()

    def test_8bit_more_accurate_than_4bit(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(0, 0.1, size=(128, 64)).astype(np.float32)
        err8 = np.abs(dequantize_rows(quantize_rows(weights, 8)) - weights).mean()
        err4 = np.abs(dequantize_rows(quantize_rows(weights, 4)) - weights).mean()
        assert err8 < err4

    def test_nbytes_packed(self):
        weights = np.zeros((10, 64), dtype=np.float32)
        assert quantize_rows(weights, 8).nbytes == 10 * (64 + 4)
        assert quantize_rows(weights, 4).nbytes == 10 * (32 + 4)

    def test_constant_rows_survive(self):
        weights = np.full((4, 8), 3.25, dtype=np.float32)
        out = dequantize_rows(quantize_rows(weights, 8))
        np.testing.assert_allclose(out, weights, atol=1e-5)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_rows(np.zeros((2, 2)), 5)

    @given(seed=st.integers(0, 500), bits=st.sampled_from([4, 8]))
    @settings(max_examples=25, deadline=None)
    def test_error_bound_property(self, seed, bits):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 32))
        dim = int(rng.integers(1, 48))
        weights = rng.normal(0, 1, size=(rows, dim)).astype(np.float32)
        q = quantize_rows(weights, bits)
        error = np.abs(dequantize_rows(q) - weights)
        bound = quantization_error_bound(weights, bits)
        assert (error.max(axis=1) <= bound + 1e-5).all()


class TestPruning:
    def test_magnitude_keeps_largest(self):
        weights = np.diag([1.0, 5.0, 3.0, 0.1]).astype(np.float32)
        pruned = prune_by_magnitude(weights, 0.5)
        assert pruned.num_rows == 2
        assert set(pruned.kept_rows) == {1, 2}

    def test_frequency_keeps_hottest(self):
        weights = np.eye(4, dtype=np.float32)
        pruned = prune_by_frequency(weights, np.array([10, 0, 5, 1]), 0.5)
        assert set(pruned.kept_rows) == {0, 2}

    def test_remap_ids_drops_pruned(self):
        weights = np.eye(4, dtype=np.float32)
        pruned = prune_by_magnitude(weights, 0.5)
        local, mask = remap_ids(pruned, np.array([0, 1, 2, 3]))
        assert mask.sum() == 2
        np.testing.assert_array_equal(
            pruned.weights[local], weights[pruned.kept_rows][local]
        )

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            prune_by_magnitude(np.eye(4), 0.0)

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            prune_by_frequency(np.eye(4), np.array([1.0]), 0.5)


class TestCompressionPipeline:
    def test_drm1_ratio_matches_paper(self):
        """Table III: DRM1 compresses ~5.56x (194.46 GB -> 35 GB)."""
        compressed, report = compress_model(drm1())
        assert report.ratio == pytest.approx(5.56, rel=0.08)
        assert compressed.sparse_bytes < drm1().sparse_bytes

    def test_compressed_dtypes(self):
        compressed, report = compress_model(drm1())
        dtypes = {t.dtype for t in compressed.tables}
        assert dtypes <= {DType.INT8, DType.INT4}
        assert report.tables_int4 > 0 and report.tables_int8 > 0

    def test_lookup_behavior_preserved(self):
        """Pooling parameters are untouched: compressed serving is directly
        comparable to uncompressed (paper methodology)."""
        model = drm1()
        compressed, _ = compress_model(model)
        for before, after in zip(model.tables, compressed.tables):
            assert before.name == after.name
            assert before.mean_ids == after.mean_ids
            assert before.activation_prob == after.activation_prob

    def test_compression_alone_insufficient_at_datacenter_scale(self):
        """The paper's conclusion: a compressed multi-model deployment at
        data-center scale (original models are 'many times larger') still
        exceeds small-server DRAM."""
        _, report = compress_model(drm1())
        full_scale_bytes = report.compressed_bytes * 10  # "many times larger"
        assert full_scale_bytes > 4 * 50e9  # >4 commodity 50 GB servers

    def test_drm3_dominant_table_int4(self):
        compressed, _ = compress_model(drm3())
        dominant = max(compressed.tables, key=lambda t: t.nbytes)
        assert dominant.dtype is DType.INT4

    def test_spec_knobs(self):
        spec = CompressionSpec(
            int4_threshold_bytes=1e18, prune_threshold_bytes=1e18
        )
        compressed, report = compress_model(drm1(), spec)
        assert report.tables_int4 == 0
        assert report.tables_pruned == 0
        assert all(t.dtype is DType.INT8 for t in compressed.tables)

"""Tests for model configs, synthesis, and the DRM zoo calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import substream
from repro.core.types import GIB, OpCategory, DType
from repro.models import (
    FeatureScope,
    ModelConfig,
    NetConfig,
    RequestProfile,
    TableConfig,
    TablePopulationSpec,
    build,
    drm1,
    drm2,
    drm3,
    growth_factor,
    growth_series,
    synthesize_tables,
)


def small_profile():
    return RequestProfile(median_items=50, sigma_items=0.5, batch_size=10)


class TestTableConfig:
    def test_nbytes_fp32(self):
        table = TableConfig("t", "net1", num_rows=1000, dim=64)
        assert table.nbytes == 1000 * 256

    def test_expected_ids_user_scope(self):
        table = TableConfig(
            "t", "net1", 10, 8, scope=FeatureScope.USER, activation_prob=0.5, mean_ids=4
        )
        assert table.expected_ids_per_request(mean_items=100) == 2.0

    def test_expected_ids_item_scope_scales_with_items(self):
        table = TableConfig(
            "t", "net1", 10, 8, scope=FeatureScope.ITEM, activation_prob=0.1, mean_ids=2
        )
        assert table.expected_ids_per_request(mean_items=100) == pytest.approx(20.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_rows": 0},
            {"dim": 0},
            {"activation_prob": 1.5},
            {"mean_ids": -1.0},
        ],
    )
    def test_invalid_attributes_rejected(self, kwargs):
        base = {"name": "t", "net": "n", "num_rows": 10, "dim": 4}
        base.update(kwargs)
        with pytest.raises(ValueError):
            TableConfig(**base)


class TestNetConfig:
    def test_op_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            NetConfig("n", 1.0, 1.0, op_mix={OpCategory.DENSE: 0.5})

    def test_op_mix_rejects_sparse(self):
        with pytest.raises(ValueError):
            NetConfig("n", 1.0, 1.0, op_mix={OpCategory.SPARSE: 1.0})

    def test_default_mix_is_dense(self):
        net = NetConfig("n", 1.0, 1.0)
        assert net.op_mix == {OpCategory.DENSE: 1.0}


class TestRequestProfile:
    def test_sample_items_within_bounds(self):
        profile = RequestProfile(median_items=100, sigma_items=1.0, batch_size=10,
                                 min_items=5, max_items=500)
        rng = substream(0, "items")
        samples = [profile.sample_items(rng) for _ in range(200)]
        assert all(5 <= s <= 500 for s in samples)

    def test_item_distribution_is_long_tailed(self):
        profile = RequestProfile(median_items=100, sigma_items=0.9, batch_size=10)
        rng = substream(1, "items")
        samples = np.array([profile.sample_items(rng) for _ in range(4000)])
        p50, p99 = np.percentile(samples, [50, 99])
        assert p99 / p50 > 4.0  # heavy tail drives the paper's P99/P50 ratios

    def test_mean_items_above_median(self):
        profile = RequestProfile(median_items=100, sigma_items=0.9, batch_size=10)
        assert profile.mean_items > 100


class TestModelConfigValidation:
    def test_duplicate_table_names_rejected(self):
        tables = (
            TableConfig("t", "net1", 10, 4),
            TableConfig("t", "net1", 10, 4),
        )
        with pytest.raises(ValueError):
            ModelConfig("m", (NetConfig("net1", 1, 1),), tables, small_profile())

    def test_unknown_net_reference_rejected(self):
        tables = (TableConfig("t", "other", 10, 4),)
        with pytest.raises(ValueError):
            ModelConfig("m", (NetConfig("net1", 1, 1),), tables, small_profile())

    def test_lookups(self):
        model = drm1(scale=0.01)
        assert model.net("net1").name == "net1"
        assert model.table(model.tables[0].name) is model.tables[0]
        with pytest.raises(KeyError):
            model.net("nope")
        with pytest.raises(KeyError):
            model.table("nope")


class TestSynthesis:
    def make_spec(self, **overrides):
        base = dict(
            net="net1",
            count=40,
            total_bytes=10 * GIB,
            max_table_bytes=1.5 * GIB,
            scope=FeatureScope.USER,
            expected_ids_per_request=100.0,
            mean_items=50.0,
        )
        base.update(overrides)
        return TablePopulationSpec(**base)

    def test_total_bytes_matches_target(self):
        tables = synthesize_tables(self.make_spec(), seed=0)
        total = sum(t.nbytes for t in tables)
        assert total == pytest.approx(10 * GIB, rel=0.01)

    def test_max_table_cap_respected(self):
        tables = synthesize_tables(self.make_spec(), seed=0)
        assert max(t.nbytes for t in tables) <= 1.5 * GIB * 1.01

    def test_expected_pooling_matches_target(self):
        tables = synthesize_tables(self.make_spec(), seed=0)
        total = sum(t.expected_ids_per_request(50.0) for t in tables)
        assert total == pytest.approx(100.0, rel=0.01)

    def test_item_scope_rates_scale(self):
        tables = synthesize_tables(self.make_spec(scope=FeatureScope.ITEM), seed=0)
        total = sum(t.expected_ids_per_request(50.0) for t in tables)
        assert total == pytest.approx(100.0, rel=0.01)

    def test_deterministic_given_seed(self):
        a = synthesize_tables(self.make_spec(), seed=3)
        b = synthesize_tables(self.make_spec(), seed=3)
        assert a == b

    def test_different_seed_different_tables(self):
        a = synthesize_tables(self.make_spec(), seed=3)
        b = synthesize_tables(self.make_spec(), seed=4)
        assert a != b

    def test_infeasible_cap_rejected(self):
        with pytest.raises(ValueError):
            synthesize_tables(
                self.make_spec(count=4, max_table_bytes=1 * GIB), seed=0
            )

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_sizes_always_positive(self, seed):
        tables = synthesize_tables(self.make_spec(count=20), seed=seed)
        assert all(t.num_rows >= 1 for t in tables)
        assert all(t.mean_ids >= 0 for t in tables)


class TestZooCalibration:
    """The zoo must match the paper's published model attributes."""

    def test_drm1_capacity_and_tables(self):
        model = drm1()
        assert len(model.tables) == 257
        assert model.sparse_bytes == pytest.approx(194.05 * GIB, rel=0.02)
        assert model.largest_table_bytes <= 3.7 * GIB
        assert model.sparse_fraction > 0.97  # paper: >97%

    def test_drm1_net_split_matches_table2(self):
        model = drm1()
        net1 = model.tables_for_net("net1")
        net2 = model.tables_for_net("net2")
        assert len(net1) == 72 and len(net2) == 185
        assert sum(t.nbytes for t in net1) == pytest.approx(33.58 * GIB, rel=0.02)
        assert sum(t.nbytes for t in net2) == pytest.approx(160.47 * GIB, rel=0.02)

    def test_drm1_pooling_ratio_matches_table2(self):
        # NSBP 2-shard row: net2 does ~6.3% of net1's pooling work.
        pooling = drm1().expected_pooling_per_net()
        assert pooling["net2"] / pooling["net1"] == pytest.approx(0.063, rel=0.15)

    def test_drm2_capacity_and_tables(self):
        model = drm2()
        assert len(model.tables) == 133
        assert model.sparse_bytes == pytest.approx(138 * GIB, rel=0.02)
        assert model.largest_table_bytes <= 6.8 * GIB
        assert model.sparse_fraction > 0.97

    def test_drm3_dominant_table(self):
        model = drm3()
        assert len(model.tables) == 39
        assert model.sparse_bytes == pytest.approx(200 * GIB, rel=0.02)
        dominant = max(model.tables, key=lambda t: t.nbytes)
        assert dominant.nbytes == pytest.approx(178.8 * GIB, rel=0.02)
        assert dominant.mean_ids == 1.0 and dominant.activation_prob == 1.0
        assert model.sparse_fraction > 0.999  # paper: >99.9%

    def test_drm3_single_net(self):
        assert len(drm3().nets) == 1

    def test_scale_parameter_shrinks_capacity(self):
        full = drm1()
        tiny = drm1(scale=0.001)
        assert tiny.sparse_bytes < full.sparse_bytes * 0.01
        assert len(tiny.tables) == len(full.tables)

    def test_build_by_name(self):
        assert build("drm1").name == "DRM1"
        assert build("DRM3").name == "DRM3"
        with pytest.raises(KeyError):
            build("DRM9")

    def test_all_tables_fp32_uncompressed(self):
        for model in (drm1(scale=0.01), drm2(scale=0.01), drm3(scale=0.01)):
            assert all(t.dtype is DType.FP32 for t in model.tables)


class TestGrowth:
    def test_order_of_magnitude_growth(self):
        points = growth_series()
        features_x, capacity_x = growth_factor(points)
        assert features_x >= 9.0  # "an order of magnitude in only three years"
        assert capacity_x >= 9.0

    def test_monotonic_growth(self):
        points = growth_series()
        features = [p.num_sparse_features for p in points]
        capacity = [p.embedding_bytes for p in points]
        assert features == sorted(features)
        assert capacity == sorted(capacity)

    def test_three_year_span(self):
        points = growth_series()
        assert points[-1].years_since_start == pytest.approx(3.0)

"""Trace-mode regression tests: AGGREGATE == FULL, drained tracers.

The aggregate tracing fast path must be *exactly* the full-trace path,
minus the spans: for every paper configuration the span-free
:class:`~repro.tracing.aggregate.AggregatingTracer` has to produce
bit-identical e2e/cpu/stack columns to full tracing + attribution, and
no tracer may retain state once a replay with incremental completion
consumption finishes.
"""

import numpy as np
import pytest

from repro.experiments import SuiteSettings, run_suite, run_suite_parallel
from repro.models import drm1, drm2, drm3
from repro.requests import RequestGenerator, ReplaySchedule
from repro.serving import ClusterSimulation, ServingConfig, TraceMode
from repro.sharding import singular_plan
from repro.tracing import AggregatingTracer, MAIN_SHARD, Layer, Span, Tracer

SERIAL = SuiteSettings(num_requests=25, pooling_requests=150, serving=ServingConfig(seed=1))
AGGREGATE = SuiteSettings(
    num_requests=25,
    pooling_requests=150,
    serving=ServingConfig(seed=1),
    trace_mode=TraceMode.AGGREGATE,
)


def assert_results_identical(full, aggregate):
    """Bitwise equality of every column, for every configuration."""
    assert list(full) == list(aggregate)
    for label in full:
        f, a = full[label], aggregate[label]
        assert len(f) == len(a)
        assert np.array_equal(f.e2e, a.e2e), label
        assert np.array_equal(f.cpu, a.cpu), label
        for kind in ("latency", "embedded", "cpu"):
            full_cols = f.stack_columns(kind)
            agg_cols = a.stack_columns(kind)
            for bucket in full_cols:
                assert np.array_equal(full_cols[bucket], agg_cols[bucket]), (
                    label, kind, bucket,
                )


class TestAggregateEquivalence:
    @pytest.mark.parametrize("factory", [drm1, drm2, drm3])
    def test_matches_full_for_every_paper_configuration(self, factory):
        model = factory()
        assert_results_identical(run_suite(model, SERIAL), run_suite(model, AGGREGATE))

    def test_matches_full_open_loop_with_clock_skew(self):
        """Queueing overlap + skewed wall clocks exercise every stack path."""
        model = drm1()

        def settings(mode):
            return SuiteSettings(
                num_requests=40,
                pooling_requests=150,
                serving=ServingConfig(
                    seed=1, service_workers=2, clock_skew_sigma=0.002
                ),
                schedule=ReplaySchedule.open_loop(25.0, seed=2),
                trace_mode=mode,
            )

        assert_results_identical(
            run_suite(model, settings(None)),
            run_suite(model, settings(TraceMode.AGGREGATE)),
        )

    def test_parallel_aggregate_matches_serial_aggregate(self):
        model = drm1()
        assert_results_identical(
            run_suite(model, AGGREGATE),
            run_suite_parallel(model, AGGREGATE, max_workers=2),
        )

    def test_aggregate_retains_no_attributions(self):
        model = drm3()
        full = run_suite(model, SERIAL)
        results = run_suite(model, AGGREGATE)
        for label, result in results.items():
            assert result.attributions == []
            # Per-shard demand now comes from columns, so the per-shard
            # means are available (and bit-identical to FULL) even
            # without retained attributions...
            assert result.mean_per_shard_op_time() == full[label].mean_per_shard_op_time()
            assert result.mean_cpu_by_shard() == full[label].mean_cpu_by_shard()
            # ...while the per-(shard, net) breakdown still needs FULL.
            assert result.mean_per_shard_net_op_time() == {}

    def test_trace_mode_threads_through_serving_config(self):
        config = ServingConfig(seed=1, trace_mode=TraceMode.AGGREGATE)
        assert config.with_batch_size(64).trace_mode is TraceMode.AGGREGATE
        assert (
            ServingConfig().with_trace_mode(TraceMode.AGGREGATE).trace_mode
            is TraceMode.AGGREGATE
        )
        model = drm1()
        cluster = ClusterSimulation(model, singular_plan(model), config)
        assert isinstance(cluster.tracer, AggregatingTracer)


class TestTracerDrained:
    """Satellite: tracers must not leak state for unfinished requests."""

    @pytest.mark.parametrize("mode", [TraceMode.FULL, TraceMode.AGGREGATE])
    def test_tracer_empty_after_incremental_replay(self, mode):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(8)
        cluster = ClusterSimulation(
            model, singular_plan(model), ServingConfig(seed=1, trace_mode=mode)
        )
        if mode is TraceMode.FULL:
            cluster.on_complete = lambda rid: cluster.tracer.pop_request(rid)
        else:
            cluster.on_complete = cluster.tracer.finalize_request
        cluster.run_serial(requests)
        cluster.tracer.assert_drained()
        assert cluster.tracer.in_flight() == 0
        assert cluster.dropped_requests == []

    def test_incomplete_requests_are_drained_not_leaked(self):
        """A request that never completes must be freed at end of replay."""
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(4)
        cluster = ClusterSimulation(model, singular_plan(model), ServingConfig(seed=1))
        cluster.on_complete = lambda rid: cluster.tracer.pop_request(rid)
        # Simulate a request that timed out mid-flight: its spans are in
        # the tracer but pop_request never ran for it.
        cluster.tracer.record(
            Span(
                request_id=999, shard=MAIN_SHARD, server="main",
                layer=Layer.SERDE, name="orphan", start=0.0, end=1.0,
            )
        )
        cluster.run_serial(requests)
        assert cluster.dropped_requests == [999]
        cluster.tracer.assert_drained()

    def test_trace_cli_path_keeps_spans_without_hook(self):
        """Without on_complete the caller owns the trace; nothing dropped."""
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(2)
        cluster = ClusterSimulation(model, singular_plan(model), ServingConfig(seed=1))
        cluster.run_serial(requests)
        assert cluster.dropped_requests == []
        assert cluster.tracer.in_flight() == 2
        with pytest.raises(RuntimeError, match="still holds"):
            cluster.tracer.assert_drained()

    def test_full_tracer_drain_incomplete(self):
        tracer = Tracer()
        tracer.record(
            Span(
                request_id=5, shard=MAIN_SHARD, server="main",
                layer=Layer.SERDE, name="x", start=0.0, end=1.0,
            )
        )
        assert tracer.drain_incomplete() == [5]
        assert tracer.in_flight() == 0
        tracer.assert_drained()

    def test_aggregate_tracer_drain_incomplete(self):
        tracer = AggregatingTracer()

        class _Server:
            clock_skew = 0.0
            name = "main"

        tracer.record_interval(
            7, MAIN_SHARD, _Server(), Layer.SERDE, "x", 0.0, 1.0
        )
        assert tracer.in_flight() == 1
        assert tracer.drain_incomplete() == [7]
        tracer.assert_drained()
        assert tracer.count == 0

"""Tests for plan/model serialization and the paging-from-disk model."""

import dataclasses

import pytest

from repro.core.types import GIB, US
from repro.models import drm1, drm3
from repro.requests import RequestGenerator
from repro.requests.access_trace import collect_access_trace
from repro.serving.paging import (
    PagingAssessment,
    SsdSpec,
    assess_paging,
    coverage_for_budget,
    paging_vs_distributed_stall,
)
from repro.sharding import STRATEGIES, estimate_pooling_factors
from repro.sharding.serialization import (
    SerializationError,
    dump_model,
    dump_plan,
    load_model,
    load_plan,
    plan_to_dict,
)


@pytest.fixture(scope="module")
def model():
    return drm1()


@pytest.fixture(scope="module")
def plan(model):
    pooling = estimate_pooling_factors(model, 150, seed=42)
    return STRATEGIES["load-bal"].build_plan(model, 4, pooling)


class TestPlanSerialization:
    def test_round_trip(self, model, plan):
        restored = load_plan(dump_plan(plan), model)
        assert restored.model_name == plan.model_name
        assert restored.strategy == plan.strategy
        assert restored.num_shards == plan.num_shards
        for original, loaded in zip(plan.shards, restored.shards):
            assert original.assignments == loaded.assignments

    def test_round_trip_with_partitions(self):
        model = drm3()
        plan = STRATEGIES["NSBP"].build_plan(model, 8)
        restored = load_plan(dump_plan(plan), model)
        dominant = max(model.tables, key=lambda t: t.nbytes)
        assert len(restored.assignments_for_table(dominant.name)) > 1

    def test_validation_on_load(self, model, plan):
        payload = plan_to_dict(plan)
        payload["shards"][0]["assignments"].pop()  # drop one table
        import json

        with pytest.raises(Exception):
            load_plan(json.dumps(payload), model)

    def test_wrong_model_rejected(self, plan):
        with pytest.raises(SerializationError, match="built for"):
            load_plan(dump_plan(plan), drm3())

    def test_wrong_kind_rejected(self, model):
        with pytest.raises(SerializationError, match="kind"):
            load_plan('{"kind": "nope", "version": 1}', model)

    def test_wrong_version_rejected(self, model):
        with pytest.raises(SerializationError, match="version"):
            load_plan('{"kind": "sharding-plan", "version": 99}', model)

    def test_load_without_model_skips_validation(self, plan):
        restored = load_plan(dump_plan(plan))
        assert restored.num_shards == plan.num_shards


class TestModelSerialization:
    def test_round_trip_equality(self, model):
        restored = load_model(dump_model(model))
        assert restored == model

    def test_round_trip_drm3(self):
        model = drm3()
        restored = load_model(dump_model(model))
        assert restored == model
        dominant = max(restored.tables, key=lambda t: t.nbytes)
        assert dominant.deterministic_ids

    def test_malformed_payload_rejected(self):
        with pytest.raises(SerializationError):
            load_model('{"kind": "model-config", "version": 1}')


class TestPaging:
    @pytest.fixture(scope="class")
    def trace(self, model):
        requests = RequestGenerator(model, seed=3).generate_many(150)
        return collect_access_trace(model, requests, seed=7)

    def test_more_coverage_fewer_stalls(self, model, trace):
        small = assess_paging(model, trace, resident_coverage=0.05)
        large = assess_paging(model, trace, resident_coverage=0.5)
        assert large.hit_rate > small.hit_rate
        assert large.expected_stall_per_request < small.expected_stall_per_request

    def test_full_coverage_zero_stall(self, model, trace):
        assessment = assess_paging(model, trace, resident_coverage=1.0)
        assert assessment.hit_rate == pytest.approx(1.0)
        assert assessment.expected_stall_per_request == pytest.approx(0.0)

    def test_skew_makes_small_caches_effective(self, model, trace):
        """The Bandana effect at model level: 10% of the working set
        captures a disproportionate share of accesses.  (Model-level rates
        sit below hot-table rates because cold tables' working sets are
        all singletons.)"""
        assessment = assess_paging(model, trace, resident_coverage=0.10)
        assert assessment.hit_rate > 0.40

    def test_stall_scales_with_ssd_latency(self, model, trace):
        slow = assess_paging(model, trace, 0.2, SsdSpec(read_latency=200 * US))
        fast = assess_paging(model, trace, 0.2, SsdSpec(read_latency=50 * US))
        assert slow.expected_stall_per_request == pytest.approx(
            4 * fast.expected_stall_per_request, rel=1e-6
        )

    def test_meets_budget(self, model, trace):
        assessment = assess_paging(model, trace, resident_coverage=0.5)
        assert assessment.meets_budget(1.0)
        assert not assessment.meets_budget(0.0)

    def test_invalid_coverage_rejected(self, model, trace):
        with pytest.raises(ValueError):
            assess_paging(model, trace, resident_coverage=0.0)

    def test_coverage_for_budget_monotone(self, model, trace):
        small = coverage_for_budget(model, trace, dram_budget=1 * GIB,
                                    traffic_scale=1e4)
        large = coverage_for_budget(model, trace, dram_budget=8 * GIB,
                                    traffic_scale=1e4)
        assert 0.0 < small < large <= 1.0
        with pytest.raises(ValueError):
            coverage_for_budget(model, trace, dram_budget=0.0)

    def test_comparison_ratio(self, model, trace):
        assessment = assess_paging(model, trace, resident_coverage=0.2)
        ratio = paging_vs_distributed_stall(assessment, 300e-6)
        assert ratio == pytest.approx(
            assessment.expected_stall_per_request / 300e-6
        )
        with pytest.raises(ValueError):
            paging_vs_distributed_stall(assessment, 0.0)

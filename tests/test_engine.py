"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation.engine import Engine, SimulationError


def test_timeout_advances_clock():
    engine = Engine()

    def proc():
        yield engine.timeout(1.5)
        return engine.now

    process = engine.process(proc())
    engine.run()
    assert process.triggered
    assert process.value == pytest.approx(1.5)


def test_timeout_carries_value():
    engine = Engine()

    def proc():
        value = yield engine.timeout(0.1, value="payload")
        return value

    process = engine.process(proc())
    engine.run()
    assert process.value == "payload"


def test_negative_timeout_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.timeout(-0.1)


def test_sequential_timeouts_accumulate():
    engine = Engine()
    timestamps = []

    def proc():
        for delay in (1.0, 2.0, 3.0):
            yield engine.timeout(delay)
            timestamps.append(engine.now)

    engine.process(proc())
    engine.run()
    assert timestamps == [1.0, 3.0, 6.0]


def test_processes_run_concurrently():
    engine = Engine()
    log = []

    def worker(name, delay):
        yield engine.timeout(delay)
        log.append((engine.now, name))

    engine.process(worker("slow", 2.0))
    engine.process(worker("fast", 1.0))
    engine.run()
    assert log == [(1.0, "fast"), (2.0, "slow")]


def test_same_time_events_fifo_order():
    engine = Engine()
    log = []

    def worker(name):
        yield engine.timeout(1.0)
        log.append(name)

    for name in ("a", "b", "c"):
        engine.process(worker(name))
    engine.run()
    assert log == ["a", "b", "c"]


def test_process_waits_on_process():
    engine = Engine()

    def inner():
        yield engine.timeout(2.0)
        return 42

    def outer():
        result = yield engine.process(inner())
        return (engine.now, result)

    process = engine.process(outer())
    engine.run()
    assert process.value == (2.0, 42)


def test_all_of_waits_for_slowest():
    engine = Engine()

    def worker(delay):
        yield engine.timeout(delay)
        return delay

    def outer():
        children = [engine.process(worker(d)) for d in (3.0, 1.0, 2.0)]
        values = yield engine.all_of(children)
        return (engine.now, values)

    process = engine.process(outer())
    engine.run()
    at, values = process.value
    assert at == 3.0
    assert values == [3.0, 1.0, 2.0]  # order of submission, not completion


def test_all_of_empty_triggers_immediately():
    engine = Engine()

    def outer():
        values = yield engine.all_of([])
        return (engine.now, values)

    process = engine.process(outer())
    engine.run()
    assert process.value == (0.0, [])


def test_any_of_returns_first():
    engine = Engine()

    def worker(delay):
        yield engine.timeout(delay)
        return delay

    def outer():
        children = [engine.process(worker(d)) for d in (3.0, 1.0)]
        index, value = yield engine.any_of(children)
        return (engine.now, index, value)

    process = engine.process(outer())
    engine.run()
    assert process.value == (1.0, 1, 1.0)


def test_event_succeed_twice_rejected():
    engine = Engine()
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_rejected():
    engine = Engine()
    event = engine.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_run_until_stops_early():
    engine = Engine()

    def proc():
        yield engine.timeout(10.0)

    engine.process(proc())
    final = engine.run(until=4.0)
    assert final == 4.0
    # remaining work still runs afterwards
    final = engine.run()
    assert final == 10.0


class TestResource:
    def test_acquire_release_serializes_work(self):
        engine = Engine()
        resource = engine.resource(1)
        log = []

        def worker(name):
            yield resource.acquire()
            log.append((engine.now, name, "start"))
            yield engine.timeout(1.0)
            log.append((engine.now, name, "end"))
            resource.release()

        engine.process(worker("a"))
        engine.process(worker("b"))
        engine.run()
        assert log == [
            (0.0, "a", "start"),
            (1.0, "a", "end"),
            (1.0, "b", "start"),
            (2.0, "b", "end"),
        ]

    def test_capacity_two_overlaps(self):
        engine = Engine()
        resource = engine.resource(2)
        ends = []

        def worker():
            yield resource.acquire()
            yield engine.timeout(1.0)
            resource.release()
            ends.append(engine.now)

        for _ in range(4):
            engine.process(worker())
        engine.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_release_without_acquire_rejected(self):
        engine = Engine()
        resource = engine.resource(1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_fifo_queue_order(self):
        engine = Engine()
        resource = engine.resource(1)
        order = []

        def worker(name):
            yield resource.acquire()
            order.append(name)
            yield engine.timeout(0.5)
            resource.release()

        for name in ("first", "second", "third"):
            engine.process(worker(name))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_in_use_and_queued_counters(self):
        engine = Engine()
        resource = engine.resource(1)

        def holder():
            yield resource.acquire()
            yield engine.timeout(2.0)
            resource.release()

        def waiter():
            yield engine.timeout(1.0)
            yield resource.acquire()
            resource.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run(until=1.5)
        assert resource.in_use == 1
        assert resource.queued == 1
        engine.run()
        assert resource.in_use == 0
        assert resource.queued == 0

    def test_bad_capacity_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.resource(0)


def test_yielding_non_event_raises():
    engine = Engine()

    def proc():
        yield "1.0"  # neither an Event nor a float/int delay

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_yielding_plain_delay_advances_clock():
    """The fast path: ``yield delay`` behaves like ``yield timeout(delay)``."""
    engine = Engine()
    seen = []

    def proc():
        yield 1.5
        seen.append(engine.now)
        yield 2
        seen.append(engine.now)

    engine.process(proc())
    engine.run()
    assert seen == [1.5, 3.5]


def test_yielding_numpy_scalar_delay_works():
    """np.float64 leaking out of array math must behave like a float."""
    import numpy as np

    engine = Engine()
    seen = []

    def proc():
        yield np.float64(2.5)
        seen.append(engine.now)

    engine.process(proc())
    engine.run()
    assert seen == [2.5]


def test_yielding_negative_delay_raises():
    engine = Engine()

    def proc():
        yield -0.1

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_plain_delay_orders_like_timeout():
    """A float yield takes the same sequence slot as an explicit Timeout."""
    engine = Engine()
    order = []

    def via_timeout(tag):
        yield engine.timeout(1.0)
        order.append(tag)

    def via_float(tag):
        yield 1.0
        order.append(tag)

    engine.process(via_timeout("a"))
    engine.process(via_float("b"))
    engine.process(via_timeout("c"))
    engine.run()
    assert order == ["a", "b", "c"]

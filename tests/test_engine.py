"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation.engine import (
    At,
    BatchedEngine,
    Engine,
    SimulationError,
    SyncResource,
    make_engine,
)


@pytest.fixture(params=["reference", "batched"])
def kernel_engine(request):
    """Both selectable kernels; behavioral tests must pass on each."""
    return make_engine(request.param)


def test_timeout_advances_clock():
    engine = Engine()

    def proc():
        yield engine.timeout(1.5)
        return engine.now

    process = engine.process(proc())
    engine.run()
    assert process.triggered
    assert process.value == pytest.approx(1.5)


def test_timeout_carries_value():
    engine = Engine()

    def proc():
        value = yield engine.timeout(0.1, value="payload")
        return value

    process = engine.process(proc())
    engine.run()
    assert process.value == "payload"


def test_negative_timeout_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.timeout(-0.1)


def test_sequential_timeouts_accumulate():
    engine = Engine()
    timestamps = []

    def proc():
        for delay in (1.0, 2.0, 3.0):
            yield engine.timeout(delay)
            timestamps.append(engine.now)

    engine.process(proc())
    engine.run()
    assert timestamps == [1.0, 3.0, 6.0]


def test_processes_run_concurrently():
    engine = Engine()
    log = []

    def worker(name, delay):
        yield engine.timeout(delay)
        log.append((engine.now, name))

    engine.process(worker("slow", 2.0))
    engine.process(worker("fast", 1.0))
    engine.run()
    assert log == [(1.0, "fast"), (2.0, "slow")]


def test_same_time_events_fifo_order():
    engine = Engine()
    log = []

    def worker(name):
        yield engine.timeout(1.0)
        log.append(name)

    for name in ("a", "b", "c"):
        engine.process(worker(name))
    engine.run()
    assert log == ["a", "b", "c"]


def test_process_waits_on_process():
    engine = Engine()

    def inner():
        yield engine.timeout(2.0)
        return 42

    def outer():
        result = yield engine.process(inner())
        return (engine.now, result)

    process = engine.process(outer())
    engine.run()
    assert process.value == (2.0, 42)


def test_all_of_waits_for_slowest():
    engine = Engine()

    def worker(delay):
        yield engine.timeout(delay)
        return delay

    def outer():
        children = [engine.process(worker(d)) for d in (3.0, 1.0, 2.0)]
        values = yield engine.all_of(children)
        return (engine.now, values)

    process = engine.process(outer())
    engine.run()
    at, values = process.value
    assert at == 3.0
    assert values == [3.0, 1.0, 2.0]  # order of submission, not completion


def test_all_of_empty_triggers_immediately():
    engine = Engine()

    def outer():
        values = yield engine.all_of([])
        return (engine.now, values)

    process = engine.process(outer())
    engine.run()
    assert process.value == (0.0, [])


def test_any_of_returns_first():
    engine = Engine()

    def worker(delay):
        yield engine.timeout(delay)
        return delay

    def outer():
        children = [engine.process(worker(d)) for d in (3.0, 1.0)]
        index, value = yield engine.any_of(children)
        return (engine.now, index, value)

    process = engine.process(outer())
    engine.run()
    assert process.value == (1.0, 1, 1.0)


def test_event_succeed_twice_rejected():
    engine = Engine()
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_rejected():
    engine = Engine()
    event = engine.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_run_until_stops_early():
    engine = Engine()

    def proc():
        yield engine.timeout(10.0)

    engine.process(proc())
    final = engine.run(until=4.0)
    assert final == 4.0
    # remaining work still runs afterwards
    final = engine.run()
    assert final == 10.0


class TestResource:
    def test_acquire_release_serializes_work(self):
        engine = Engine()
        resource = engine.resource(1)
        log = []

        def worker(name):
            yield resource.acquire()
            log.append((engine.now, name, "start"))
            yield engine.timeout(1.0)
            log.append((engine.now, name, "end"))
            resource.release()

        engine.process(worker("a"))
        engine.process(worker("b"))
        engine.run()
        assert log == [
            (0.0, "a", "start"),
            (1.0, "a", "end"),
            (1.0, "b", "start"),
            (2.0, "b", "end"),
        ]

    def test_capacity_two_overlaps(self):
        engine = Engine()
        resource = engine.resource(2)
        ends = []

        def worker():
            yield resource.acquire()
            yield engine.timeout(1.0)
            resource.release()
            ends.append(engine.now)

        for _ in range(4):
            engine.process(worker())
        engine.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_release_without_acquire_rejected(self):
        engine = Engine()
        resource = engine.resource(1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_fifo_queue_order(self):
        engine = Engine()
        resource = engine.resource(1)
        order = []

        def worker(name):
            yield resource.acquire()
            order.append(name)
            yield engine.timeout(0.5)
            resource.release()

        for name in ("first", "second", "third"):
            engine.process(worker(name))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_in_use_and_queued_counters(self):
        engine = Engine()
        resource = engine.resource(1)

        def holder():
            yield resource.acquire()
            yield engine.timeout(2.0)
            resource.release()

        def waiter():
            yield engine.timeout(1.0)
            yield resource.acquire()
            resource.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run(until=1.5)
        assert resource.in_use == 1
        assert resource.queued == 1
        engine.run()
        assert resource.in_use == 0
        assert resource.queued == 0

    def test_bad_capacity_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.resource(0)


def test_yielding_non_event_raises():
    engine = Engine()

    def proc():
        yield "1.0"  # neither an Event nor a float/int delay

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_yielding_plain_delay_advances_clock():
    """The fast path: ``yield delay`` behaves like ``yield timeout(delay)``."""
    engine = Engine()
    seen = []

    def proc():
        yield 1.5
        seen.append(engine.now)
        yield 2
        seen.append(engine.now)

    engine.process(proc())
    engine.run()
    assert seen == [1.5, 3.5]


def test_yielding_numpy_scalar_delay_works():
    """np.float64 leaking out of array math must behave like a float."""
    import numpy as np

    engine = Engine()
    seen = []

    def proc():
        yield np.float64(2.5)
        seen.append(engine.now)

    engine.process(proc())
    engine.run()
    assert seen == [2.5]


def test_yielding_negative_delay_raises():
    engine = Engine()

    def proc():
        yield -0.1

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_plain_delay_orders_like_timeout():
    """A float yield takes the same sequence slot as an explicit Timeout."""
    engine = Engine()
    order = []

    def via_timeout(tag):
        yield engine.timeout(1.0)
        order.append(tag)

    def via_float(tag):
        yield 1.0
        order.append(tag)

    engine.process(via_timeout("a"))
    engine.process(via_float("b"))
    engine.process(via_timeout("c"))
    engine.run()
    assert order == ["a", "b", "c"]


class TestRunUntilBoundary:
    """Pinned ``run(until=...)`` boundary semantics (see the method doc)."""

    def test_event_exactly_at_until_is_processed(self, kernel_engine):
        engine = kernel_engine
        seen = []

        def proc():
            yield 4.0
            seen.append(engine.now)
            yield 1.0
            seen.append(engine.now)

        engine.process(proc())
        final = engine.run(until=4.0)
        # inclusive cutoff: the t=4.0 resumption ran, the t=5.0 one did not
        assert seen == [4.0]
        assert final == 4.0
        assert engine.run() == 5.0
        assert seen == [4.0, 5.0]

    def test_drained_queue_advances_clock_to_until(self, kernel_engine):
        engine = kernel_engine

        def proc():
            yield 1.0

        engine.process(proc())
        # the queue drains at t=1.0; nothing can occur in (1.0, 7.5], so
        # the clock reads exactly `until` -- consistent with the
        # early-stop branch.
        assert engine.run(until=7.5) == 7.5
        assert engine.now == 7.5

    def test_until_then_resume_never_drops_events(self, kernel_engine):
        engine = kernel_engine
        log = []

        def worker(name, delay):
            yield delay
            log.append((engine.now, name))

        engine.process(worker("a", 1.0))
        engine.process(worker("b", 2.0))
        engine.process(worker("c", 2.0))
        engine.run(until=2.0)
        assert log == [(1.0, "a"), (2.0, "b"), (2.0, "c")]
        engine.run()
        assert log == [(1.0, "a"), (2.0, "b"), (2.0, "c")]


class TestAtMarker:
    def test_at_resumes_at_absolute_time(self, kernel_engine):
        engine = kernel_engine
        seen = []

        def proc():
            yield At(2.5)
            seen.append(engine.now)
            yield At(engine.now)  # At(now) is legal: a zero-length hop
            seen.append(engine.now)

        engine.process(proc())
        engine.run()
        assert seen == [2.5, 2.5]

    def test_at_in_the_past_raises(self, kernel_engine):
        engine = kernel_engine

        def proc():
            yield 3.0
            yield At(1.0)

        engine.process(proc())
        with pytest.raises(SimulationError, match="in the past"):
            engine.run()

    def test_at_orders_like_plain_delay(self, kernel_engine):
        """At(now + d) takes the same sequence slot as ``yield d``."""
        engine = kernel_engine
        order = []

        def via_delay(tag):
            yield 1.0
            order.append(tag)

        def via_at(tag):
            yield At(1.0)
            order.append(tag)

        engine.process(via_delay("a"))
        engine.process(via_at("b"))
        engine.process(via_delay("c"))
        engine.run()
        assert order == ["a", "b", "c"]


class TestResourceBothKernels:
    """Fairness and edge cases, pinned identically on both kernels."""

    def test_fifo_handoff_under_contention(self, kernel_engine):
        engine = kernel_engine
        resource = engine.resource(1)
        order = []

        def worker(name, arrival):
            yield arrival
            yield resource.acquire()
            order.append((engine.now, name))
            yield 1.0
            resource.release()

        # all three contend; arrival order is the service order
        for name, arrival in (("a", 0.0), ("b", 0.1), ("c", 0.2)):
            engine.process(worker(name, arrival))
        engine.run()
        assert order == [(0.0, "a"), (1.0, "b"), (2.0, "c")]

    def test_release_without_waiters_frees_capacity(self, kernel_engine):
        engine = kernel_engine
        resource = engine.resource(1)
        log = []

        def proc():
            yield resource.acquire()
            yield 1.0
            resource.release()
            log.append(resource.in_use)
            # the freed unit is immediately acquirable again
            yield resource.acquire()
            log.append(resource.in_use)
            resource.release()

        engine.process(proc())
        engine.run()
        assert log == [0, 1]
        assert resource.in_use == 0
        assert resource.queued == 0

    def test_release_without_acquire_rejected(self, kernel_engine):
        resource = kernel_engine.resource(1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_interleaved_acquire_release_at_identical_timestamps(
        self, kernel_engine
    ):
        """A release and a fresh acquire in the same instant: the queued
        waiter (FIFO) wins over the newcomer, on both kernels."""
        engine = kernel_engine
        resource = engine.resource(1)
        order = []

        def holder():
            yield resource.acquire()
            yield 1.0
            resource.release()  # at t=1.0, exactly when others act

        def queued_waiter():
            yield 0.5  # queues behind the holder at t=0.5
            yield resource.acquire()
            order.append(("queued", engine.now))
            resource.release()

        def newcomer():
            yield 1.0  # tries to acquire in the same instant as the release
            yield resource.acquire()
            order.append(("newcomer", engine.now))
            resource.release()

        engine.process(holder())
        engine.process(queued_waiter())
        engine.process(newcomer())
        engine.run()
        assert [name for name, _ in order] == ["queued", "newcomer"]
        assert all(at == 1.0 for _, at in order)

    def test_zero_duration_hold_cycles_cleanly(self, kernel_engine):
        engine = kernel_engine
        resource = engine.resource(2)
        completions = []

        def churn(tag):
            yield resource.acquire()
            resource.release()  # release in the same instant
            yield resource.acquire()
            completions.append(tag)
            resource.release()

        for tag in range(4):
            engine.process(churn(tag))
        engine.run()
        assert completions == [0, 1, 2, 3]
        assert resource.in_use == 0 and resource.queued == 0


class TestSyncResource:
    def test_uncontended_acquire_is_synchronous(self):
        engine = BatchedEngine()
        resource = engine.resource(1)
        assert isinstance(resource, SyncResource)
        event = resource.acquire()
        # granted inline: already triggered, no scheduled hop required
        assert event.triggered
        assert resource.in_use == 1
        resource.release()
        assert resource.in_use == 0

    def test_contended_acquire_still_queues(self):
        engine = BatchedEngine()
        resource = engine.resource(1)
        first = resource.acquire()
        second = resource.acquire()
        assert first.triggered
        assert not second.triggered
        assert resource.queued == 1
        resource.release()
        engine.run()
        assert second.triggered
        assert resource.in_use == 1  # handed over, still held

    def test_acquire_call_grant_and_queue(self):
        engine = BatchedEngine()
        resource = engine.resource(1)
        woken = []
        assert resource.acquire_call(woken.append) is True  # inline grant
        assert resource.acquire_call(woken.append) is False  # queued
        assert woken == []
        resource.release()
        engine.run()
        assert woken == [None]  # scheduled with the unit handed over
        assert resource.in_use == 1

    def test_reference_engine_keeps_deferred_grants(self):
        """The reference kernel's Resource must stay deferred: its grant
        event is fresh and untriggered until the event loop runs."""
        engine = Engine()
        resource = engine.resource(1)
        event = resource.acquire()
        assert not event.triggered
        engine.run()
        assert event.triggered

"""Tests for the extension subsystems: trace visualization, SLA modeling,
and the automatic sharding workflow (paper future work)."""

import numpy as np
import pytest

from repro.core.types import GIB
from repro.models import drm1, drm3
from repro.requests import RequestGenerator
from repro.serving import (
    ClusterSimulation,
    ServingConfig,
    SlaPolicy,
    evaluate_sla,
    sla_sweep,
)
from repro.sharding import (
    AutoShardObjective,
    STRATEGIES,
    auto_shard,
    estimate_pooling_factors,
    singular_plan,
)
from repro.tracing import render_trace, trace_summary


@pytest.fixture(scope="module")
def traced_request():
    model = drm1()
    request = RequestGenerator(model, seed=3).generate(0)
    pooling = estimate_pooling_factors(model, 100, seed=42)
    plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
    sim = ClusterSimulation(model, plan, ServingConfig(seed=1))
    sim.run_serial([request])
    return sim.tracer.for_request(0)


class TestTraceVisualization:
    def test_render_has_all_lanes(self, traced_request):
        text = render_trace(traced_request)
        assert "main request" in text
        assert "main batch 0" in text
        for shard in range(1, 5):
            assert f"sparse shard {shard}" in text

    def test_render_shows_all_layers(self, traced_request):
        text = render_trace(traced_request)
        for glyph in ("=", "#", "S", "+", "~", ".", "-"):
            assert glyph in text, glyph

    def test_lane_width_consistent(self, traced_request):
        text = render_trace(traced_request, width=60)
        lanes = [line for line in text.splitlines() if line.endswith("|")]
        widths = {len(line[line.index("|"):]) for line in lanes}
        assert widths == {62}  # 60 columns + 2 pipes

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            render_trace([])

    def test_trace_summary_totals(self, traced_request):
        summary = trace_summary(traced_request)
        assert summary["service"] > 0
        assert summary["operator"] > 0
        assert summary["rpc-client"] > 0


class TestSla:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SlaPolicy(target_latency=0.0)

    def test_from_baseline_quantile(self):
        baseline = np.linspace(1.0, 2.0, 100)
        policy = SlaPolicy.from_baseline_quantile(baseline, quantile=99, slack=1.2)
        assert policy.target_latency == pytest.approx(np.percentile(baseline, 99) * 1.2)

    def test_evaluate_sla_drop_rate(self):
        latencies = np.array([1.0, 1.0, 1.0, 5.0])
        report = evaluate_sla("cfg", latencies, SlaPolicy(2.0))
        assert report.drop_rate == pytest.approx(0.25)
        assert not report.met_p99
        assert report.headroom_p50 == pytest.approx(2.0)

    def test_sweep_orders_worst_first(self):
        policy = SlaPolicy(2.0)
        reports = sla_sweep(
            {"good": np.ones(100), "bad": np.full(100, 3.0)}, policy
        )
        assert [r.label for r in reports] == ["bad", "good"]

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            evaluate_sla("cfg", [], SlaPolicy(1.0))

    def test_distributed_drops_more_under_tight_sla(self):
        """Serving-quality view of Figure 6: under a tight SLA derived from
        the singular tail, distributed configs fall back more often."""
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(60)
        pooling = estimate_pooling_factors(model, 150, seed=42)

        def latencies(plan):
            sim = ClusterSimulation(model, plan, ServingConfig(seed=1))
            sim.run_serial(requests)
            return np.array(list(sim.completed.values()))

        base = latencies(singular_plan(model))
        dist = latencies(STRATEGIES["1-shard"].build_plan(model, 1))
        policy = SlaPolicy.from_baseline_quantile(base, quantile=90, slack=1.05)
        base_report = evaluate_sla("singular", base, policy)
        dist_report = evaluate_sla("1 shard", dist, policy)
        assert dist_report.drop_rate > base_report.drop_rate


class TestAutoShard:
    @pytest.fixture(scope="class")
    def outcome(self):
        objective = AutoShardObjective(
            shard_dram_budget=55 * GIB,
            max_p99_latency_overhead=0.35,
            shard_counts=(2, 4, 8),
            profile_requests=30,
        )
        return auto_shard(drm1(), objective, ServingConfig(seed=1))

    def test_chooses_a_plan(self, outcome):
        assert outcome.chosen is not None

    def test_capacity_budget_enforced(self, outcome):
        """2-shard plans (~97 GiB/shard) must be rejected on capacity."""
        model = drm1()
        for evaluation in outcome.evaluations:
            if evaluation.plan.num_shards == 2:
                assert not evaluation.feasible_capacity
        chosen_caps = outcome.chosen.capacity_by_shard(model)
        assert max(chosen_caps) <= 55 * GIB

    def test_prefers_fewest_shards_meeting_sla(self, outcome):
        """The heuristic minimizes shards (resource cost) subject to SLA."""
        viable = [
            e for e in outcome.evaluations if e.feasible_capacity and e.meets_sla
        ]
        assert viable
        assert outcome.chosen.num_shards == min(e.plan.num_shards for e in viable)

    def test_infeasible_budget_returns_none(self):
        objective = AutoShardObjective(
            shard_dram_budget=1 * GIB,  # nothing fits
            shard_counts=(2, 4),
            profile_requests=10,
        )
        outcome = auto_shard(drm1(), objective, ServingConfig(seed=1))
        assert outcome.chosen is None
        assert all(not e.feasible_capacity for e in outcome.evaluations)

    def test_drm3_skips_infeasible_strategies(self):
        """cap-bal/load-bal raise on the dominant table; auto-sharding must
        fall through to NSBP instead of crashing."""
        objective = AutoShardObjective(
            shard_dram_budget=80 * GIB,
            max_p99_latency_overhead=0.5,
            shard_counts=(4,),
            profile_requests=15,
        )
        outcome = auto_shard(drm3(), objective, ServingConfig(seed=1))
        assert outcome.chosen is not None
        assert outcome.chosen.strategy == "NSBP"

    def test_evaluation_lookup(self, outcome):
        evaluation = outcome.evaluation_for(outcome.chosen.label)
        assert evaluation.meets_sla
        with pytest.raises(KeyError):
            outcome.evaluation_for("nope")

"""Tests for embedding access traces and the caching analysis (Sec. IX)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.caching import (
    cache_curve,
    dram_reduction_at_hit_target,
    frequency_hit_rate,
    lru_hit_rate,
)
from repro.models import drm1
from repro.requests import RequestGenerator
from repro.requests.access_trace import AccessTrace, collect_access_trace


@pytest.fixture(scope="module")
def trace():
    model = drm1()
    requests = RequestGenerator(model, seed=3).generate_many(300)
    return collect_access_trace(model, requests, seed=7)


@pytest.fixture(scope="module")
def hot_table(trace):
    """The most-accessed table in the trace."""
    return max(trace.accesses, key=lambda name: len(trace.accesses[name]))


class TestTraceCollection:
    def test_trace_covers_observed_tables(self, trace):
        assert trace.total_accesses() > 0
        for name, accesses in trace.accesses.items():
            assert len(accesses) > 0
            assert (accesses >= 0).all()
            assert (accesses < trace.num_rows[name]).all()

    def test_trace_deterministic(self):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(20)
        a = collect_access_trace(model, requests, seed=7)
        b = collect_access_trace(model, requests, seed=7)
        for name in a.accesses:
            np.testing.assert_array_equal(a.accesses[name], b.accesses[name])

    def test_accesses_are_zipf_skewed(self, trace, hot_table):
        """A small set of hot rows dominates traffic."""
        accesses = trace.accesses[hot_table]
        _, counts = np.unique(accesses, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_decile = counts[: max(1, len(counts) // 10)].sum()
        assert top_decile / accesses.size > 0.4

    def test_hot_rows_not_physically_adjacent(self, trace, hot_table):
        accesses = trace.accesses[hot_table]
        values, counts = np.unique(accesses, return_counts=True)
        hottest = values[np.argsort(-counts)[:10]]
        # Mixed placement: hot rows spread across the row space.
        assert hottest.max() - hottest.min() > trace.num_rows[hot_table] / 10


class TestCachePolicies:
    def test_frequency_hit_rate_bounds(self, trace, hot_table):
        accesses = trace.accesses[hot_table]
        rows = trace.num_rows[hot_table]
        small = frequency_hit_rate(accesses, rows, 0.01)
        full = frequency_hit_rate(accesses, rows, 1.0)
        assert 0.0 < small < 1.0 + 1e-9
        assert full == pytest.approx(1.0)

    def test_frequency_monotone_in_cache_size(self, trace, hot_table):
        accesses = trace.accesses[hot_table]
        rows = trace.num_rows[hot_table]
        rates = [
            frequency_hit_rate(accesses, rows, f) for f in (0.01, 0.05, 0.2, 0.5)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_frequency_beats_lru(self, trace, hot_table):
        """Offline-optimal static placement upper-bounds online LRU."""
        accesses = trace.accesses[hot_table][:20000]
        rows = trace.num_rows[hot_table]
        for fraction in (0.05, 0.2):
            assert frequency_hit_rate(accesses, rows, fraction) >= lru_hit_rate(
                accesses, rows, fraction
            ) - 0.02

    def test_small_cache_large_hit_rate(self, trace, hot_table):
        """The Bandana effect: ~10% of rows capture most accesses."""
        accesses = trace.accesses[hot_table]
        rows = trace.num_rows[hot_table]
        assert frequency_hit_rate(accesses, rows, 0.10) > 0.6

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            frequency_hit_rate(np.array([1]), 10, 0.0)
        with pytest.raises(ValueError):
            lru_hit_rate(np.array([1]), 10, 1.5)

    def test_empty_trace_zero_hits(self):
        assert frequency_hit_rate(np.array([], dtype=np.int64), 10, 0.5) == 0.0
        assert lru_hit_rate(np.array([], dtype=np.int64), 10, 0.5) == 0.0

    @given(seed=st.integers(0, 200), fraction=st.sampled_from([0.1, 0.3, 0.7]))
    @settings(max_examples=20, deadline=None)
    def test_lru_never_exceeds_one(self, seed, fraction):
        rng = np.random.default_rng(seed)
        accesses = rng.integers(0, 50, size=int(rng.integers(1, 300)))
        rate = lru_hit_rate(accesses, 50, fraction)
        assert 0.0 <= rate <= 1.0


class TestCurvesAndSizing:
    def test_cache_curve_structure(self, trace, hot_table):
        points = cache_curve(trace, hot_table, fractions=(0.05, 0.25))
        assert len(points) == 4  # 2 fractions x 2 policies
        assert {p.policy for p in points} == {"frequency", "lru"}

    def test_dram_reduction_meets_target(self, trace, hot_table):
        fraction = dram_reduction_at_hit_target(trace, hot_table, hit_target=0.8)
        accesses = trace.accesses[hot_table]
        rows = trace.num_rows[hot_table]
        assert frequency_hit_rate(accesses, rows, fraction) >= 0.8
        assert fraction < 0.6  # skew makes a sub-60% cache sufficient

    def test_invalid_target_rejected(self, trace, hot_table):
        with pytest.raises(ValueError):
            dram_reduction_at_hit_target(trace, hot_table, hit_target=0.0)

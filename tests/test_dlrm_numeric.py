"""Tests for the materialized DLRM forward pass and request generation."""

import numpy as np
import pytest

from repro.core.dlrm import MaterializedModel
from repro.models import drm1, drm2, drm3
from repro.models.config import FeatureScope
from repro.requests import (
    ReplayMode,
    ReplaySchedule,
    RequestGenerator,
    materialize_numeric,
    request_payload_bytes,
)


@pytest.fixture(scope="module")
def tiny_drm1():
    return MaterializedModel.build(drm1(scale=1e-6), max_rows=64, seed=7)


@pytest.fixture(scope="module")
def tiny_drm3():
    return MaterializedModel.build(drm3(scale=1e-6), max_rows=64, seed=7)


class TestMaterializedForward:
    def test_scores_shape_and_range(self, tiny_drm1):
        generator = RequestGenerator(tiny_drm1.config, seed=11)
        request = generator.generate(0)
        numeric = materialize_numeric(tiny_drm1.config, request, seed=3)
        scores = tiny_drm1.forward(numeric)
        assert scores.shape == (request.num_items,)
        assert ((scores > 0) & (scores < 1)).all()

    def test_forward_deterministic(self, tiny_drm1):
        generator = RequestGenerator(tiny_drm1.config, seed=11)
        numeric = materialize_numeric(tiny_drm1.config, generator.generate(1), seed=3)
        a = tiny_drm1.forward(numeric)
        b = tiny_drm1.forward(numeric)
        np.testing.assert_array_equal(a, b)

    def test_single_net_model_forward(self, tiny_drm3):
        generator = RequestGenerator(tiny_drm3.config, seed=11)
        request = generator.generate(0)
        numeric = materialize_numeric(tiny_drm3.config, request, seed=3)
        scores = tiny_drm3.forward(numeric)
        assert scores.shape == (request.num_items,)

    def test_sparse_features_affect_scores(self, tiny_drm1):
        generator = RequestGenerator(tiny_drm1.config, seed=11)
        request = generator.generate(2)
        numeric = materialize_numeric(tiny_drm1.config, request, seed=3)
        baseline = tiny_drm1.forward(numeric)
        stripped = type(numeric)(
            request_id=numeric.request_id,
            num_items=numeric.num_items,
            user_dense=numeric.user_dense,
            item_dense=numeric.item_dense,
            sparse={},
        )
        without = tiny_drm1.forward(stripped)
        assert not np.allclose(baseline, without)

    def test_graph_validates(self, tiny_drm1, tiny_drm3):
        tiny_drm1.graph.validate()
        tiny_drm3.graph.validate()

    def test_all_tables_have_sls_ops(self, tiny_drm1):
        sls_names = {
            op.name for op in tiny_drm1.graph.all_operators() if op.name.startswith("sls_")
        }
        assert len(sls_names) == len(tiny_drm1.config.tables)


class TestRequestGenerator:
    def test_deterministic_given_seed(self):
        model = drm1(scale=1e-6)
        a = RequestGenerator(model, seed=5).generate_many(10)
        b = RequestGenerator(model, seed=5).generate_many(10)
        for x, y in zip(a, b):
            assert x.num_items == y.num_items
            assert x.total_ids == y.total_ids

    def test_pooling_totals_match_model_expectation(self):
        model = drm1(scale=1e-6)
        requests = RequestGenerator(model, seed=5).generate_many(600)
        per_net = {"net1": 0.0, "net2": 0.0}
        for request in requests:
            for net in per_net:
                per_net[net] += request.total_ids_for_net(model, net)
        per_net = {k: v / len(requests) for k, v in per_net.items()}
        expected = model.expected_pooling_per_net()
        assert per_net["net1"] == pytest.approx(expected["net1"], rel=0.1)
        assert per_net["net2"] == pytest.approx(expected["net2"], rel=0.25)

    def test_item_features_sparser_than_user(self):
        model = drm1(scale=1e-6)
        requests = RequestGenerator(model, seed=5).generate_many(100)
        user_tables = {t.name for t in model.tables if t.scope is FeatureScope.USER}
        user_hits = item_hits = 0
        for request in requests:
            for name in request.draws:
                if name in user_tables:
                    user_hits += 1
                else:
                    item_hits += 1
        user_rate = user_hits / (len(requests) * len(user_tables))
        item_rate = item_hits / (len(requests) * (len(model.tables) - len(user_tables)))
        assert user_rate > 0.5
        assert item_rate < user_rate

    def test_timestamps_span_window(self):
        model = drm3(scale=1e-6)
        requests = RequestGenerator(model, seed=5).generate_many(50, window_days=5)
        assert requests[0].timestamp == 0.0
        assert requests[-1].timestamp > 4 * 86400

    def test_ids_in_slice_user_vs_item(self):
        model = drm1(scale=1e-6)
        request = RequestGenerator(model, seed=5).generate(0)
        for draw in request.draws.values():
            table = model.table(draw.table_name)
            half = draw.ids_in_slice(0, request.num_items // 2)
            full = draw.ids_in_slice(0, request.num_items)
            if table.scope is FeatureScope.USER:
                assert half == full == draw.total_ids
            else:
                assert full == draw.total_ids
                assert 0 <= half <= full

    def test_payload_bytes_scale_with_items(self):
        model = drm2(scale=1e-6)
        generator = RequestGenerator(model, seed=5)
        requests = sorted(generator.generate_many(50), key=lambda r: r.num_items)
        small = request_payload_bytes(model, requests[0])
        large = request_payload_bytes(model, requests[-1])
        assert large > small


class TestReplaySchedule:
    def test_serial_has_no_arrivals(self):
        assert ReplaySchedule.serial().arrival_times(10) is None

    def test_open_loop_rate(self):
        schedule = ReplaySchedule.open_loop(qps=25.0, seed=1)
        times = schedule.arrival_times(5000)
        assert times is not None and len(times) == 5000
        rate = 5000 / times[-1]
        assert rate == pytest.approx(25.0, rel=0.1)

    def test_open_loop_requires_positive_qps(self):
        with pytest.raises(ValueError):
            ReplaySchedule(mode=ReplayMode.OPEN_LOOP, qps=0.0)

    def test_arrivals_monotonic(self):
        times = ReplaySchedule.open_loop(qps=10.0).arrival_times(100)
        assert (np.diff(times) > 0).all()

"""Unit tests for seeded RNG substreams, units, and dtypes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.rng import derive_seed, substream
from repro.core.types import (
    GIB,
    KIB,
    MIB,
    MS,
    US,
    DType,
    OpCategory,
    DENSE_CATEGORIES,
    format_bytes,
    format_duration,
)


class TestRng:
    def test_same_keys_same_stream(self):
        a = substream(7, "requests", "drm1").normal(size=8)
        b = substream(7, "requests", "drm1").normal(size=8)
        assert np.array_equal(a, b)

    def test_different_keys_different_stream(self):
        a = substream(7, "requests", "drm1").normal(size=8)
        b = substream(7, "requests", "drm2").normal(size=8)
        assert not np.array_equal(a, b)

    def test_different_root_seed_different_stream(self):
        a = substream(1, "fabric").normal(size=8)
        b = substream(2, "fabric").normal(size=8)
        assert not np.array_equal(a, b)

    def test_key_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_int_and_str_keys_distinct(self):
        assert derive_seed(0, 1) != derive_seed(0, "1")

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=16))
    def test_seed_in_64bit_range(self, root, key):
        seed = derive_seed(root, key)
        assert 0 <= seed < 2**64


class TestDType:
    def test_fp32_row_bytes(self):
        assert DType.FP32.row_bytes(64) == 256.0

    def test_int8_row_includes_overhead(self):
        assert DType.INT8.row_bytes(64) == 64 + 4

    def test_int4_half_byte_elements(self):
        assert DType.INT4.row_bytes(64) == 32 + 4

    def test_quantized_smaller_than_fp32(self):
        for dim in (8, 32, 64, 128):
            assert DType.INT8.row_bytes(dim) < DType.FP32.row_bytes(dim)
            assert DType.INT4.row_bytes(dim) < DType.INT8.row_bytes(dim)


class TestUnitsAndFormatting:
    def test_unit_ratios(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB
        assert MS == 1000 * US

    def test_format_bytes(self):
        assert format_bytes(194.05 * GIB) == "194.05 GiB"
        assert format_bytes(512) == "512 B"
        assert format_bytes(3.5 * MIB) == "3.50 MiB"

    def test_format_duration(self):
        assert format_duration(1.5) == "1.500 s"
        assert format_duration(2.5 * MS) == "2.500 ms"
        assert format_duration(120 * US) == "120.0 us"
        assert format_duration(500e-9) == "500 ns"

    def test_sparse_category_flag(self):
        assert OpCategory.SPARSE.is_sparse
        assert not OpCategory.DENSE.is_sparse

    def test_dense_categories_exclude_sparse_and_rpc(self):
        assert OpCategory.SPARSE not in DENSE_CATEGORIES
        assert OpCategory.RPC not in DENSE_CATEGORIES
        assert OpCategory.DENSE in DENSE_CATEGORIES

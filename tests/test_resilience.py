"""Tests for the tail-resilience layer: policy validation, empty-policy
byte-identity, retry/hedge/deadline accounting, crash-time aborts,
retry-budget monotonicity, fault domains and placement, and the
vectorized-kernel fallback gate."""

import numpy as np
import pytest

from repro.chaos import (
    CorrelatedFailure,
    FaultDomain,
    FaultSchedule,
    HostCrash,
    NetworkSpike,
    StragglerShard,
    availability_sweep,
    format_assessment,
)
from repro.experiments import (
    ShardingConfiguration,
    SuiteSettings,
    build_plan,
    run_configuration,
)
from repro.experiments.runner import suite_requests
from repro.models import drm1
from repro.resilience import ResiliencePolicy
from repro.serving import ServingConfig, TraceMode
from repro.serving.columnar import REASON_RESILIENCE
from repro.sharding.pooling import estimate_pooling_factors
from repro.workloads import PoissonArrivals, Workload

pytestmark = pytest.mark.filterwarnings("error")


def drm1_plan(shards: int = 4):
    model = drm1()
    pooling = estimate_pooling_factors(model, num_requests=100, seed=42)
    return model, build_plan(model, ShardingConfiguration("load-bal", shards), pooling)


def open_loop_inputs(num_requests: int = 60, qps: float = 80.0):
    model, plan = drm1_plan()
    settings = SuiteSettings(
        num_requests=num_requests, arrivals=PoissonArrivals(qps, seed=7)
    )
    return model, plan, suite_requests(model, settings), settings.resolved_schedule()


#: Replica 0 of shard 0 straggles for the whole replay while its sibling
#: stays healthy: the canonical hedging target.
STRAGGLER_REPLICA = FaultSchedule(
    experiments=(
        StragglerShard(
            shard=0, start=0.0, duration=10.0, multiplier=25.0, replica=0
        ),
    ),
    replicas=2,
)

RETRY_POLICY = ResiliencePolicy(rpc_timeout=5e-3, max_attempts=3)
HEDGE_POLICY = ResiliencePolicy(
    hedge_delay=5e-4, max_attempts=2,
    retry_budget=500.0, retry_refill_rate=500.0,
)


def _assert_columns_equal(a, b):
    assert np.array_equal(a.e2e, b.e2e)
    assert np.array_equal(a.cpu, b.cpu)
    assert np.array_equal(a.request_ids, b.request_ids)
    assert np.array_equal(a.status, b.status)
    assert np.array_equal(a.degraded, b.degraded)
    assert np.array_equal(a.retries, b.retries)
    assert np.array_equal(a.attempts, b.attempts)
    assert np.array_equal(a.hedged, b.hedged)
    assert np.array_equal(a.deadline_exceeded, b.deadline_exceeded)


class TestPolicyValidation:
    def test_rejects_nonsense_values(self):
        with pytest.raises(ValueError, match="rpc_timeout"):
            ResiliencePolicy(rpc_timeout=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_base"):
            ResiliencePolicy(backoff_base=-1.0)
        with pytest.raises(ValueError, match="backoff_jitter"):
            ResiliencePolicy(backoff_jitter=-0.1)
        with pytest.raises(ValueError, match="hedge_delay"):
            ResiliencePolicy(hedge_delay=-1e-3, max_attempts=2)
        with pytest.raises(ValueError, match="hedge_quantile"):
            ResiliencePolicy(hedge_quantile=150.0, max_attempts=2)
        with pytest.raises(ValueError, match="deadline"):
            ResiliencePolicy(deadline=0.0)
        with pytest.raises(ValueError, match="retry_budget"):
            ResiliencePolicy(retry_budget=-1.0)
        with pytest.raises(ValueError, match="retry_refill_rate"):
            ResiliencePolicy(retry_refill_rate=-1.0)

    def test_hedging_needs_a_second_attempt(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ResiliencePolicy(hedge_delay=1e-3, max_attempts=1)

    def test_hedge_delay_and_quantile_are_exclusive(self):
        with pytest.raises(ValueError, match="hedge"):
            ResiliencePolicy(
                hedge_delay=1e-3, hedge_quantile=95.0, max_attempts=2
            )

    def test_is_empty(self):
        assert ResiliencePolicy().is_empty
        assert not ResiliencePolicy(rpc_timeout=1e-3).is_empty
        assert not ResiliencePolicy(max_attempts=2).is_empty
        assert not ResiliencePolicy(hedge_delay=1e-3, max_attempts=2).is_empty
        assert not ResiliencePolicy(deadline=1.0).is_empty

    def test_with_hedge_delay_resolves_quantile(self):
        policy = ResiliencePolicy(hedge_quantile=95.0, max_attempts=2)
        resolved = policy.with_hedge_delay(2e-3)
        assert resolved.hedge_delay == pytest.approx(2e-3)
        assert resolved.hedge_quantile is None
        assert resolved.max_attempts == 2

    def test_describe_is_deterministic(self):
        policy = ResiliencePolicy(rpc_timeout=5e-3, max_attempts=3)
        assert policy.describe() == policy.describe()
        assert "timeout" in policy.describe()
        assert ResiliencePolicy().describe() == "empty"


class TestEmptyPolicyIdentity:
    """An empty policy exercises the config path but must be
    byte-identical to a run without the resilience layer at all."""

    @pytest.mark.parametrize("mode", [TraceMode.FULL, TraceMode.AGGREGATE])
    @pytest.mark.parametrize("kernel", ["reference", "batched"])
    def test_byte_identical_columns(self, mode, kernel):
        model, plan, requests, schedule = open_loop_inputs(40)
        base = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=mode, kernel=kernel),
            schedule,
        )
        empty = run_configuration(
            model, plan, requests,
            ServingConfig(
                trace_mode=mode, kernel=kernel,
                resilience=ResiliencePolicy(),
            ),
            schedule,
        )
        _assert_columns_equal(base, empty)
        for kind in ("latency", "embedded", "cpu"):
            for bucket, column in base.stack_columns(kind).items():
                assert np.array_equal(column, empty.stack_columns(kind)[bucket])
        assert not empty.attempts.any()
        assert not empty.hedged.any()
        assert not empty.deadline_exceeded.any()
        assert empty.resilience_stats == {}
        assert empty.aborted_rpcs == 0

    def test_empty_policy_stays_vectorized_eligible(self):
        model, plan = drm1_plan(shards=2)
        requests = suite_requests(
            model, SuiteSettings(num_requests=15, pooling_requests=100)
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(
                seed=1, kernel="vectorized", trace_mode=TraceMode.AGGREGATE,
                resilience=ResiliencePolicy(),
            ),
        )
        assert result.kernel_used == "vectorized"
        assert result.kernel_fallback is None


class TestVectorizedFallback:
    def test_active_policy_falls_back_with_reason(self):
        model, plan = drm1_plan(shards=2)
        requests = suite_requests(
            model, SuiteSettings(num_requests=15, pooling_requests=100)
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(
                seed=1, kernel="vectorized", trace_mode=TraceMode.AGGREGATE,
                resilience=RETRY_POLICY,
            ),
        )
        assert result.kernel_used == "batched"
        assert result.kernel_fallback == REASON_RESILIENCE


class TestHealthyClusterUnderPolicy:
    def test_generous_policy_matches_base_on_healthy_cluster(self):
        # Timeout and hedge thresholds no healthy RPC reaches: the
        # supervised path must reproduce the plain path's latencies.
        model, plan, requests, schedule = open_loop_inputs(40)
        base = run_configuration(model, plan, requests, None, schedule)
        policy = ResiliencePolicy(rpc_timeout=10.0, max_attempts=3,
                                  hedge_delay=10.0)
        supervised = run_configuration(
            model, plan, requests,
            ServingConfig(resilience=policy),
            schedule,
        )
        assert np.array_equal(base.e2e, supervised.e2e)
        assert np.array_equal(base.cpu, supervised.cpu)
        assert supervised.attempts.sum() > 0  # first attempts counted
        assert not supervised.hedged.any()
        assert supervised.resilience_stats["hedges"] == 0

    def test_tiny_deadline_flags_without_changing_latency(self):
        # A deadline below any achievable e2e: no *extra* attempts are
        # ever permitted (none are needed healthy), so latencies hold,
        # but every request is flagged deadline-exceeded.
        model, plan, requests, schedule = open_loop_inputs(30)
        base = run_configuration(model, plan, requests, None, schedule)
        flagged = run_configuration(
            model, plan, requests,
            ServingConfig(resilience=ResiliencePolicy(deadline=1e-9)),
            schedule,
        )
        assert np.array_equal(base.e2e, flagged.e2e)
        assert flagged.deadline_exceeded.all()
        assert flagged.resilience_stats["deadline_exceeded"] == len(requests)


class TestDeterminism:
    def test_replay_is_byte_identical_run_to_run(self):
        model, plan, requests, schedule = open_loop_inputs(40)
        serving = ServingConfig(
            trace_mode=TraceMode.AGGREGATE,
            chaos=STRAGGLER_REPLICA,
            resilience=ResiliencePolicy(
                rpc_timeout=2e-3, max_attempts=3,
                backoff_base=1e-4, backoff_jitter=0.5,
                hedge_delay=5e-4,
            ),
        )
        first = run_configuration(model, plan, requests, serving, schedule)
        second = run_configuration(model, plan, requests, serving, schedule)
        _assert_columns_equal(first, second)
        assert first.resilience_stats == second.resilience_stats
        assert first.aborted_rpcs == second.aborted_rpcs

    @pytest.mark.parametrize("mode", [TraceMode.FULL, TraceMode.AGGREGATE])
    def test_full_equals_aggregate_under_policy_and_chaos(self, mode):
        del mode  # both built below; parametrization documents intent
        model, plan, requests, schedule = open_loop_inputs(40)
        chaos = FaultSchedule(
            experiments=(
                NetworkSpike(start=0.1, duration=0.4, extra_latency=0.05),
                HostCrash(shard=0, at=0.2, restart_after=0.3),
            ),
            replicas=2,
        )
        results = {
            mode: run_configuration(
                model, plan, requests,
                ServingConfig(
                    trace_mode=mode, chaos=chaos, resilience=RETRY_POLICY
                ),
                schedule,
            )
            for mode in (TraceMode.FULL, TraceMode.AGGREGATE)
        }
        _assert_columns_equal(
            results[TraceMode.FULL], results[TraceMode.AGGREGATE]
        )

    def test_reference_equals_batched_kernel_under_policy(self):
        model, plan, requests, schedule = open_loop_inputs(40)
        results = {
            kernel: run_configuration(
                model, plan, requests,
                ServingConfig(
                    trace_mode=TraceMode.AGGREGATE, kernel=kernel,
                    chaos=STRAGGLER_REPLICA, resilience=HEDGE_POLICY,
                ),
                schedule,
            )
            for kernel in ("reference", "batched")
        }
        _assert_columns_equal(results["reference"], results["batched"])

    def test_sweep_serial_equals_parallel(self):
        workload = Workload(
            "ranking", drm1(), PoissonArrivals(120.0, seed=7), request_seed=3
        )
        kwargs = dict(
            replica_counts=(1, 2),
            domains=2,
            placement="spread",
            policy=ResiliencePolicy(
                rpc_timeout=5e-3, max_attempts=3,
                backoff_base=1e-4, backoff_jitter=0.5,
                hedge_quantile=95.0,
            ),
            settings=SuiteSettings(num_requests=40, pooling_requests=100),
        )
        serial = availability_sweep(
            workload, ShardingConfiguration("load-bal", 4),
            (CorrelatedFailure(domain=0, at=0.05),), **kwargs,
        )
        parallel = availability_sweep(
            workload, ShardingConfiguration("load-bal", 4),
            (CorrelatedFailure(domain=0, at=0.05),),
            parallel=True, max_workers=2, **kwargs,
        )
        assert serial.slo_latency == parallel.slo_latency
        assert serial.policy == parallel.policy
        for a, b in zip(serial.outcomes, parallel.outcomes):
            _assert_columns_equal(a.result, b.result)
            assert a.report == b.report
        assert format_assessment(serial) == format_assessment(parallel)


class TestHedging:
    def test_hedging_cuts_straggler_p99(self):
        model, plan, requests, schedule = open_loop_inputs(60)
        base = run_configuration(
            model, plan, requests,
            ServingConfig(
                trace_mode=TraceMode.AGGREGATE, chaos=STRAGGLER_REPLICA
            ),
            schedule,
        )
        hedged = run_configuration(
            model, plan, requests,
            ServingConfig(
                trace_mode=TraceMode.AGGREGATE, chaos=STRAGGLER_REPLICA,
                resilience=HEDGE_POLICY,
            ),
            schedule,
        )
        assert int(hedged.hedged.sum()) > 0
        assert hedged.resilience_stats["hedges"] == int(hedged.hedged.sum())
        p99_base = float(np.percentile(base.e2e, 99.0))
        p99_hedged = float(np.percentile(hedged.e2e, 99.0))
        assert p99_hedged < p99_base

    def test_sweep_resolves_hedge_quantile_from_healthy_baseline(self):
        workload = Workload(
            "ranking", drm1(), PoissonArrivals(120.0, seed=7), request_seed=3
        )
        assessment = availability_sweep(
            workload,
            ShardingConfiguration("load-bal", 4),
            (HostCrash(shard=0, at=0.1),),
            replica_counts=(2,),
            policy=ResiliencePolicy(hedge_quantile=95.0, max_attempts=2),
            settings=SuiteSettings(num_requests=40, pooling_requests=100),
        )
        assert assessment.policy is not None
        assert assessment.policy.hedge_quantile is None
        assert assessment.policy.hedge_delay is not None
        assert assessment.policy.hedge_delay > 0.0
        text = "\n".join(format_assessment(assessment))
        assert "resilience policy" in text and "hedge" in text

    def test_sweep_rejects_policy_on_serving_config(self):
        workload = Workload(
            "ranking", drm1(), PoissonArrivals(120.0, seed=7), request_seed=3
        )
        with pytest.raises(ValueError, match="policy="):
            availability_sweep(
                workload,
                ShardingConfiguration("load-bal", 4),
                (HostCrash(shard=0, at=0.1),),
                settings=SuiteSettings(
                    num_requests=20,
                    serving=ServingConfig(resilience=RETRY_POLICY),
                ),
            )


class TestCrashAborts:
    """Satellite: in-flight RPCs on a crashed host abort instead of
    silently completing."""

    def _crash_mid_flight(self, resilience=None):
        # A heavy straggler stretches shard-0 service segments so the
        # crash lands while attempts are *in service* (not just on the
        # wire): those attempts must abort at a segment boundary and
        # fail over, never complete on the dead host.
        model, plan, requests, schedule = open_loop_inputs(60, qps=200.0)
        chaos = FaultSchedule(
            experiments=(
                StragglerShard(
                    shard=0, start=0.0, duration=0.4, multiplier=200.0
                ),
                HostCrash(shard=0, at=0.05),
            ),
            replicas=2,
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(
                trace_mode=TraceMode.AGGREGATE, chaos=chaos,
                resilience=resilience,
            ),
            schedule,
        )
        return requests, result

    @pytest.mark.parametrize(
        "resilience", [None, RETRY_POLICY], ids=["no-policy", "policy"]
    )
    def test_mid_service_crash_aborts_and_retries(self, resilience):
        requests, result = self._crash_mid_flight(resilience)
        assert result.aborted_rpcs > 0
        assert (result.retries > 0).any()
        # Aborted attempts fail over to the live replica: nothing is
        # dropped and nothing silently completes on the dead host.
        assert len(result) == len(requests)
        assert result.incomplete_requests == ()
        if resilience is None:
            # The no-policy failover path retries until a live replica
            # answers: nothing degrades.
            assert not (result.status == 1).any()
        else:
            assert result.resilience_stats["aborted_attempts"] > 0
            # Under the policy, a request degrades only when every
            # permitted attempt died AND the token-bucket budget denied
            # a replacement -- the anti-retry-storm valve working as
            # designed, not a silent drop.
            degraded = int((result.status == 1).sum())
            if degraded:
                assert result.resilience_stats["budget_denied"] > 0

    def test_healthy_replay_never_aborts(self):
        model, plan, requests, schedule = open_loop_inputs(40)
        for serving in (
            None,
            ServingConfig(chaos=FaultSchedule()),
            ServingConfig(resilience=RETRY_POLICY),
        ):
            result = run_configuration(
                model, plan, requests, serving, schedule
            )
            assert result.aborted_rpcs == 0


class TestRetryBudget:
    def test_budget_denials_monotone_in_fault_severity(self):
        # A hard per-attempt timeout under ever-larger network spikes:
        # with a capped, non-refilling budget, the denial count can only
        # grow as more attempts time out.
        model, plan, requests, schedule = open_loop_inputs(40)
        policy = ResiliencePolicy(
            rpc_timeout=1e-3, max_attempts=3,
            retry_budget=5.0, retry_refill_rate=0.0,
        )
        denials = []
        for extra in (0.0, 2e-3, 8e-3):
            chaos = FaultSchedule(
                experiments=(
                    NetworkSpike(start=0.0, duration=10.0, extra_latency=extra),
                ),
                replicas=2,
            )
            result = run_configuration(
                model, plan, requests,
                ServingConfig(
                    trace_mode=TraceMode.AGGREGATE, chaos=chaos,
                    resilience=policy,
                ),
                schedule,
            )
            denials.append(result.resilience_stats["budget_denied"])
        assert denials[0] == 0
        assert denials[-1] > 0
        assert all(a <= b for a, b in zip(denials, denials[1:]))


class TestFaultDomains:
    def test_domain_and_placement_validation(self):
        with pytest.raises(ValueError, match="domains"):
            FaultSchedule(domains=0)
        with pytest.raises(ValueError, match="placement"):
            FaultSchedule(placement="diagonal")
        with pytest.raises(ValueError, match="domain"):
            FaultSchedule(
                experiments=(CorrelatedFailure(domain=3, at=0.1),), domains=2
            )
        with pytest.raises(ValueError, match="at"):
            CorrelatedFailure(domain=0, at=-1.0)
        with pytest.raises(ValueError, match="stagger"):
            CorrelatedFailure(domain=0, at=0.1, stagger=-0.5)
        with pytest.raises(ValueError, match="index"):
            FaultDomain(index=-1)

    def _domain_crash_sweep(self, placement):
        workload = Workload(
            "ranking", drm1(), PoissonArrivals(120.0, seed=7), request_seed=3
        )
        return availability_sweep(
            workload,
            ShardingConfiguration("load-bal", 4),
            (CorrelatedFailure(domain=0, at=0.05),),
            replica_counts=(2,),
            domains=2,
            placement=placement,
            settings=SuiteSettings(num_requests=60, pooling_requests=100),
        )

    def test_spread_retains_more_nines_than_packed(self):
        spread = self._domain_crash_sweep("spread")
        packed = self._domain_crash_sweep("packed")
        spread_retention = spread.outcomes[0].report.slo_retention
        packed_retention = packed.outcomes[0].report.slo_retention
        # Spread placement stripes each shard's replicas across domains,
        # so the domain crash leaves every shard a survivor; packed
        # placement loses both replicas of half the shards outright.
        assert spread_retention > packed_retention
        assert not (spread.outcomes[0].result.status == 1).any()
        assert (packed.outcomes[0].result.status == 1).any()

    def test_domain_crash_timeline_and_report_header(self):
        assessment = self._domain_crash_sweep("spread")
        kinds = [e.kind for e in assessment.outcomes[0].timeline]
        assert "domain-crash" in kinds
        assert "correlated-crash" in kinds
        text = "\n".join(format_assessment(assessment))
        assert "fault domains: 2 (placement spread)" in text

    def test_correlated_restart_recovers(self):
        model, plan, requests, schedule = open_loop_inputs(80, qps=100.0)
        chaos = FaultSchedule(
            experiments=(
                CorrelatedFailure(domain=0, at=0.1, restart_after=0.2),
            ),
            domains=2,
            placement="packed",
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=chaos),
            schedule,
        )
        degraded_ids = set(result.request_ids[result.status == 1].tolist())
        assert degraded_ids
        arrivals = PoissonArrivals(100.0, seed=7).arrival_times(80)
        late = [rid for rid in range(80) if arrivals[rid] > 0.35]
        assert late and not (set(late) & degraded_ids)

    def test_stagger_draws_are_deterministic(self):
        model, plan, requests, schedule = open_loop_inputs(40)
        chaos = FaultSchedule(
            experiments=(
                CorrelatedFailure(domain=0, at=0.1, stagger=0.05),
            ),
            domains=2,
            replicas=2,
        )
        serving = ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=chaos)
        first = run_configuration(model, plan, requests, serving, schedule)
        second = run_configuration(model, plan, requests, serving, schedule)
        assert np.array_equal(first.e2e, second.e2e)
        assert first.chaos_timeline == second.chaos_timeline
        crash_times = [
            e.time for e in first.chaos_timeline
            if e.kind == "correlated-crash"
        ]
        assert crash_times
        assert all(0.1 <= t <= 0.15 + 1e-12 for t in crash_times)

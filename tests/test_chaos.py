"""Tests for the chaos layer: fault validation, empty-schedule
byte-identity, failover/degradation accounting, healing, availability
sweeps, abort draining, and the input-validation satellite."""

import numpy as np
import pytest

from repro.chaos import (
    FaultSchedule,
    HealingPolicy,
    HostCrash,
    NetworkSpike,
    ReplicaLoss,
    StragglerShard,
    availability_report,
    availability_sweep,
    format_assessment,
    format_timeline,
    nines,
)
from repro.experiments import (
    ShardingConfiguration,
    SuiteSettings,
    build_plan,
    run_configuration,
)
from repro.experiments.runner import suite_requests
from repro.models import drm1
from repro.serving import ServingConfig, TraceMode
from repro.serving.simulator import ClusterSimulation, SimServer
from repro.sharding.pooling import estimate_pooling_factors
from repro.simulation.costmodel import CostModel
from repro.simulation.network import FabricSpec
from repro.simulation.platform import SC_LARGE, Platform
from repro.workloads import PoissonArrivals, Workload

pytestmark = pytest.mark.filterwarnings("error")


def drm1_plan(shards: int = 4):
    model = drm1()
    pooling = estimate_pooling_factors(model, num_requests=100, seed=42)
    return model, build_plan(model, ShardingConfiguration("load-bal", shards), pooling)


def open_loop_inputs(num_requests: int = 60, qps: float = 80.0):
    model, plan = drm1_plan()
    settings = SuiteSettings(
        num_requests=num_requests, arrivals=PoissonArrivals(qps, seed=7)
    )
    return model, plan, suite_requests(model, settings), settings.resolved_schedule()


CRASH = FaultSchedule(experiments=(HostCrash(shard=0, at=0.2),))


class TestFaultValidation:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError, match="at"):
            HostCrash(shard=0, at=-1.0)
        with pytest.raises(ValueError, match="restart_after"):
            HostCrash(shard=0, at=0.0, restart_after=-0.5)
        with pytest.raises(ValueError, match="duration"):
            StragglerShard(shard=0, start=0.0, duration=-1.0)
        with pytest.raises(ValueError, match="start"):
            NetworkSpike(start=float("nan"), duration=1.0)

    def test_main_tier_faults_rejected(self):
        with pytest.raises(ValueError, match="main-tier"):
            HostCrash(shard=-1, at=0.0)

    def test_straggler_needs_slowdown(self):
        with pytest.raises(ValueError, match="multiplier"):
            StragglerShard(shard=0, start=0.0, duration=1.0, multiplier=0.5)

    def test_schedule_validates_members(self):
        with pytest.raises(TypeError, match="FaultExperiment"):
            FaultSchedule(experiments=("crash",))
        with pytest.raises(ValueError, match="replicas"):
            FaultSchedule(replicas=0)
        with pytest.raises(ValueError, match="failover_timeout"):
            FaultSchedule(failover_timeout=-1.0)

    def test_healing_policy_validation(self):
        with pytest.raises(ValueError, match="check_interval"):
            HealingPolicy(check_interval=0.0)
        with pytest.raises(ValueError, match="consecutive_misses"):
            HealingPolicy(consecutive_misses=0)

    def test_schedule_horizon_and_emptiness(self):
        assert FaultSchedule().is_empty
        assert FaultSchedule().horizon() == 0.0
        schedule = FaultSchedule(
            experiments=(
                HostCrash(shard=0, at=0.5, restart_after=1.0),
                StragglerShard(shard=1, start=0.2, duration=0.4),
            )
        )
        assert not schedule.is_empty
        assert schedule.horizon() == pytest.approx(1.5)

    def test_out_of_range_shard_rejected_at_setup(self):
        model, plan = drm1_plan(shards=2)
        config = ServingConfig(
            chaos=FaultSchedule(experiments=(HostCrash(shard=5, at=0.1),))
        )
        with pytest.raises(ValueError, match="only 2 sparse shard"):
            ClusterSimulation(model, plan, config)

    def test_out_of_range_replica_rejected_at_setup(self):
        model, plan = drm1_plan(shards=2)
        config = ServingConfig(
            chaos=FaultSchedule(
                experiments=(ReplicaLoss(shard=0, at=0.1, replica=3),), replicas=2
            )
        )
        with pytest.raises(ValueError, match="replica"):
            ClusterSimulation(model, plan, config)


class TestEmptyScheduleIdentity:
    """An empty FaultSchedule exercises the chaos code path but must be
    byte-identical to a run without the chaos layer at all."""

    @pytest.mark.parametrize("mode", [TraceMode.FULL, TraceMode.AGGREGATE])
    def test_byte_identical_columns(self, mode):
        model, plan, requests, schedule = open_loop_inputs(40)
        base = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=mode, clock_skew_sigma=1e-6),
            schedule,
        )
        empty = run_configuration(
            model, plan, requests,
            ServingConfig(
                trace_mode=mode, clock_skew_sigma=1e-6, chaos=FaultSchedule()
            ),
            schedule,
        )
        assert np.array_equal(base.e2e, empty.e2e)
        assert np.array_equal(base.cpu, empty.cpu)
        assert np.array_equal(base.request_ids, empty.request_ids)
        for kind in ("latency", "embedded", "cpu"):
            for bucket, column in base.stack_columns(kind).items():
                assert np.array_equal(column, empty.stack_columns(kind)[bucket])
        assert not empty.status.any()
        assert not empty.degraded.any()
        assert not empty.retries.any()
        assert empty.chaos_timeline == ()

    def test_healthy_run_has_chaos_columns_zeroed(self):
        model, plan, requests, schedule = open_loop_inputs(20)
        result = run_configuration(model, plan, requests, None, schedule)
        assert not result.status.any()
        assert np.array_equal(
            np.sort(result.request_ids), np.arange(len(result), dtype=np.int64)
        )


class TestFailoverAndDegradation:
    def test_crash_without_replicas_degrades(self):
        model, plan, requests, schedule = open_loop_inputs()
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=CRASH),
            schedule,
        )
        degraded = result.status == 1
        assert degraded.any()
        assert np.array_equal(result.degraded > 0, degraded)
        assert (result.retries == 0).all()
        assert len(result) == len(requests)  # degraded, not dropped

    def test_crash_with_replica_fails_over(self):
        model, plan, requests, schedule = open_loop_inputs()
        schedule_2r = FaultSchedule(
            experiments=(HostCrash(shard=0, at=0.2),), replicas=2
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=schedule_2r),
            schedule,
        )
        assert not (result.status == 1).any()

    def test_inflight_rpcs_retry_on_crash(self):
        # Stretch RPC flight time with a spike so the crash catches
        # requests mid-flight: they must retry onto the live replica.
        model, plan, requests, schedule = open_loop_inputs()
        chaos = FaultSchedule(
            experiments=(
                NetworkSpike(start=0.1, duration=0.4, extra_latency=0.05),
                HostCrash(shard=0, at=0.2, restart_after=0.3),
            ),
            replicas=2,
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=chaos),
            schedule,
        )
        assert (result.retries > 0).any()
        assert not (result.status == 1).any()

    @pytest.mark.parametrize(
        "chaos",
        [
            CRASH,
            FaultSchedule(experiments=(HostCrash(shard=0, at=0.2),), replicas=2),
            FaultSchedule(
                experiments=(
                    NetworkSpike(start=0.1, duration=0.4, extra_latency=0.05),
                    HostCrash(shard=0, at=0.2, restart_after=0.3),
                ),
                replicas=2,
            ),
        ],
        ids=["degrade", "failover", "retry"],
    )
    def test_full_equals_aggregate_under_chaos(self, chaos):
        model, plan, requests, schedule = open_loop_inputs()
        results = {
            mode: run_configuration(
                model, plan, requests,
                ServingConfig(trace_mode=mode, chaos=chaos),
                schedule,
            )
            for mode in (TraceMode.FULL, TraceMode.AGGREGATE)
        }
        full, aggregate = results[TraceMode.FULL], results[TraceMode.AGGREGATE]
        assert np.array_equal(full.e2e, aggregate.e2e)
        assert np.array_equal(full.cpu, aggregate.cpu)
        assert np.array_equal(full.request_ids, aggregate.request_ids)
        assert np.array_equal(full.status, aggregate.status)
        assert np.array_equal(full.degraded, aggregate.degraded)
        assert np.array_equal(full.retries, aggregate.retries)

    def test_straggler_and_spike_raise_latency(self):
        model, plan, requests, schedule = open_loop_inputs()
        base = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE),
            schedule,
        )
        straggler = FaultSchedule(
            experiments=(
                StragglerShard(shard=1, start=0.0, duration=10.0, multiplier=8.0),
            )
        )
        spike = FaultSchedule(
            experiments=(
                NetworkSpike(start=0.0, duration=10.0, extra_latency=0.01),
            )
        )
        for chaos in (straggler, spike):
            faulted = run_configuration(
                model, plan, requests,
                ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=chaos),
                schedule,
            )
            assert faulted.e2e.mean() > base.e2e.mean()
            assert not (faulted.status == 1).any()

    def test_restart_ends_degradation(self):
        model, plan, requests, schedule = open_loop_inputs(80, qps=100.0)
        chaos = FaultSchedule(
            experiments=(HostCrash(shard=0, at=0.1, restart_after=0.2),)
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=chaos),
            schedule,
        )
        degraded_ids = set(result.request_ids[result.status == 1].tolist())
        assert degraded_ids
        arrivals = PoissonArrivals(100.0, seed=7).arrival_times(80)
        assert all(arrivals[rid] >= 0.1 for rid in degraded_ids)
        late = [rid for rid in range(80) if arrivals[rid] > 0.35]
        assert late and not (set(late) & degraded_ids)


class TestHealing:
    def test_crash_detected_healed_order_and_recovery(self):
        model, plan, requests, schedule = open_loop_inputs(80, qps=100.0)
        policy = HealingPolicy(
            check_interval=0.05, consecutive_misses=2, recovery_lag=0.1
        )
        chaos = FaultSchedule(
            experiments=(HostCrash(shard=0, at=0.2),), healing=policy
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=chaos),
            schedule,
        )
        kinds = [event.kind for event in result.chaos_timeline]
        assert kinds == ["crash", "detected", "healed"]
        crash, detected, healed = result.chaos_timeline
        assert crash.time == pytest.approx(0.2)
        # detection takes between (misses - 1) and misses heartbeats
        # depending on how the crash aligns with the tick grid
        assert crash.time < detected.time
        assert detected.time <= crash.time + policy.detection_lag() + policy.check_interval
        assert healed.time == pytest.approx(detected.time + policy.recovery_lag)
        assert "0/1 live" in detected.detail
        assert healed.server.startswith("sparse-0-h")

        unhealed = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=CRASH),
            schedule,
        )
        assert (result.status == 1).sum() < (unhealed.status == 1).sum()

        arrivals = PoissonArrivals(100.0, seed=7).arrival_times(80)
        degraded_ids = result.request_ids[result.status == 1]
        assert all(arrivals[rid] <= healed.time for rid in degraded_ids)

    def test_healing_noop_when_replicas_survive(self):
        model, plan, requests, schedule = open_loop_inputs(40)
        chaos = FaultSchedule(
            experiments=(),
            healing=HealingPolicy(check_interval=0.05),
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=chaos),
            schedule,
        )
        assert result.chaos_timeline == ()
        assert not result.status.any()


class TestAvailabilityReport:
    def test_report_classification(self):
        model, plan, requests, schedule = open_loop_inputs()
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=CRASH),
            schedule,
        )
        arrivals = PoissonArrivals(80.0, seed=7).arrival_times(len(requests))
        report = availability_report(result, arrivals, slo_latency=10.0)
        assert report.total == len(requests)
        assert report.degraded == int((result.status == 1).sum())
        assert report.ok + report.slow + report.degraded + report.failed == report.total
        assert report.availability == pytest.approx(
            (report.ok + report.slow) / report.total
        )
        assert report.slo_retention <= report.availability
        assert sum(window.arrived for window in report.windows) == report.total

    def test_report_validation_and_nines(self):
        model, plan, requests, schedule = open_loop_inputs(20)
        result = run_configuration(model, plan, requests, None, schedule)
        arrivals = np.zeros(len(requests))
        with pytest.raises(ValueError, match="slo_latency"):
            availability_report(result, arrivals, slo_latency=0.0)
        with pytest.raises(ValueError, match="window"):
            availability_report(result, arrivals, slo_latency=1.0, window=0.0)
        assert nines(0.999) == pytest.approx(3.0)
        assert nines(1.0) == 9.0
        assert nines(0.0) == 0.0

    def test_format_timeline_mentions_events_and_windows(self):
        model, plan, requests, schedule = open_loop_inputs(40)
        chaos = FaultSchedule(
            experiments=(HostCrash(shard=0, at=0.1),),
            healing=HealingPolicy(check_interval=0.05, recovery_lag=0.1),
        )
        result = run_configuration(
            model, plan, requests,
            ServingConfig(trace_mode=TraceMode.AGGREGATE, chaos=chaos),
            schedule,
        )
        arrivals = PoissonArrivals(80.0, seed=7).arrival_times(len(requests))
        report = availability_report(result, arrivals, slo_latency=10.0)
        lines = format_timeline(result.chaos_timeline, report)
        text = "\n".join(lines)
        assert "crash" in text and "healed" in text and "availability" in text


class TestAvailabilitySweep:
    @pytest.fixture(scope="class")
    def assessment(self):
        workload = Workload(
            "ranking", drm1(), PoissonArrivals(120.0, seed=7), request_seed=3
        )
        return availability_sweep(
            workload,
            ShardingConfiguration("load-bal", 4),
            (HostCrash(shard=0, at=0.1),),
            replica_counts=(1, 2, 3),
            settings=SuiteSettings(num_requests=80, pooling_requests=100),
        )

    def test_slo_retention_monotone_in_replicas(self, assessment):
        retention = [
            outcome.report.slo_retention for outcome in assessment.outcomes
        ]
        assert all(a <= b for a, b in zip(retention, retention[1:]))
        assert retention[0] < 1.0  # the crash hurts at one replica
        assert retention[-1] > retention[0]  # replication actually helps

    def test_replicas_for_target(self, assessment):
        needed = assessment.replicas_for(0.9)
        assert needed is not None
        by_count = {
            outcome.replicas: outcome.report.slo_retention
            for outcome in assessment.outcomes
        }
        assert by_count[needed] >= 0.9
        assert all(
            by_count[count] < 0.9
            for count in by_count
            if count < needed
        )
        assert assessment.replicas_for(2.0) is None

    def test_serial_equals_parallel(self, assessment):
        workload = Workload(
            "ranking", drm1(), PoissonArrivals(120.0, seed=7), request_seed=3
        )
        parallel = availability_sweep(
            workload,
            ShardingConfiguration("load-bal", 4),
            (HostCrash(shard=0, at=0.1),),
            replica_counts=(1, 2, 3),
            settings=SuiteSettings(num_requests=80, pooling_requests=100),
            parallel=True,
            max_workers=2,
        )
        for serial_out, parallel_out in zip(assessment.outcomes, parallel.outcomes):
            assert np.array_equal(serial_out.result.e2e, parallel_out.result.e2e)
            assert np.array_equal(
                serial_out.result.status, parallel_out.result.status
            )
            assert (
                serial_out.report.slo_retention == parallel_out.report.slo_retention
            )
        assert parallel.slo_latency == assessment.slo_latency

    def test_format_assessment_reports_the_answer(self, assessment):
        lines = format_assessment(assessment)
        text = "\n".join(lines)
        assert "replicas for" in text
        assert "timeline (replicas=1):" in text

    def test_rejects_bad_inputs(self):
        workload = Workload(
            "ranking", drm1(), PoissonArrivals(120.0, seed=7), request_seed=3
        )
        with pytest.raises(ValueError, match="replica_counts"):
            availability_sweep(
                workload, ShardingConfiguration("load-bal", 4), (), replica_counts=()
            )
        with pytest.raises(ValueError, match="serving.chaos"):
            availability_sweep(
                workload,
                ShardingConfiguration("load-bal", 4),
                (),
                settings=SuiteSettings(
                    serving=ServingConfig(chaos=FaultSchedule())
                ),
            )


class TestPlannerAvailability:
    def test_assess_availability_on_chosen_plan(self):
        from repro.planning import CandidateSpace, CapacityPlanner, SlaPolicy

        workload = Workload(
            "ranking", drm1(), PoissonArrivals(120.0, seed=7), request_seed=3
        )
        planner = CapacityPlanner(
            policy=SlaPolicy(10.0),  # generous: the candidate qualifies
            space=CandidateSpace(
                configurations=(ShardingConfiguration("load-bal", 4),)
            ),
            settings=SuiteSettings(num_requests=60, pooling_requests=100),
        )
        plan = planner.plan(workload)
        assessment = planner.assess_availability(
            workload, plan, (HostCrash(shard=0, at=0.1),), replica_counts=(1, 2)
        )
        # the planner's SLA target is the SLO the retention is held to
        assert assessment.slo_latency == planner.policy.target_latency
        retention = [o.report.slo_retention for o in assessment.outcomes]
        assert retention[0] <= retention[1]

    def test_singular_choice_cannot_be_chaos_assessed(self):
        from repro.planning import CandidateSpace, CapacityPlanner, SlaPolicy

        workload = Workload(
            "ranking", drm1(), PoissonArrivals(25.0, seed=2), request_seed=3
        )
        planner = CapacityPlanner(
            policy=SlaPolicy(10.0),
            space=CandidateSpace(
                configurations=(ShardingConfiguration("singular"),)
            ),
            settings=SuiteSettings(num_requests=10, pooling_requests=100),
        )
        plan = planner.plan(workload)
        with pytest.raises(ValueError, match="sparse shard"):
            planner.assess_availability(
                workload, plan, (HostCrash(shard=0, at=0.1),), replica_counts=(1,)
            )


class TestDrainOnAbort:
    def test_abort_mid_replay_drains_inflight(self):
        model, plan, requests, schedule = open_loop_inputs(30)

        class Boom(RuntimeError):
            pass

        cluster = ClusterSimulation(model, plan, ServingConfig())
        completed = []

        def on_complete(request_id: int) -> None:
            cluster.tracer.pop_request(request_id)
            completed.append(request_id)
            if len(completed) == 5:
                raise Boom()

        cluster.on_complete = on_complete
        with pytest.raises(Boom):
            cluster.run_open_loop(requests, schedule)
        # the abort left in-flight requests; they were drained, recorded,
        # and the tracer holds no leaked state
        assert cluster.dropped_requests
        assert cluster.tracer.drain_incomplete() == []
        assert set(cluster.dropped_requests).isdisjoint(completed)

    def test_incomplete_requests_annotated_in_result(self):
        model, plan, requests, schedule = open_loop_inputs(20)
        result = run_configuration(model, plan, requests, None, schedule)
        assert result.incomplete_requests == ()


class TestValidationSatellite:
    def test_serving_config_rejects_nonsense(self):
        with pytest.raises(ValueError, match="service_workers"):
            ServingConfig(service_workers=0)
        with pytest.raises(ValueError, match="max_batches"):
            ServingConfig(max_batches=0)
        with pytest.raises(ValueError, match="batch_size"):
            ServingConfig(batch_size=0)
        with pytest.raises(ValueError, match="clock_skew_sigma"):
            ServingConfig(clock_skew_sigma=-1e-6)

    def test_sim_server_rejects_nonsense(self):
        from repro.simulation.engine import Engine

        engine = Engine()
        with pytest.raises(ValueError, match="workers"):
            SimServer(engine, "bad", SC_LARGE, workers=0)
        with pytest.raises(ValueError, match="io_threads"):
            SimServer(engine, "bad", SC_LARGE, workers=1, io_threads=0)

    def test_cost_model_rejects_negative_terms(self):
        with pytest.raises(ValueError, match="rpc_service_fixed"):
            CostModel(rpc_service_fixed=-1e-6)
        with pytest.raises(ValueError, match="serde_bytes_per_sec"):
            CostModel(serde_bytes_per_sec=0.0)
        with pytest.raises(ValueError, match="dense_pre_fraction"):
            CostModel(dense_pre_fraction=1.5)

    def test_fabric_rejects_negative_jitter(self):
        with pytest.raises(ValueError, match="jitter_sigma"):
            FabricSpec(jitter_sigma=-0.1)
        with pytest.raises(ValueError, match="propagation"):
            FabricSpec(propagation=float("nan"))

    def test_platform_rejects_nonsense(self):
        with pytest.raises(ValueError, match="cores"):
            Platform(
                name="bad", cores=0, dram_capacity=1.0, clock_ghz=1.0,
                mem_bandwidth=1.0, dram_access_ns=1.0, nic_bandwidth=1.0,
            )
        with pytest.raises(ValueError, match="mem_bandwidth"):
            Platform(
                name="bad", cores=1, dram_capacity=1.0, clock_ghz=1.0,
                mem_bandwidth=-1.0, dram_access_ns=1.0, nic_bandwidth=1.0,
            )

"""Tests for the experiment harness: configs, runner, figure generators,
and the replication planner."""

import numpy as np
import pytest

from repro.compression import compress_model
from repro.experiments import (
    ShardingConfiguration,
    SuiteSettings,
    build_plan,
    figures,
    paper_configurations,
    run_configuration,
    run_suite,
    suite_requests,
)
from repro.models import drm1, drm3
from repro.requests import ReplaySchedule
from repro.serving import (
    ReplicationDemand,
    ServingConfig,
    memory_efficiency_vs_singular,
    plan_replication,
)
from repro.sharding import SINGULAR, estimate_pooling_factors


SETTINGS = SuiteSettings(num_requests=40, pooling_requests=150)


@pytest.fixture(scope="module")
def drm1_model():
    return drm1()


@pytest.fixture(scope="module")
def drm1_results(drm1_model):
    return run_suite(drm1_model, SETTINGS)


@pytest.fixture(scope="module")
def drm3_results():
    return run_suite(drm3(), SETTINGS)


class TestConfigurations:
    def test_drm1_matrix_has_eleven_configs(self):
        configs = paper_configurations("DRM1")
        assert len(configs) == 11  # singular + 1-shard + 3 strategies x 3 counts
        labels = [c.label for c in configs]
        assert SINGULAR in labels and "1 shard" in labels
        assert "load-bal 8 shards" in labels

    def test_drm3_matrix_is_nsbp_only(self):
        configs = paper_configurations("DRM3")
        strategies = {c.strategy for c in configs}
        assert strategies == {SINGULAR, "1-shard", "NSBP"}
        assert len(configs) == 4

    def test_build_plan_singular(self, drm1_model):
        plan = build_plan(drm1_model, ShardingConfiguration(SINGULAR))
        assert plan.is_singular


class TestRunner:
    def test_suite_covers_all_configs(self, drm1_results):
        assert len(drm1_results) == 11
        for result in drm1_results.values():
            assert len(result.attributions) == 40

    def test_same_requests_all_configs(self, drm1_results):
        """Every config replays the identical request sample."""
        batch_counts = {
            label: [a.num_batches for a in r.attributions]
            for label, r in drm1_results.items()
        }
        reference = batch_counts[SINGULAR]
        for label, counts in batch_counts.items():
            assert counts == reference, label

    def test_run_configuration_with_open_loop(self, drm1_model):
        requests = suite_requests(drm1_model, SETTINGS)
        plan = build_plan(drm1_model, ShardingConfiguration(SINGULAR))
        result = run_configuration(
            drm1_model, plan, requests,
            ServingConfig(seed=1, service_workers=2),
            ReplaySchedule.open_loop(qps=100.0, seed=5),
        )
        assert len(result.attributions) == len(requests)

    def test_result_arrays(self, drm1_results):
        result = drm1_results[SINGULAR]
        assert result.e2e.shape == (40,)
        assert (result.e2e > 0).all()
        assert (result.cpu > 0).all()


class TestPaperShapes:
    """The qualitative findings of Section VI, asserted on suite output."""

    def test_serial_distributed_always_slower_p50(self, drm1_results):
        base = np.percentile(drm1_results[SINGULAR].e2e, 50)
        for label, result in drm1_results.items():
            if label != SINGULAR:
                assert np.percentile(result.e2e, 50) > base, label

    def test_more_shards_reduce_latency_overhead(self, drm1_results):
        for strategy in ("load-bal", "cap-bal"):
            p50 = {
                n: np.percentile(drm1_results[f"{strategy} {n} shards"].e2e, 50)
                for n in (2, 8)
            }
            assert p50[8] < p50[2], strategy

    def test_compute_overhead_grows_with_shards(self, drm1_results):
        cpu = {
            n: np.percentile(drm1_results[f"load-bal {n} shards"].cpu, 50)
            for n in (2, 4, 8)
        }
        assert cpu[2] < cpu[4] < cpu[8]

    def test_nsbp_least_compute_worst_latency(self, drm1_results):
        """Section VI-D1: NSBP is the most compute-scalable strategy but
        parallelizes the least."""
        for n in (4, 8):
            nsbp = drm1_results[f"NSBP {n} shards"]
            load = drm1_results[f"load-bal {n} shards"]
            assert np.percentile(nsbp.cpu, 50) < np.percentile(load.cpu, 50)
            assert np.percentile(nsbp.e2e, 50) >= np.percentile(load.e2e, 50)

    def test_load_vs_capacity_balanced_similar_latency(self, drm1_results):
        """Section VI-D2: no significant E2E difference."""
        for n in (2, 4, 8):
            load = np.percentile(drm1_results[f"load-bal {n} shards"].e2e, 50)
            cap = np.percentile(drm1_results[f"cap-bal {n} shards"].e2e, 50)
            assert abs(load - cap) / cap < 0.05

    def test_drm3_sharding_has_no_effect(self, drm3_results):
        """Section VI-E1: DRM3 gains nothing from more shards."""
        p50 = {
            label: np.percentile(result.e2e, 50)
            for label, result in drm3_results.items()
            if label != SINGULAR
        }
        values = list(p50.values())
        assert max(values) / min(values) < 1.08

    def test_p99_overhead_leq_p50_for_balanced(self, drm1_results):
        base = drm1_results[SINGULAR]
        for label in ("load-bal 8 shards", "cap-bal 8 shards"):
            result = drm1_results[label]
            ov50 = (np.percentile(result.e2e, 50) - np.percentile(base.e2e, 50)) / np.percentile(base.e2e, 50)
            ov99 = (np.percentile(result.e2e, 99) - np.percentile(base.e2e, 99)) / np.percentile(base.e2e, 99)
            assert ov99 <= ov50 + 0.02, label


class TestFigureGenerators:
    def test_fig1(self):
        artifact = figures.fig1_model_growth()
        assert artifact.data["features_x"] >= 9.0
        assert "Figure 1" in artifact.text

    def test_fig4(self, drm1_results, drm1_model):
        artifact = figures.fig4_operator_attribution(
            {"DRM1": drm1_results[SINGULAR]}, {"DRM1": drm1_model}
        )
        shares = artifact.data["shares"]["DRM1"]
        assert sum(shares.values()) == pytest.approx(1.0, rel=1e-6)
        assert 0.02 < shares["Sparse"] < 0.25

    def test_fig5(self, drm1_model):
        artifact = figures.fig5_table_size_distribution(
            {"DRM1": drm1_model, "DRM3": drm3()}
        )
        assert artifact.data["DRM3"]["dominant_share"] > 0.85
        assert artifact.data["DRM1"]["dominant_share"] < 0.05

    def test_table2(self, drm1_model):
        pooling = estimate_pooling_factors(drm1_model, 150, seed=42)
        plans = {
            c.label: build_plan(drm1_model, c, pooling)
            for c in paper_configurations("DRM1")
            if c.strategy != SINGULAR
        }
        artifact = figures.table2_sharding_results(drm1_model, plans, pooling)
        nsbp2 = artifact.data["NSBP 2 shards"]
        ratio = max(nsbp2["capacity_gib"]) / min(nsbp2["capacity_gib"])
        assert ratio == pytest.approx(4.75, rel=0.06)

    def test_fig6_structure(self, drm1_results):
        artifact = figures.fig6_overheads(drm1_results, "DRM1")
        assert SINGULAR not in artifact.data
        assert set(artifact.data["1 shard"]) == {50, 90, 99}

    def test_fig8_stacks(self, drm1_results):
        a = figures.fig8a_e2e_latency_stacks(drm1_results)
        b = figures.fig8b_embedded_stacks(drm1_results)
        assert SINGULAR in a.data["stacks"]
        singular_emb = b.data["stacks"][SINGULAR]
        assert singular_emb["Network Latency"] == 0.0

    def test_fig9(self, drm1_results):
        artifact = figures.fig9_cpu_stacks(drm1_results)
        base = sum(artifact.data["stacks"][SINGULAR].values())
        dist = sum(artifact.data["stacks"]["load-bal 8 shards"].values())
        assert dist > base

    def test_fig10_net_skew(self, drm1_results):
        artifact = figures.fig10_per_shard_by_net(drm1_results)
        nsbp = artifact.data["per_shard"]["NSBP 8 shards"]
        by_net = {}
        for (shard, net), value in nsbp.items():
            by_net.setdefault(net, []).append(value)
        # NSBP: net1 shards carry far more operator work than net2 shards.
        assert max(by_net["net1"]) > 5 * max(by_net["net2"])

    def test_fig12(self, drm1_results):
        artifact = figures.fig12_per_shard_by_strategy(drm1_results)
        assert set(artifact.data["per_shard"]) == {
            "load-bal 8 shards", "cap-bal 8 shards", "NSBP 8 shards"
        }

    def test_fig11(self, drm3_results):
        artifact = figures.fig11_drm3_per_shard(drm3_results)
        per_shard = artifact.data["per_shard"]["NSBP 8 shards"]
        values = sorted(per_shard.values(), reverse=True)
        # One shard (the small tables) does nearly all operator work.
        assert values[0] > 3 * values[1]


class TestReplication:
    def test_distributed_reduces_replicated_memory(self, drm1_model, drm1_results):
        demand = ReplicationDemand(qps=20000.0)
        singular = plan_replication(drm1_model, drm1_results[SINGULAR], demand)
        distributed = plan_replication(
            drm1_model, drm1_results["load-bal 8 shards"], demand
        )
        assert singular.main_replicas > 1
        efficiency = memory_efficiency_vs_singular(singular, distributed)
        assert efficiency > 2.0

    def test_sparse_replicas_fewer_than_main(self, drm1_model, drm1_results):
        """Sparse shards are compute-light: they replicate less than the
        dense main shard (Section VII-C)."""
        demand = ReplicationDemand(qps=20000.0)
        plan = plan_replication(drm1_model, drm1_results["load-bal 8 shards"], demand)
        assert max(plan.sparse_replicas.values()) <= plan.main_replicas

    def test_invalid_demand_rejected(self):
        with pytest.raises(ValueError):
            ReplicationDemand(qps=0.0)
        with pytest.raises(ValueError):
            ReplicationDemand(qps=1.0, utilization_target=1.5)

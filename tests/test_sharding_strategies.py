"""Tests for sharding plans, strategies, and pooling estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import GIB
from repro.models import drm1, drm2, drm3
from repro.sharding import (
    STRATEGIES,
    ShardingError,
    ShardingPlan,
    ShardSpec,
    TableAssignment,
    estimate_pooling_factors,
    pooling_by_shard,
    singular_plan,
)


@pytest.fixture(scope="module")
def model_drm1():
    return drm1()


@pytest.fixture(scope="module")
def pooling_drm1(model_drm1):
    return estimate_pooling_factors(model_drm1, num_requests=300, seed=42)


class TestPlanValidation:
    def test_singular_plan_valid(self, model_drm1):
        plan = singular_plan(model_drm1)
        plan.validate(model_drm1)
        assert plan.is_singular and plan.num_shards == 0
        assert plan.label == "singular"

    def test_missing_table_rejected(self, model_drm1):
        names = [t.name for t in model_drm1.tables][:-1]  # drop one
        plan = ShardingPlan(
            "DRM1", "test", [ShardSpec(0, [TableAssignment(n, 0) for n in names])]
        )
        with pytest.raises(ShardingError, match="unassigned"):
            plan.validate(model_drm1)

    def test_duplicate_table_rejected(self, model_drm1):
        names = [t.name for t in model_drm1.tables]
        assignments = [TableAssignment(n, 0) for n in names]
        assignments.append(TableAssignment(names[0], 0))
        plan = ShardingPlan("DRM1", "test", [ShardSpec(0, assignments)])
        with pytest.raises(ShardingError):
            plan.validate(model_drm1)

    def test_incomplete_partition_rejected(self, model_drm1):
        names = [t.name for t in model_drm1.tables]
        assignments = [TableAssignment(n, 0) for n in names[1:]]
        assignments.append(TableAssignment(names[0], 0, part_index=0, num_parts=3))
        plan = ShardingPlan("DRM1", "test", [ShardSpec(0, assignments)])
        with pytest.raises(ShardingError, match="partitions"):
            plan.validate(model_drm1)

    def test_empty_shard_rejected(self, model_drm1):
        names = [t.name for t in model_drm1.tables]
        plan = ShardingPlan(
            "DRM1",
            "test",
            [ShardSpec(0, [TableAssignment(n, 0) for n in names]), ShardSpec(1, [])],
        )
        with pytest.raises(ShardingError, match="empty"):
            plan.validate(model_drm1)

    def test_bad_partition_index_rejected(self):
        with pytest.raises(ShardingError):
            TableAssignment("t", 0, part_index=2, num_parts=2)


class TestOneShard:
    def test_all_tables_on_one_shard(self, model_drm1):
        plan = STRATEGIES["1-shard"].build_plan(model_drm1, 1)
        assert plan.num_shards == 1
        assert len(plan.shards[0].assignments) == len(model_drm1.tables)
        assert plan.label == "1 shard"

    def test_rejects_other_counts(self, model_drm1):
        with pytest.raises(ShardingError):
            STRATEGIES["1-shard"].build_plan(model_drm1, 2)


class TestCapacityBalanced:
    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_capacity_within_tolerance(self, model_drm1, num_shards):
        plan = STRATEGIES["cap-bal"].build_plan(model_drm1, num_shards)
        capacities = plan.capacity_by_shard(model_drm1)
        mean = np.mean(capacities)
        # LPT on 257 tables balances tightly.
        assert max(capacities) / min(capacities) < 1.15
        assert sum(capacities) == pytest.approx(model_drm1.sparse_bytes, rel=1e-6)
        assert mean == pytest.approx(model_drm1.sparse_bytes / num_shards, rel=1e-6)

    def test_rejects_dominant_table_model(self):
        # Paper: DRM3 is only sharded with NSBP because its 178.8 GB table
        # cannot be balanced without row partitioning.
        with pytest.raises(ShardingError, match="row partitioning"):
            STRATEGIES["cap-bal"].build_plan(drm3(), 4)

    def test_load_imbalance_documented(self, model_drm1, pooling_drm1):
        """Capacity balance leaves large pooling imbalance (Table II: up to
        371% between shards in the 8-shard configuration)."""
        plan = STRATEGIES["cap-bal"].build_plan(model_drm1, 8)
        loads = pooling_by_shard(plan.shards, pooling_drm1)
        assert max(loads) / min(loads) > 1.5


class TestLoadBalanced:
    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_pooling_within_tolerance(self, model_drm1, pooling_drm1, num_shards):
        plan = STRATEGIES["load-bal"].build_plan(model_drm1, num_shards, pooling_drm1)
        loads = pooling_by_shard(plan.shards, pooling_drm1)
        assert max(loads) / min(loads) < 1.1

    def test_capacity_varies(self, model_drm1, pooling_drm1):
        """Load balance trades capacity balance (paper: up to 50% variance)."""
        plan = STRATEGIES["load-bal"].build_plan(model_drm1, 8, pooling_drm1)
        capacities = plan.capacity_by_shard(model_drm1)
        assert max(capacities) / min(capacities) > 1.1

    def test_requires_pooling(self, model_drm1):
        with pytest.raises(ShardingError, match="pooling"):
            STRATEGIES["load-bal"].build_plan(model_drm1, 2)

    def test_missing_table_pooling_rejected(self, model_drm1):
        with pytest.raises(ShardingError):
            STRATEGIES["load-bal"].build_plan(model_drm1, 2, {"not_a_table": 1.0})


class TestNSBP:
    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_shards_never_mix_nets(self, model_drm1, num_shards):
        plan = STRATEGIES["NSBP"].build_plan(model_drm1, num_shards)
        assert plan.num_shards == num_shards
        for shard in plan.shards:
            assert len(shard.nets_present(model_drm1)) == 1

    def test_two_shards_one_per_net(self, model_drm1):
        """Table II: NSBP-2 puts net1 (33.58 GiB) and net2 (160.47 GiB) on
        their own shards; net2's shard holds ~4.75x the capacity."""
        plan = STRATEGIES["NSBP"].build_plan(model_drm1, 2)
        capacities = plan.capacity_by_shard(model_drm1)
        ratio = max(capacities) / min(capacities)
        assert ratio == pytest.approx(4.75, rel=0.05)

    def test_two_shard_pooling_skew(self, model_drm1, pooling_drm1):
        """Table II: the big (net2) shard does ~6.3% of net1's work."""
        plan = STRATEGIES["NSBP"].build_plan(model_drm1, 2)
        loads = pooling_by_shard(plan.shards, pooling_drm1)
        assert min(loads) / max(loads) == pytest.approx(0.063, rel=0.35)

    def test_drm3_partitions_dominant_table(self):
        model = drm3()
        plan = STRATEGIES["NSBP"].build_plan(model, 8)
        dominant = max(model.tables, key=lambda t: t.nbytes)
        partition_shards = [
            s
            for s in plan.shards
            if any(a.table_name == dominant.name for a in s.assignments)
        ]
        # Paper Fig. 11a: shard 1 holds all small tables; the dominant table
        # is split across the remaining 7 shards.
        assert len(partition_shards) == 7
        others = [s for s in plan.shards if s not in partition_shards]
        assert len(others) == 1

    def test_drm3_four_shards(self):
        plan = STRATEGIES["NSBP"].build_plan(drm3(), 4)
        assert plan.num_shards == 4

    def test_requires_shard_per_net(self, model_drm1):
        with pytest.raises(ShardingError):
            STRATEGIES["NSBP"].build_plan(model_drm1, 1)


class TestPoolingEstimator:
    def test_covers_all_tables(self, model_drm1, pooling_drm1):
        assert set(pooling_drm1) == {t.name for t in model_drm1.tables}

    def test_deterministic(self, model_drm1):
        a = estimate_pooling_factors(model_drm1, num_requests=50, seed=1)
        b = estimate_pooling_factors(model_drm1, num_requests=50, seed=1)
        assert a == b

    def test_net1_dominates_net2(self, model_drm1, pooling_drm1):
        per_net = {"net1": 0.0, "net2": 0.0}
        for table in model_drm1.tables:
            per_net[table.net] += pooling_drm1[table.name]
        assert per_net["net1"] > 10 * per_net["net2"]

    def test_scales_with_request_count(self, model_drm1):
        small = sum(estimate_pooling_factors(model_drm1, 50, seed=1).values())
        large = sum(estimate_pooling_factors(model_drm1, 200, seed=1).values())
        assert large == pytest.approx(4 * small, rel=0.3)

    def test_rejects_zero_requests(self, model_drm1):
        with pytest.raises(ValueError):
            estimate_pooling_factors(model_drm1, num_requests=0)


class TestAllStrategiesProduceValidPlans:
    @pytest.mark.parametrize("strategy_name", ["cap-bal", "load-bal", "NSBP"])
    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_plan_valid_for_drm1_drm2(
        self, strategy_name, num_shards, model_drm1, pooling_drm1
    ):
        plan = STRATEGIES[strategy_name].build_plan(
            model_drm1, num_shards, pooling_drm1
        )
        plan.validate(model_drm1)  # would raise on any coverage violation
        assert plan.num_shards == num_shards

    @given(num_shards=st.integers(2, 12))
    @settings(max_examples=11, deadline=None)
    def test_capacity_balanced_property(self, num_shards):
        model = drm2()
        plan = STRATEGIES["cap-bal"].build_plan(model, num_shards)
        plan.validate(model)
        capacities = plan.capacity_by_shard(model)
        assert sum(capacities) == pytest.approx(model.sparse_bytes, rel=1e-6)
        assert max(capacities) <= 1.5 * model.sparse_bytes / num_shards

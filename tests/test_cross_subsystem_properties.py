"""Cross-subsystem property tests (hypothesis-driven invariants).

These tie subsystems together: any strategy's plan must survive
serialization, partition numerics, and simulation; analysis identities
must hold for arbitrary samples; batching must cover every item exactly
once for any request size.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import overhead_vs_baseline, quantile
from repro.models import drm1, drm2, drm3
from repro.requests import RequestGenerator
from repro.requests.generator import Request
from repro.serving import ClusterSimulation, ServingConfig
from repro.serving.simulator import _Batch
from repro.sharding import (
    STRATEGIES,
    ShardingError,
    dump_plan,
    estimate_pooling_factors,
    load_plan,
    singular_plan,
)


@pytest.fixture(scope="module")
def models():
    return {"DRM1": drm1(), "DRM2": drm2(), "DRM3": drm3()}


@pytest.fixture(scope="module")
def poolings(models):
    return {
        name: estimate_pooling_factors(model, 120, seed=42)
        for name, model in models.items()
    }


class TestPlanProperties:
    @given(
        model_name=st.sampled_from(["DRM1", "DRM2"]),
        strategy=st.sampled_from(["cap-bal", "load-bal", "NSBP"]),
        num_shards=st.sampled_from([2, 3, 4, 6, 8, 12]),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_plan_serializes_and_validates(
        self, models, poolings, model_name, strategy, num_shards
    ):
        model = models[model_name]
        try:
            plan = STRATEGIES[strategy].build_plan(
                model, num_shards, poolings[model_name]
            )
        except ShardingError:
            return  # infeasible combination is a legal outcome
        restored = load_plan(dump_plan(plan), model)  # validates on load
        assert restored.num_shards == plan.num_shards
        # Capacity is conserved through serialization.
        assert sum(restored.capacity_by_shard(model)) == pytest.approx(
            model.sparse_bytes, rel=1e-6
        )

    @given(num_shards=st.sampled_from([2, 4, 6, 8, 10]))
    @settings(max_examples=5, deadline=None)
    def test_nsbp_never_mixes_nets_property(self, models, num_shards):
        model = models["DRM2"]
        plan = STRATEGIES["NSBP"].build_plan(model, num_shards)
        for shard in plan.shards:
            assert len(shard.nets_present(model)) == 1

    def test_strategies_cover_capacity_exactly(self, models, poolings):
        for name, model in models.items():
            for strategy in ("cap-bal", "load-bal", "NSBP"):
                try:
                    plan = STRATEGIES[strategy].build_plan(model, 4, poolings[name])
                except ShardingError:
                    continue
                assert sum(plan.capacity_by_shard(model)) == pytest.approx(
                    model.sparse_bytes, rel=1e-6
                )


class TestBatchingProperties:
    @given(items=st.integers(1, 5000), batch_size=st.sampled_from([8, 72, 512]),
           cap=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_batches_partition_items_exactly(self, items, batch_size, cap):
        model = drm3()
        config = ServingConfig(seed=1, batch_size=batch_size, max_batches=cap)
        sim = ClusterSimulation(model, singular_plan(model), config)
        request = Request(request_id=0, timestamp=0.0, num_items=items, draws={})
        batches = sim._batches(sim.tenants[0], request)
        assert len(batches) <= cap
        assert batches[0].start_item == 0
        assert batches[-1].stop_item == items
        covered = 0
        for batch in batches:
            assert batch.items > 0
            assert batch.start_item == covered
            covered = batch.stop_item
        assert covered == items

    def test_batch_sizes_balanced(self):
        model = drm3()
        sim = ClusterSimulation(
            model, singular_plan(model), ServingConfig(seed=1, max_batches=8)
        )
        request = Request(0, 0.0, 1000, {})
        sizes = [b.items for b in sim._batches(sim.tenants[0], request)]
        assert max(sizes) - min(sizes) <= 1


class TestAnalysisIdentities:
    @given(
        seed=st.integers(0, 1000),
        q=st.sampled_from([50, 90, 99]),
        scale=st.floats(0.5, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_overhead_identity_under_scaling(self, seed, q, scale):
        """overhead(scale * x, x) == scale - 1 for any sample and quantile."""
        rng = np.random.default_rng(seed)
        baseline = rng.lognormal(0, 0.5, size=100)
        assert overhead_vs_baseline(scale * baseline, baseline, q) == pytest.approx(
            scale - 1.0, rel=1e-9
        )

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_quantiles_monotone(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=50)
        values = [quantile(samples, q) for q in (1, 25, 50, 75, 99)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestEndToEndDeterminism:
    def test_full_pipeline_reproducible(self, models, poolings):
        """model -> plan -> requests -> simulation -> attribution is a pure
        function of seeds, twice over."""
        from repro.experiments.runner import run_configuration

        model = models["DRM1"]
        plan = STRATEGIES["load-bal"].build_plan(model, 4, poolings["DRM1"])
        requests = RequestGenerator(model, seed=3).generate_many(10)

        def run_once():
            result = run_configuration(
                model, plan, requests, ServingConfig(seed=1)
            )
            return [a.e2e for a in result.attributions], [
                a.cpu_total for a in result.attributions
            ]

        first_e2e, first_cpu = run_once()
        second_e2e, second_cpu = run_once()
        assert first_e2e == second_e2e
        assert first_cpu == second_cpu

    def test_request_sample_independent_of_plan(self, models, poolings):
        """Plans must not perturb the request stream (same draws seen)."""
        model = models["DRM2"]
        requests_a = RequestGenerator(model, seed=5).generate_many(10)
        requests_b = RequestGenerator(model, seed=5).generate_many(10)
        for a, b in zip(requests_a, requests_b):
            assert a.num_items == b.num_items
            assert set(a.draws) == set(b.draws)

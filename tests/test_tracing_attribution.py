"""Tests for spans, the tracer, and cross-layer attribution invariants."""

import numpy as np
import pytest

from repro.core.types import OpCategory
from repro.models import drm1
from repro.requests import RequestGenerator
from repro.serving import ClusterSimulation, ServingConfig
from repro.sharding import STRATEGIES, estimate_pooling_factors, singular_plan
from repro.tracing import (
    AttributionError,
    E2E_BUCKETS,
    Layer,
    MAIN_SHARD,
    Span,
    Tracer,
    attribute_request,
)


def make_span(**overrides):
    base = dict(
        request_id=0, shard=MAIN_SHARD, server="main", layer=Layer.SERVICE,
        name="s", start=0.0, end=1.0,
    )
    base.update(overrides)
    return Span(**base)


class TestSpan:
    def test_duration(self):
        assert make_span(start=1.0, end=3.5).duration == 2.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            make_span(start=2.0, end=1.0)


class TestTracer:
    def test_record_and_query(self):
        tracer = Tracer()
        tracer.record(make_span(request_id=1))
        tracer.record(make_span(request_id=2))
        tracer.record(make_span(request_id=1, name="x"))
        assert len(tracer.for_request(1)) == 2
        assert tracer.request_ids() == [1, 2]
        assert tracer.spans_recorded == 3

    def test_pop_request_frees(self):
        tracer = Tracer()
        tracer.record(make_span(request_id=1))
        spans = tracer.pop_request(1)
        assert len(spans) == 1
        assert tracer.for_request(1) == []

    def test_clear(self):
        tracer = Tracer()
        tracer.record(make_span())
        tracer.clear()
        assert tracer.request_ids() == []


class TestAttributionErrors:
    def test_empty_spans_rejected(self):
        with pytest.raises(AttributionError):
            attribute_request([])

    def test_missing_service_span_rejected(self):
        with pytest.raises(AttributionError):
            attribute_request([make_span(layer=Layer.BATCH, batch=0)])

    def test_missing_batch_span_rejected(self):
        with pytest.raises(AttributionError):
            attribute_request([make_span(layer=Layer.SERVICE)])


@pytest.fixture(scope="module")
def traced_runs():
    model = drm1()
    requests = RequestGenerator(model, seed=3).generate_many(20)
    pooling = estimate_pooling_factors(model, num_requests=150, seed=42)
    runs = {}
    for label, plan in (
        ("singular", singular_plan(model)),
        ("load-bal-4", STRATEGIES["load-bal"].build_plan(model, 4, pooling)),
    ):
        sim = ClusterSimulation(model, plan, ServingConfig(seed=1))
        sim.run_serial(requests)
        runs[label] = (sim, requests)
    return runs


class TestAttributionInvariants:
    def test_e2e_stack_sums_to_e2e(self, traced_runs):
        """The latency stack partitions E2E exactly (service is residual)."""
        for sim, requests in traced_runs.values():
            for request in requests:
                att = attribute_request(sim.tracer.for_request(request.request_id))
                assert sum(att.latency_stack.values()) == pytest.approx(att.e2e, rel=1e-9)
                assert set(att.latency_stack) == set(E2E_BUCKETS)

    def test_stack_components_non_negative(self, traced_runs):
        for sim, requests in traced_runs.values():
            for request in requests:
                att = attribute_request(sim.tracer.for_request(request.request_id))
                assert all(v >= 0 for v in att.latency_stack.values())
                assert all(v >= 0 for v in att.embedded_stack.values())
                assert all(v >= 0 for v in att.cpu_stack.values())

    def test_cpu_total_matches_span_cpu(self, traced_runs):
        for sim, requests in traced_runs.values():
            for request in requests[:5]:
                spans = sim.tracer.for_request(request.request_id)
                att = attribute_request(spans)
                assert att.cpu_total == pytest.approx(
                    sum(s.cpu_time for s in spans), rel=1e-9
                )

    def test_per_shard_cpu_partitions_total(self, traced_runs):
        for sim, requests in traced_runs.values():
            for request in requests[:5]:
                att = attribute_request(sim.tracer.for_request(request.request_id))
                assert sum(att.per_shard_cpu.values()) == pytest.approx(
                    att.cpu_total, rel=1e-9
                )

    def test_singular_embedded_is_pure_sparse_ops(self, traced_runs):
        sim, requests = traced_runs["singular"]
        for request in requests[:5]:
            att = attribute_request(sim.tracer.for_request(request.request_id))
            assert att.embedded_stack["Network Latency"] == 0.0
            assert att.embedded_stack["Caffe2 Sparse Ops"] > 0.0
            assert att.rpcs == 0

    def test_distributed_embedded_has_network(self, traced_runs):
        sim, requests = traced_runs["load-bal-4"]
        for request in requests[:5]:
            att = attribute_request(sim.tracer.for_request(request.request_id))
            assert att.embedded_stack["Network Latency"] > 0.0
            assert att.rpcs > 0


class TestClockSkewInvariance:
    """Section IV-B: clocks on disparate servers are skewed; the network
    latency derivation uses duration differences, so attribution must be
    *identical* under arbitrary per-server skew."""

    @staticmethod
    def _attributions(skew_sigma):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(12)
        pooling = estimate_pooling_factors(model, num_requests=150, seed=42)
        plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
        config = ServingConfig(seed=1, clock_skew_sigma=skew_sigma)
        sim = ClusterSimulation(model, plan, config)
        sim.run_serial(requests)
        return [
            attribute_request(sim.tracer.for_request(r.request_id)) for r in requests
        ]

    def test_attribution_invariant_to_skew(self):
        no_skew = self._attributions(0.0)
        big_skew = self._attributions(0.25)  # +/- hundreds of ms of skew
        for a, b in zip(no_skew, big_skew):
            assert a.e2e == pytest.approx(b.e2e, rel=1e-12)
            for bucket in a.latency_stack:
                assert a.latency_stack[bucket] == pytest.approx(
                    b.latency_stack[bucket], rel=1e-9, abs=1e-15
                )
            for bucket in a.embedded_stack:
                assert a.embedded_stack[bucket] == pytest.approx(
                    b.embedded_stack[bucket], rel=1e-9, abs=1e-15
                )

    def test_skew_actually_shifts_wall_clocks(self):
        model = drm1()
        requests = RequestGenerator(model, seed=3).generate_many(2)
        pooling = estimate_pooling_factors(model, num_requests=50, seed=42)
        plan = STRATEGIES["load-bal"].build_plan(model, 4, pooling)
        config = ServingConfig(seed=1, clock_skew_sigma=0.25)
        sim = ClusterSimulation(model, plan, config)
        sim.run_serial(requests)
        spans = sim.tracer.for_request(requests[0].request_id)
        # A shard span can appear to *start before* the main-shard request
        # does -- the telltale sign of skewed wall clocks.
        main_start = min(s.start for s in spans if s.shard == MAIN_SHARD)
        shard_starts = [s.start for s in spans if s.shard != MAIN_SHARD]
        assert shard_starts
        spread = max(shard_starts) - min(shard_starts)
        assert spread > 0.01  # >> any real execution window in this test

"""Tests for embedding tables, pooled lookup, and row partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embedding import EmbeddingTable, partition_table
from repro.models.config import TableConfig


def make_table(rows=64, dim=8, seed=0):
    config = TableConfig("t0", "net1", num_rows=rows, dim=dim)
    return EmbeddingTable.materialize(config, max_rows=rows, seed=seed)


class TestEmbeddingTable:
    def test_materialize_caps_rows(self):
        config = TableConfig("big", "net1", num_rows=10**9, dim=4)
        table = EmbeddingTable.materialize(config, max_rows=128)
        assert table.num_rows == 128

    def test_lookup_sum_single_segment(self):
        table = make_table()
        ids = np.array([3, 5, 7])
        out = table.lookup_sum(ids, np.array([3]))
        expected = table.weights[3] + table.weights[5] + table.weights[7]
        np.testing.assert_allclose(out[0], expected, rtol=1e-6)

    def test_lookup_sum_multiple_segments(self):
        table = make_table()
        ids = np.array([0, 1, 2, 3, 4])
        out = table.lookup_sum(ids, np.array([2, 0, 3]))
        assert out.shape == (3, 8)
        np.testing.assert_allclose(out[0], table.weights[0] + table.weights[1], rtol=1e-6)
        np.testing.assert_array_equal(out[1], np.zeros(8))
        np.testing.assert_allclose(
            out[2], table.weights[2] + table.weights[3] + table.weights[4], rtol=1e-6
        )

    def test_empty_lookup_is_zeros(self):
        table = make_table()
        out = table.lookup_sum(np.zeros(0, dtype=np.int64), np.array([0, 0]))
        np.testing.assert_array_equal(out, np.zeros((2, 8)))

    def test_duplicate_ids_accumulate(self):
        table = make_table()
        out = table.lookup_sum(np.array([4, 4, 4]), np.array([3]))
        np.testing.assert_allclose(out[0], 3 * table.weights[4], rtol=1e-6)

    def test_out_of_range_id_rejected(self):
        table = make_table(rows=16)
        with pytest.raises(IndexError):
            table.lookup_sum(np.array([16]), np.array([1]))
        with pytest.raises(IndexError):
            table.lookup_sum(np.array([-1]), np.array([1]))

    def test_length_mismatch_rejected(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.lookup_sum(np.array([1, 2]), np.array([3]))

    def test_weights_dim_must_match_config(self):
        config = TableConfig("t", "net1", 8, dim=8)
        with pytest.raises(ValueError):
            EmbeddingTable(config, np.zeros((8, 4), dtype=np.float32))


class TestRowPartitioning:
    def test_partitions_cover_all_rows_once(self):
        table = make_table(rows=67)  # deliberately not divisible
        parts = partition_table(table, 4)
        total_rows = sum(p.num_rows for p in parts)
        assert total_rows == 67
        reconstructed = np.zeros_like(table.weights)
        for k, part in enumerate(parts):
            reconstructed[k::4] = part.weights
        np.testing.assert_array_equal(reconstructed, table.weights)

    def test_partial_sums_reconstruct_full_lookup(self):
        table = make_table(rows=50)
        parts = partition_table(table, 3)
        ids = np.array([0, 1, 2, 3, 49, 17, 17])
        lengths = np.array([3, 4])
        full = table.lookup_sum(ids, lengths)
        partial_total = sum(p.lookup_sum_partial(ids, lengths) for p in parts)
        np.testing.assert_allclose(partial_total, full, rtol=1e-5, atol=1e-7)

    def test_routing_modulus(self):
        table = make_table(rows=20)
        parts = partition_table(table, 4)
        ids = np.arange(20)
        for k, part in enumerate(parts):
            owned = ids[part.routing.owns(ids)]
            assert (owned % 4 == k).all()
            np.testing.assert_array_equal(part.routing.to_local(owned), owned // 4)

    def test_single_partition_identity(self):
        table = make_table(rows=30)
        (part,) = partition_table(table, 1)
        ids = np.array([0, 29, 7])
        lengths = np.array([3])
        np.testing.assert_allclose(
            part.lookup_sum_partial(ids, lengths), table.lookup_sum(ids, lengths), rtol=1e-6
        )

    def test_bad_part_count_rejected(self):
        with pytest.raises(ValueError):
            partition_table(make_table(), 0)

    @given(
        num_parts=st.integers(1, 8),
        seed=st.integers(0, 100),
        rows=st.integers(8, 120),
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_invariant_random(self, num_parts, seed, rows):
        """Property: partitioned pooled lookup == unpartitioned, any split."""
        table = make_table(rows=rows, seed=seed)
        parts = partition_table(table, num_parts)
        rng = np.random.default_rng(seed)
        n_ids = int(rng.integers(0, 40))
        ids = rng.integers(0, rows, size=n_ids)
        # random segmentation of the ids
        n_segments = int(rng.integers(1, 6))
        cuts = np.sort(rng.integers(0, n_ids + 1, size=n_segments - 1))
        lengths = np.diff(np.concatenate([[0], cuts, [n_ids]]))
        full = table.lookup_sum(ids, lengths)
        partial = sum(p.lookup_sum_partial(ids, lengths) for p in parts)
        np.testing.assert_allclose(partial, full, rtol=1e-4, atol=1e-6)

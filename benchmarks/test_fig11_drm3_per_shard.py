"""Figure 11: DRM3 per-shard operator latencies and embedded breakdown.

Paper targets: under NSBP, shard 1 holds every table except the largest
and performs the majority of the (tiny) sparse compute; the dominant
table's partitions see one single-row lookup each; increasing shards has
no practical effect on the embedded-portion latency.
"""

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.sharding import SINGULAR


def test_fig11_drm3_per_shard(benchmark, suites):
    results = suites.serial("DRM3")
    artifact = benchmark(lambda: figures.fig11_drm3_per_shard(results))
    print("\n" + artifact.text)
    save_artifact("fig11_drm3_per_shard.txt", artifact.text)

    per_shard = artifact.data["per_shard"]["NSBP 8 shards"]
    values = sorted(per_shard.values(), reverse=True)
    # One shard (the small-tables bin) does the bulk of operator work.
    assert values[0] > 3 * values[1]
    # All 8 shards do *some* work across the request sample (each
    # partition of the dominant table is hit by someone).
    assert len(per_shard) == 8

    # Embedded-portion totals barely move between NSBP-4 and NSBP-8.
    stacks = artifact.data["stacks"]
    nsbp4 = sum(stacks["NSBP 4 shards"].values())
    nsbp8 = sum(stacks["NSBP 8 shards"].values())
    assert abs(nsbp8 - nsbp4) / nsbp4 < 0.12
    # And both sit well above the singular sparse-op time (network floor).
    singular = sum(stacks[SINGULAR].values())
    assert nsbp8 > 2 * singular

"""Ablation: network propagation delay vs distributed-inference overhead.

Section VI-B2 concludes that "constant overheads eventually dominate" --
the network link is the irreducible cost of distribution.  This ablation
sweeps the fabric's propagation delay and shows the P50 latency overhead
of the 8-shard load-balanced configuration tracks it almost linearly,
while the singular configuration is untouched.
"""

import numpy as np

from repro.analysis import format_table, save_artifact
from repro.core.types import US
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.experiments.runner import run_configuration
from repro.requests import RequestGenerator
from repro.serving import ServingConfig
from repro.simulation.network import FabricSpec
from repro.sharding import singular_plan

PROPAGATION_US = (5.0, 15.0, 45.0, 135.0)


def sweep(suites):
    model = suites.models["DRM1"]
    requests = RequestGenerator(model, seed=3).generate_many(60)
    plan = build_plan(
        model, ShardingConfiguration("load-bal", 8), suites.pooling("DRM1")
    )
    rows = []
    for prop_us in PROPAGATION_US:
        spec = FabricSpec(propagation=prop_us * US)
        serving = ServingConfig(seed=1, fabric_spec=spec)
        base = run_configuration(model, singular_plan(model), requests, serving)
        dist = run_configuration(model, plan, requests, serving)
        overhead = (
            np.percentile(dist.e2e, 50) - np.percentile(base.e2e, 50)
        ) / np.percentile(base.e2e, 50)
        rows.append((prop_us, float(np.percentile(base.e2e, 50)) * 1e3, overhead))
    return rows


def test_ablation_network_propagation(benchmark, suites):
    rows = benchmark.pedantic(lambda: sweep(suites), rounds=1, iterations=1)
    text = format_table(
        ["propagation (us)", "singular P50 (ms)", "load-bal-8 P50 overhead"],
        [(p, round(b, 3), round(o, 4)) for p, b, o in rows],
        title="Ablation: fabric propagation vs distributed overhead",
    )
    print("\n" + text)
    save_artifact("ablation_network_propagation.txt", text)

    overheads = [o for _, _, o in rows]
    baselines = [b for _, b, _ in rows]
    # Overhead grows monotonically with propagation delay...
    assert all(a < b for a, b in zip(overheads, overheads[1:]))
    # ...while the singular baseline does not move (it never touches the
    # fabric).
    assert max(baselines) - min(baselines) < 1e-9
    # Each extra hop of propagation is paid at least twice per batch
    # (two sequential nets, round trip each).
    spread = overheads[-1] - overheads[0]
    assert spread > 0.2

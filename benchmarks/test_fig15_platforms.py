"""Figure 15: DRM1 per-shard operator latencies by server platform.

Paper targets: SC-Small (fewer, slower cores, 4x less DRAM, less network
bandwidth) serves sparse shards with per-shard operator latencies nearly
identical to SC-Large -- embedding lookups are DRAM-latency bound, so
sparse shards can run on cheaper platforms ("coarse-grained platform
specialization ... for increased serving- and energy-efficiency").
"""

import pytest

from repro.analysis import save_artifact
from repro.experiments import figures


def test_fig15_platforms(benchmark, suites):
    result_large, result_small = suites.platform_pair()
    artifact = benchmark(lambda: figures.fig15_platforms(result_large, result_small))
    print("\n" + artifact.text)
    save_artifact("fig15_platforms.txt", artifact.text)

    ratio = artifact.data["mean_ratio_small_over_large"]
    # "No significant latency overheads are incurred despite platform
    # differences": within ~10%.
    assert ratio == pytest.approx(1.0, abs=0.1)

    # Every shard individually stays close, not just the mean.
    large = result_large.mean_per_shard_op_time()
    small = result_small.mean_per_shard_op_time()
    for shard in large:
        assert small[shard] / large[shard] == pytest.approx(1.0, abs=0.15), shard

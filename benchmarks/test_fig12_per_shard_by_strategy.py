"""Figure 12: DRM1 per-shard operator latencies by strategy (8 shards).

Paper targets: load-balanced does not substantially change per-shard
operator latencies compared to capacity-balanced (both are tiny next to
E2E); NSBP is the visibly skewed one.
"""

import numpy as np

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.sharding import SINGULAR


def spread(per_shard):
    values = list(per_shard.values())
    return max(values) / max(min(values), 1e-12)


def test_fig12_per_shard_by_strategy(benchmark, suites):
    results = suites.serial("DRM1")
    artifact = benchmark(lambda: figures.fig12_per_shard_by_strategy(results))
    print("\n" + artifact.text)
    save_artifact("fig12_per_shard_by_strategy.txt", artifact.text)

    per_shard = artifact.data["per_shard"]
    load_spread = spread(per_shard["load-bal 8 shards"])
    cap_spread = spread(per_shard["cap-bal 8 shards"])
    nsbp_spread = spread(per_shard["NSBP 8 shards"])
    print(
        f"per-shard op latency spread: load-bal {load_spread:.2f}x, "
        f"cap-bal {cap_spread:.2f}x, NSBP {nsbp_spread:.2f}x"
    )
    # Load-balanced evens out operator load; NSBP is far more skewed.
    assert load_spread < cap_spread * 1.2  # load-bal no worse than cap-bal
    assert nsbp_spread > 3 * load_spread

    # Per-shard operator latencies are insignificant versus E2E
    # (Section VI-D2): even the largest is a small fraction of median E2E.
    e2e_p50 = np.percentile(results["load-bal 8 shards"].e2e, 50)
    assert artifact.data["peak"] < 0.25 * e2e_p50

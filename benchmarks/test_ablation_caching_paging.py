"""Ablation: trace-driven caching and the paging-from-disk alternative.

Section IX points at Bandana-style access-trace analyses ("table placement
and frequency-based caching are valuable directions"), and Sections I/X
name SSD paging as the other way to serve over-DRAM models.  This ablation
(1) builds the cache-hit curves for DRM1's hottest table, and (2) compares
paging's expected SSD stall per request against the measured embedded-
portion cost of distributed inference.
"""

import numpy as np

from repro.analysis import format_table, save_artifact
from repro.analysis.caching import cache_curve
from repro.requests import RequestGenerator
from repro.requests.access_trace import collect_access_trace
from repro.serving.paging import assess_paging, paging_vs_distributed_stall
from repro.sharding import SINGULAR
from repro.tracing import EMBEDDED_PORTION


def build_artifacts(suites):
    model = suites.models["DRM1"]
    requests = RequestGenerator(model, seed=3).generate_many(150)
    trace = collect_access_trace(model, requests, seed=7)
    hot_table = max(trace.accesses, key=lambda name: len(trace.accesses[name]))
    curve = cache_curve(trace, hot_table)

    # Distributed embedded-portion cost (8-shard load-bal vs singular).
    results = suites.serial("DRM1")
    singular_emb = np.mean(
        [a.latency_stack[EMBEDDED_PORTION] for a in results[SINGULAR].attributions]
    )
    distributed_emb = np.mean(
        [
            a.latency_stack[EMBEDDED_PORTION]
            for a in results["load-bal 8 shards"].attributions
        ]
    )
    added = distributed_emb - singular_emb

    paging_rows = []
    for coverage in (0.05, 0.10, 0.25, 0.50):
        assessment = assess_paging(model, trace, coverage)
        paging_rows.append(
            (
                coverage,
                round(assessment.hit_rate, 3),
                round(assessment.expected_stall_per_request * 1e6, 1),
                round(paging_vs_distributed_stall(assessment, added), 1),
            )
        )
    return curve, paging_rows, added, hot_table


def test_ablation_caching_and_paging(benchmark, suites):
    curve, paging_rows, added, hot_table = benchmark.pedantic(
        lambda: build_artifacts(suites), rounds=1, iterations=1
    )
    curve_text = format_table(
        ["policy", "cache fraction (of working set)", "hit rate"],
        [(p.policy, p.cache_fraction, round(p.hit_rate, 3)) for p in curve],
        title=f"Cache-hit curves for {hot_table} (DRM1's hottest table)",
    )
    paging_text = format_table(
        ["resident coverage", "hit rate", "SSD stall/request (us)",
         "stall vs distributed-added (x)"],
        paging_rows,
        title=f"Paging vs distributed (distributed adds {added * 1e6:.0f} us embedded)",
    )
    print("\n" + curve_text + "\n\n" + paging_text)
    save_artifact("ablation_caching_paging.txt", curve_text + "\n\n" + paging_text)

    # Frequency (offline-optimal) dominates LRU at every size.
    by_policy = {}
    for point in curve:
        by_policy.setdefault(point.policy, {})[point.cache_fraction] = point.hit_rate
    for fraction, freq_rate in by_policy["frequency"].items():
        assert freq_rate >= by_policy["lru"][fraction] - 0.02

    # Hit rates grow monotonically with cache size.
    rates = [rate for _, rate in sorted(by_policy["frequency"].items())]
    assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))

    # Paging's expected stall exceeds the distributed embedded overhead by
    # an order of magnitude until coverage is high: distribution is the
    # latency-safer path for over-DRAM models (the paper's §I position).
    stall_ratio_low_coverage = paging_rows[0][3]
    assert stall_ratio_low_coverage > 5.0

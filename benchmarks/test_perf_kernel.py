"""DES kernel microbenchmark: raw event-loop ops/sec per kernel.

Times the event loop itself, stripped of serving-layer work, on the
three event classes that dominate sweeps:

* **timer hops** -- chained plain-delay yields: one heap push + pop +
  generator resume per op on both kernels (the irreducible cost floor);
* **cascade** -- process kick-offs, ``succeed()`` and ``AllOf`` joins,
  i.e. delay-0 traffic: heap churn on the reference kernel, O(1) deque
  appends/pops on the batched kernel;
* **resource churn** -- acquire/release hand-offs on a contended
  resource: deferred grant events on the reference kernel, synchronous
  grants (``SyncResource``) on the batched kernel.

:func:`measure_kernel_ops` is imported by ``test_perf_throughput.py`` to
embed a ``kernel_ops`` entry in ``results/BENCH_throughput.json``; the
test here also records a standalone ``results/BENCH_kernel_ops.json``
so the microbenchmark has its own artifact trajectory.  The per-kernel
ops/sec double as a machine-speed proxy: CI's perf-regression guard
normalizes the committed sweep baseline by the reference kernel's
measured ops/sec before comparing, so a slow runner is not mistaken for
a regression.
"""

from __future__ import annotations

import time

from repro.analysis.bench import record_benchmark
from repro.simulation.engine import KERNELS, make_engine

#: Event-loop operations per workload per measurement pass.  Small enough
#: to stay sub-second per kernel on CI, large enough to dwarf timer
#: resolution.
KERNEL_OPS = 30_000

#: Best-of-N passes per workload (scheduler-noise resilience).
KERNEL_REPEATS = 3


def _timer_hops(engine, ops: int) -> None:
    def chain():
        for _ in range(ops):
            yield 1e-6

    engine.process(chain())
    engine.run()


def _cascade(engine, ops: int) -> None:
    # Each iteration: one child kick-off + completion + AllOf join --
    # pure delay-0 traffic.
    def child():
        return
        yield  # pragma: no cover - makes this a generator

    def parent(n):
        for _ in range(n):
            yield engine.all_of([engine.process(child())])

    engine.process(parent(ops // 3))
    engine.run()


def _resource_churn(engine, ops: int) -> None:
    resource = engine.resource(1)

    def worker(n):
        for _ in range(n):
            yield resource.acquire()
            yield 1e-6
            resource.release()

    # two workers contending on capacity 1: every release is a hand-off
    engine.process(worker(ops // 4))
    engine.process(worker(ops // 4))
    engine.run()


WORKLOADS = (
    ("timer_hops", _timer_hops),
    ("cascade", _cascade),
    ("resource_churn", _resource_churn),
)


def measure_kernel_ops(
    ops: int = KERNEL_OPS, repeats: int = KERNEL_REPEATS
) -> dict[str, dict[str, float]]:
    """Ops/sec per kernel per workload, plus a combined ``ops_per_s``.

    The combined number is total ops over total best-pass wall time --
    the single scalar the perf-regression guard uses as its
    machine-speed proxy.
    """
    results: dict[str, dict[str, float]] = {}
    for kernel in KERNELS:
        entry: dict[str, float] = {}
        total_s = 0.0
        for name, workload in WORKLOADS:
            best = float("inf")
            for _ in range(repeats):
                engine = make_engine(kernel)
                start = time.perf_counter()
                workload(engine, ops)
                best = min(best, time.perf_counter() - start)
            entry[f"{name}_per_s"] = ops / best
            total_s += best
        entry["ops_per_s"] = len(WORKLOADS) * ops / total_s
        results[kernel] = entry
    return results


def test_perf_kernel_ops():
    measured = measure_kernel_ops()
    path = record_benchmark(
        "kernel_ops",
        {"ops": KERNEL_OPS, "kernels": measured},
    )
    reference = measured["reference"]
    batched = measured["batched"]
    print(
        "\n[bench] kernel ops/s -- reference "
        f"{reference['ops_per_s']:.0f} (hops {reference['timer_hops_per_s']:.0f}, "
        f"cascade {reference['cascade_per_s']:.0f}, "
        f"churn {reference['resource_churn_per_s']:.0f}), batched "
        f"{batched['ops_per_s']:.0f} (hops {batched['timer_hops_per_s']:.0f}, "
        f"cascade {batched['cascade_per_s']:.0f}, "
        f"churn {batched['resource_churn_per_s']:.0f}) -> {path}"
    )
    for kernel, entry in measured.items():
        for name, value in entry.items():
            assert value > 0, (kernel, name)
    # The batched kernel exists to win exactly these two workloads; the
    # timer-hop floor is shared.  Advisory margin (shared CI runners are
    # noisy); the JSON artifact is the regression signal.
    assert batched["cascade_per_s"] > 0.8 * reference["cascade_per_s"]
    assert batched["resource_churn_per_s"] > 0.8 * reference["resource_churn_per_s"]

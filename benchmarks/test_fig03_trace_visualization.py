"""Figure 3: example distributed trace (cross-layer timeline).

Regenerates the paper's example trace: the main shard executes dense
layers, issues asynchronous RPC ops whose windows overlap the sparse
shards' serde + service + SLS work, then joins before the interaction
layers.  Asserts the structural properties the paper reads off the trace.
"""

from repro.analysis import save_artifact
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.requests import RequestGenerator
from repro.serving import ClusterSimulation, ServingConfig
from repro.tracing import Layer, MAIN_SHARD, render_trace


def trace_one_request(suites):
    model = suites.models["DRM1"]
    request = RequestGenerator(model, seed=3).generate(0)
    plan = build_plan(
        model, ShardingConfiguration("load-bal", 4), suites.pooling("DRM1")
    )
    sim = ClusterSimulation(model, plan, ServingConfig(seed=1))
    sim.run_serial([request])
    return sim.tracer.for_request(0)


def test_fig03_trace_visualization(benchmark, suites):
    spans = trace_one_request(suites)
    text = benchmark(lambda: render_trace(spans, width=96))
    print("\n" + text)
    save_artifact("fig03_example_trace.txt", text)

    # All inference flows through the main shard; sparse shards only see
    # their RPC windows.
    assert "main request" in text and "sparse shard 1" in text

    # The async RPC windows overlap the sparse shards' service time: every
    # shard-side service span falls inside some outstanding-RPC client span.
    clients = [s for s in spans if s.layer is Layer.RPC_CLIENT]
    shard_services = [
        s for s in spans if s.layer is Layer.SERVICE and s.shard != MAIN_SHARD
    ]
    assert clients and shard_services
    for service in shard_services:
        client = next(c for c in clients if c.rpc_id == service.rpc_id)
        assert client.duration > service.duration  # network on both sides

    # Sparse shards are queried asynchronously, in parallel: their service
    # windows overlap each other within a batch.
    starts = sorted((s.start, s.end) for s in shard_services)
    overlapping = sum(
        1 for (s1, e1), (s2, _) in zip(starts, starts[1:]) if s2 < e1
    )
    assert overlapping > 0

"""Figure 16: DRM1 overheads at 25 QPS open-loop replay.

Paper targets: on right-sized serving instances at production request
rates, "P99 latencies improve over singular for every sharding strategy,
including 1-shard" -- asynchronous RPC waits release worker threads, so
distributed configurations interleave batches where singular head-of-line
blocks.  All overheads are lower than their serial counterparts.
"""

from repro.analysis import save_artifact
from repro.experiments import figures


def test_fig16_qps(benchmark, suites):
    results = suites.qps("DRM1")
    artifact = benchmark(lambda: figures.fig16_qps_overheads(results))
    print("\n" + artifact.text)
    save_artifact("fig16_qps_overheads.txt", artifact.text)

    data = artifact.data
    # P99 improves over singular for EVERY strategy, including 1-shard.
    for label, per_quantile in data.items():
        assert per_quantile[99]["latency"] < 0, label

    # The 8-shard balanced configurations improve P50 as well.
    for label in ("load-bal 8 shards", "cap-bal 8 shards"):
        assert data[label][50]["latency"] < 0.05, label

    # Every overhead at 25 QPS is lower than the same config sent serially.
    serial = figures.fig6_overheads(suites.serial("DRM1"), "DRM1").data
    for label, per_quantile in data.items():
        for q in (50, 90, 99):
            assert (
                per_quantile[q]["latency"] <= serial[label][q]["latency"] + 0.02
            ), (label, q)

"""Figure 7: DRM3 latency & compute overheads (NSBP only).

Paper targets: DRM3's capacity is dominated by a single-lookup table, so
"increasing shards does not increase parallelization" -- overheads are
flat in shard count, and only two shards are accessed per inference.
"""

import numpy as np

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.sharding import SINGULAR


def test_fig07_overheads_drm3(benchmark, suites):
    results = suites.serial("DRM3")
    artifact = benchmark(lambda: figures.fig7_overheads_drm3(results))
    print("\n" + artifact.text)
    save_artifact("fig07_overheads_drm3.txt", artifact.text)

    data = artifact.data
    # Distributed slower than singular everywhere (serial replay).
    for label, per_quantile in data.items():
        assert per_quantile[50]["latency"] > 0, label

    # Sharding has no practical effect: NSBP-4 ~ NSBP-8 ~ 1 shard at P50.
    p50 = [per_quantile[50]["latency"] for per_quantile in data.values()]
    assert max(p50) - min(p50) < 0.06

    # Exactly two shards are accessed per inference (batch) regardless of
    # shard count: the small-tables shard plus one partition of the
    # dominant table.
    for label in ("NSBP 4 shards", "NSBP 8 shards"):
        result = results[label]
        for attribution in result.attributions:
            assert attribution.rpcs == 2 * attribution.num_batches, label

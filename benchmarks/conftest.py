"""Shared simulation cache for the benchmark suite.

Every ``test_fig*`` / ``test_table*`` benchmark regenerates one paper
artifact.  The underlying simulations are shared: a session-scoped cache
runs each (model, serving-variant) suite exactly once, and the benchmarks
time the figure *generation* step while asserting the paper's qualitative
shapes on the data.

Request count per configuration comes from ``REPRO_REQUESTS`` (default
150 here; raise it for tighter quantiles -- the simulation fast path
keeps even 500+ cheap, see ``test_perf_throughput.py`` and
``results/BENCH_throughput.json``).

Pooling-factor estimates are additionally memoized globally in
:mod:`repro.sharding.pooling`, so the suite runner and every serving
variant here share one estimate per (model, sample size, seed).
"""

from __future__ import annotations

import os

import pytest

from repro.compression import compress_model
from repro.experiments import SuiteSettings, run_configuration, run_suite, suite_requests
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.models import drm1, drm2, drm3
from repro.requests import ReplaySchedule
from repro.serving import ServingConfig
from repro.sharding import estimate_pooling_factors
from repro.simulation.platform import SC_SMALL

BENCH_REQUESTS = int(os.environ.get("REPRO_REQUESTS", 150))

#: Instance sizing for the 25 QPS experiment (Section VII-A): a
#: right-sized web-tier worker budget, versus the over-provisioned
#: characterization servers used for serial replay (Section V-B).
QPS_WORKERS = 2
QPS_RATE = 25.0


def _settings(**overrides) -> SuiteSettings:
    base = dict(num_requests=BENCH_REQUESTS, serving=ServingConfig(seed=1))
    base.update(overrides)
    return SuiteSettings(**base)


class SuiteCache:
    """Lazily runs and memoizes experiment suites."""

    def __init__(self):
        self._cache = {}
        self.models = {"DRM1": drm1(), "DRM2": drm2(), "DRM3": drm3()}

    def _memo(self, key, builder):
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    def serial(self, model_name: str):
        """The paper's serial-replay configuration matrix for a model."""
        model = self.models[model_name]
        return self._memo(("serial", model_name), lambda: run_suite(model, _settings()))

    def single_batch(self, model_name: str):
        """One-batch-per-request replay (Figures 13/14)."""
        model = self.models[model_name]
        serving = ServingConfig(seed=1).with_batch_size(10**9)
        return self._memo(
            ("single-batch", model_name),
            lambda: run_suite(model, _settings(serving=serving)),
        )

    def qps(self, model_name: str):
        """Open-loop replay at 25 QPS on right-sized instances (Fig. 16)."""
        model = self.models[model_name]
        settings = _settings(
            serving=ServingConfig(seed=1, service_workers=QPS_WORKERS),
            schedule=ReplaySchedule.open_loop(QPS_RATE, seed=2),
        )
        return self._memo(("qps", model_name), lambda: run_suite(model, settings))

    def pooling(self, model_name: str):
        # estimate_pooling_factors memoizes globally; no local memo needed.
        return estimate_pooling_factors(
            self.models[model_name], num_requests=1000, seed=42
        )

    def platform_pair(self):
        """DRM1 load-bal 8 shards on SC-Large vs SC-Small sparse servers."""

        def build():
            model = self.models["DRM1"]
            settings = _settings()
            requests = suite_requests(model, settings)
            plan = build_plan(
                model, ShardingConfiguration("load-bal", 8), self.pooling("DRM1")
            )
            large = run_configuration(model, plan, requests, ServingConfig(seed=1))
            small = run_configuration(
                model, plan, requests,
                ServingConfig(seed=1, sparse_platform=SC_SMALL),
            )
            return large, small

        return self._memo(("platforms",), build)

    def compression_pair(self):
        """DRM1 singular runs: uncompressed vs quantized+pruned."""

        def build():
            model = self.models["DRM1"]
            compressed, report = compress_model(model)
            settings = _settings()
            requests = suite_requests(model, settings)
            base = run_configuration(
                model, build_plan(model, ShardingConfiguration("singular")),
                requests, ServingConfig(seed=1),
            )
            comp = run_configuration(
                compressed, build_plan(compressed, ShardingConfiguration("singular")),
                requests, ServingConfig(seed=1),
            )
            return base, comp, report

        return self._memo(("compression",), build)


@pytest.fixture(scope="session")
def suites() -> SuiteCache:
    return SuiteCache()


@pytest.fixture(scope="session")
def models(suites):
    return suites.models

"""Ablation: the automatic sharding workflow (paper Section X future work).

Runs the profile-and-select auto-sharder on DRM1 under a sparse-tier DRAM
budget and a P99 SLA, and prints the full candidate evaluation -- the
"automatic sharding methodology [that] requires sufficient profiling
data" the paper argues for.
"""

from repro.analysis import format_table, save_artifact
from repro.core.types import GIB
from repro.serving import ServingConfig
from repro.sharding import AutoShardObjective, auto_shard


def test_ablation_autoshard(benchmark, suites):
    objective = AutoShardObjective(
        shard_dram_budget=55 * GIB,
        max_p99_latency_overhead=0.30,
        shard_counts=(2, 4, 8, 16),
        profile_requests=60,
    )
    outcome = benchmark.pedantic(
        lambda: auto_shard(suites.models["DRM1"], objective, ServingConfig(seed=1)),
        rounds=1,
        iterations=1,
    )
    rows = []
    for evaluation in outcome.evaluations:
        rows.append(
            (
                evaluation.label,
                "yes" if evaluation.feasible_capacity else "no",
                round(evaluation.p99_latency_overhead, 4),
                round(evaluation.cpu_overhead, 4),
                "yes" if evaluation.meets_sla else "no",
            )
        )
    text = format_table(
        ["candidate", "fits DRAM", "P99 latency overhead", "CPU overhead", "meets SLA"],
        rows,
        title=f"Auto-sharding evaluation (chosen: {outcome.chosen.label})",
    )
    print("\n" + text)
    save_artifact("ablation_autoshard.txt", text)

    assert outcome.chosen is not None
    # The DRAM budget rules out 2-shard plans (~97 GiB per shard).
    assert outcome.chosen.num_shards >= 4
    # The selection respects the resource-minimizing heuristic.
    viable = [e for e in outcome.evaluations if e.feasible_capacity and e.meets_sla]
    assert outcome.chosen.num_shards == min(e.plan.num_shards for e in viable)

"""CI perf-regression guard: aggregate-sweep rps vs the committed baseline.

Fails (exit 1) when the freshly measured 11-config DRM1 AGGREGATE sweep
drops more than ``--tolerance`` (default 25%) below the committed
``results/BENCH_throughput_aggregate.json`` baseline, after normalizing
for machine speed.

Raw rps is not comparable across hosts, so the committed baseline is
rescaled by the ratio of the *reference kernel's* event-loop ops/sec
(``kernel_ops.reference.ops_per_s``, measured fresh here vs recorded in
the baseline): a slow CI runner lowers both numbers together and the
guard stays quiet, while a genuine fast-path regression lowers only the
sweep and trips it.  Baselines recorded before the kernel_ops entry
existed skip the normalization (ratio 1.0).

The sweep is re-timed at the *baseline's* request count (not the smoke's
``REPRO_REQUESTS``), because rps depends on how far fixed per-config
costs amortize -- only matching counts are apples to apples.

Usage (CI extracts the committed baseline first, because earlier smoke
steps overwrite the working-tree artifact)::

    git show HEAD:results/BENCH_throughput_aggregate.json > baseline.json
    python benchmarks/check_perf_regression.py --baseline baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def measure_fresh(bench_requests: int) -> dict[str, float]:
    """Time the aggregate DRM1 sweep + reference-kernel ops, warm."""
    from test_perf_kernel import measure_kernel_ops

    from repro.experiments import SuiteSettings, run_suite, suite_requests
    from repro.models import drm1
    from repro.serving import ServingConfig, TraceMode
    from repro.sharding.pooling import estimate_pooling_factors

    model = drm1()
    settings = SuiteSettings(
        num_requests=bench_requests,
        serving=ServingConfig(seed=1),
        trace_mode=TraceMode.AGGREGATE,
    )
    suite_requests(model, settings)
    estimate_pooling_factors(
        model, num_requests=settings.pooling_requests, seed=settings.pooling_seed
    )
    best = float("inf")
    for _ in range(2):  # best-of-2: scheduler-noise resilience
        start = time.perf_counter()
        results = run_suite(model, settings)
        best = min(best, time.perf_counter() - start)
    simulated = sum(len(result) for result in results.values())
    return {
        "serial_rps": simulated / best,
        "reference_ops_per_s": measure_kernel_ops()["reference"]["ops_per_s"],
    }


def evaluate_guard(
    baseline: dict, fresh: dict[str, float], tolerance: float
) -> tuple[bool, str]:
    """Pure comparison: (ok, human-readable verdict)."""
    metrics = baseline["metrics"]
    baseline_rps = metrics["aggregate_sweep"]["serial_rps"]
    baseline_ops = (
        metrics.get("kernel_ops", {}).get("reference", {}).get("ops_per_s")
    )
    if baseline_ops:
        speed_ratio = fresh["reference_ops_per_s"] / baseline_ops
    else:
        speed_ratio = 1.0
    expected = baseline_rps * speed_ratio
    floor = expected * (1.0 - tolerance)
    ok = fresh["serial_rps"] >= floor
    verdict = (
        f"aggregate sweep {fresh['serial_rps']:.0f} rps vs committed "
        f"{baseline_rps:.0f} rps (machine-speed ratio {speed_ratio:.2f} -> "
        f"expected {expected:.0f}, floor {floor:.0f} at "
        f"{tolerance:.0%} tolerance): {'OK' if ok else 'REGRESSION'}"
    )
    return ok, verdict


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True,
        help="path to the committed BENCH_throughput_aggregate.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop below the normalized baseline",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    bench_requests = int(baseline["metrics"]["bench_requests"])
    fresh = measure_fresh(bench_requests)
    ok, verdict = evaluate_guard(baseline, fresh, args.tolerance)
    print(f"[perf-guard] {verdict}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

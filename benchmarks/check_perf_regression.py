"""CI perf-regression guard: per-kernel sweep rps vs the committed baseline.

Fails (exit 1) when any freshly measured 11-config DRM1 sweep drops more
than ``--tolerance`` (default 25%) below the committed
``results/BENCH_throughput_aggregate.json`` baseline, after normalizing
for machine speed.  One guard entry exists per (kernel, trace-mode)
benchmark present in the baseline -- reference/FULL (``sweep``),
reference/AGGREGATE (``aggregate_sweep``), batched/AGGREGATE
(``kernel_sweep``), and vectorized/AGGREGATE (``vectorized_sweep``) --
plus the tail-resilience availability sweep (``resilience_sweep``:
correlated domain crash under a retry/hedge policy), so a regression on
one path cannot hide behind another path's number.  Entries missing
from an older baseline are skipped.

Raw rps is not comparable across hosts, so the committed baseline is
rescaled by the ratio of the *reference kernel's* event-loop ops/sec
(``kernel_ops.reference.ops_per_s``, measured fresh here vs recorded in
the baseline): a slow CI runner lowers both numbers together and the
guard stays quiet, while a genuine fast-path regression lowers only the
sweep and trips it.  Baselines recorded before the kernel_ops entry
existed skip the normalization (ratio 1.0).

Each sweep is re-timed at the *baseline's* request count (not the
smoke's ``REPRO_REQUESTS``), because rps depends on how far fixed
per-config costs amortize -- only matching counts are apples to apples.
The ``vectorized_sweep`` guard times the sweep phase the way the
benchmark does (requests, pooling, and plans precomputed; warm builder
caches) and compares against the baseline's ``sweep_rps``.

Usage (CI extracts the committed baseline first, because earlier smoke
steps overwrite the working-tree artifact)::

    git show HEAD:results/BENCH_throughput_aggregate.json > baseline.json
    python benchmarks/check_perf_regression.py --baseline baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: (baseline metrics key, rps field inside it) -> how to measure fresh.
#: Order matters only for output readability.
GUARD_ENTRIES = (
    ("sweep", "serial_rps"),
    ("aggregate_sweep", "serial_rps"),
    ("kernel_sweep", "serial_rps"),
    ("vectorized_sweep", "sweep_rps"),
    ("resilience_sweep", "rps"),
)


def _best_of(fn, repeats: int = 2) -> float:
    """Best-of-N wall time: resilient to scheduler noise on shared CI."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_fresh(
    bench_requests: int, entries: list[str]
) -> dict[str, float]:
    """Time each guarded DRM1 sweep fresh (warm), plus reference ops."""
    from test_perf_kernel import measure_kernel_ops

    from repro.experiments import (
        SuiteSettings,
        build_plan,
        paper_configurations,
        run_configuration,
        run_suite,
        suite_requests,
    )
    from repro.models import drm1
    from repro.serving import ServingConfig, TraceMode
    from repro.sharding.pooling import estimate_pooling_factors

    model = drm1()

    def settings(kernel=None, trace_mode=TraceMode.AGGREGATE):
        return SuiteSettings(
            num_requests=bench_requests,
            serving=ServingConfig(seed=1),
            trace_mode=trace_mode,
            kernel=kernel,
        )

    # Warm the shared one-time caches so every timing below is warm.
    suite_requests(model, settings())
    pooling = estimate_pooling_factors(
        model, num_requests=settings().pooling_requests,
        seed=settings().pooling_seed,
    )
    simulated = None
    fresh: dict[str, float] = {}

    def suite_rps(suite_settings) -> float:
        nonlocal simulated
        results = run_suite(model, suite_settings)
        simulated = sum(len(result) for result in results.values())
        return simulated / _best_of(lambda: run_suite(model, suite_settings))

    if "sweep" in entries:
        fresh["sweep"] = suite_rps(settings(trace_mode=TraceMode.FULL))
    if "aggregate_sweep" in entries:
        fresh["aggregate_sweep"] = suite_rps(settings())
    if "kernel_sweep" in entries:
        fresh["kernel_sweep"] = suite_rps(settings(kernel="batched"))
    if "vectorized_sweep" in entries:
        # Sweep-phase protocol, matching the benchmark: requests,
        # pooling, and plans precomputed; first pass warms the columnar
        # builder caches.
        vec_settings = settings(kernel="vectorized")
        requests = suite_requests(model, vec_settings)
        plans = [
            build_plan(model, configuration, pooling)
            for configuration in paper_configurations(model.name)
        ]
        serving = vec_settings.resolved_serving()
        schedule = vec_settings.resolved_schedule()

        def sweep_once():
            for plan in plans:
                run_configuration(model, plan, requests, serving, schedule)

        sweep_once()  # warm
        fresh["vectorized_sweep"] = (
            len(requests) * len(plans) / _best_of(sweep_once)
        )
    if "resilience_sweep" in entries:
        # Tail-resilience protocol, matching the benchmark: a correlated
        # domain crash (2 domains, spread) under a timeout+retry+hedge
        # policy, healthy baseline plus two replica counts.
        from repro.chaos import CorrelatedFailure, availability_sweep
        from repro.experiments import ShardingConfiguration
        from repro.resilience import ResiliencePolicy
        from repro.workloads import PiecewiseRateArrivals, Workload

        workload = Workload(
            "drm1-chaos", model,
            PiecewiseRateArrivals.diurnal(50.0, seed=7), request_seed=3,
        )
        replica_counts = (1, 2)

        def resilience_once():
            availability_sweep(
                workload,
                ShardingConfiguration("load-bal", 4),
                (CorrelatedFailure(domain=0, at=0.1),),
                replica_counts=replica_counts,
                domains=2,
                placement="spread",
                policy=ResiliencePolicy(
                    rpc_timeout=5e-3, max_attempts=3, hedge_quantile=95.0
                ),
                settings=settings(),
            )

        resilience_once()  # warm
        fresh["resilience_sweep"] = (
            bench_requests * (len(replica_counts) + 1)
            / _best_of(resilience_once)
        )
    fresh["reference_ops_per_s"] = (
        measure_kernel_ops()["reference"]["ops_per_s"]
    )
    return fresh


def evaluate_guard(
    baseline: dict, fresh: dict[str, float], tolerance: float
) -> tuple[bool, list[str]]:
    """Pure comparison: (all ok, per-entry human-readable verdicts)."""
    metrics = baseline["metrics"]
    baseline_ops = (
        metrics.get("kernel_ops", {}).get("reference", {}).get("ops_per_s")
    )
    if baseline_ops and fresh.get("reference_ops_per_s"):
        speed_ratio = fresh["reference_ops_per_s"] / baseline_ops
    else:
        speed_ratio = 1.0
    all_ok = True
    verdicts = []
    for entry, field in GUARD_ENTRIES:
        if entry not in metrics or entry not in fresh:
            continue
        baseline_rps = metrics[entry][field]
        expected = baseline_rps * speed_ratio
        floor = expected * (1.0 - tolerance)
        ok = fresh[entry] >= floor
        all_ok = all_ok and ok
        verdicts.append(
            f"{entry} {fresh[entry]:.0f} rps vs committed "
            f"{baseline_rps:.0f} rps (machine-speed ratio {speed_ratio:.2f} "
            f"-> expected {expected:.0f}, floor {floor:.0f} at "
            f"{tolerance:.0%} tolerance): {'OK' if ok else 'REGRESSION'}"
        )
    if not verdicts:
        all_ok = False
        verdicts.append("no guarded entries found in the baseline")
    return all_ok, verdicts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True,
        help="path to the committed BENCH_throughput_aggregate.json",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional drop below the normalized baseline",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    bench_requests = int(baseline["metrics"]["bench_requests"])
    present = [
        entry for entry, _ in GUARD_ENTRIES
        if entry in baseline["metrics"]
    ]
    fresh = measure_fresh(bench_requests, present)
    ok, verdicts = evaluate_guard(baseline, fresh, args.tolerance)
    for verdict in verdicts:
        print(f"[perf-guard] {verdict}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Table II: sharding results for DRM1 (capacity / tables / pooling).

Paper targets (Table II highlights):
* NSBP 2-shard: the net2 shard holds 4.75x the capacity of the net1 shard
  yet is estimated to perform only 6.3% of its pooling work;
* capacity-balanced: equal capacity per shard, pooling imbalance up to
  ~3.7x at 8 shards;
* load-balanced: equal pooling per shard, capacity varies up to ~50%.
"""

import pytest

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.experiments.configs import build_plan, paper_configurations
from repro.sharding import SINGULAR


def test_table2_sharding_results(benchmark, suites, models):
    model = models["DRM1"]
    pooling = suites.pooling("DRM1")
    plans = {
        config.label: build_plan(model, config, pooling)
        for config in paper_configurations("DRM1")
        if config.strategy != SINGULAR
    }
    artifact = benchmark(lambda: figures.table2_sharding_results(model, plans, pooling))
    print("\n" + artifact.text)
    save_artifact("table2_sharding_results.txt", artifact.text)

    data = artifact.data
    # 1-shard: everything on one shard, full capacity, all 257 tables.
    one = data["1 shard"]
    assert one["tables"] == [257]
    assert one["capacity_gib"][0] == pytest.approx(194.05, rel=0.02)

    # Capacity-balanced: equal bytes; pooling skewed (paper: up to 371%).
    cap8 = data["cap-bal 8 shards"]
    assert max(cap8["capacity_gib"]) / min(cap8["capacity_gib"]) < 1.15
    assert max(cap8["pooling"]) / min(cap8["pooling"]) > 1.5

    # Load-balanced: equal pooling; capacity varies (paper: up to ~50%).
    load8 = data["load-bal 8 shards"]
    assert max(load8["pooling"]) / min(load8["pooling"]) < 1.1
    assert max(load8["capacity_gib"]) / min(load8["capacity_gib"]) > 1.1

    # NSBP 2-shard capacity and pooling skews.
    nsbp2 = data["NSBP 2 shards"]
    cap_ratio = max(nsbp2["capacity_gib"]) / min(nsbp2["capacity_gib"])
    pool_ratio = min(nsbp2["pooling"]) / max(nsbp2["pooling"])
    print(f"paper NSBP-2: capacity ratio 4.75x, pooling 6.3% -> "
          f"measured {cap_ratio:.2f}x, {100 * pool_ratio:.1f}%")
    assert cap_ratio == pytest.approx(4.75, rel=0.06)
    assert pool_ratio == pytest.approx(0.063, rel=0.35)

    # Estimated pooling totals land at Table II's magnitude (~139k over
    # 1000 sampled requests).
    total_pooling = sum(data["1 shard"]["pooling"])
    assert total_pooling == pytest.approx(138943, rel=0.1)

"""Figure 4: operator compute attribution for DRM1/DRM2/DRM3 (singular).

Paper targets: sparse operators contribute 9.7% / 9.6% / 3.1% of operator
time for DRM1 / DRM2 / DRM3; DRM1/DRM2 carry heavier tensor-transform
costs than DRM3.
"""

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.sharding import SINGULAR

PAPER_SPARSE_SHARE = {"DRM1": 0.097, "DRM2": 0.096, "DRM3": 0.031}


def test_fig04_operator_attribution(benchmark, suites, models):
    singular_results = {
        name: suites.serial(name)[SINGULAR] for name in ("DRM1", "DRM2", "DRM3")
    }
    artifact = benchmark(
        lambda: figures.fig4_operator_attribution(singular_results, models)
    )
    print("\n" + artifact.text)
    for name, share in PAPER_SPARSE_SHARE.items():
        measured = artifact.data["shares"][name]["Sparse"]
        print(f"paper {name} sparse share {share:.3f} -> measured {measured:.3f}")
    save_artifact("fig04_operator_attribution.txt", artifact.text)

    shares = artifact.data["shares"]
    # Sparse share: small everywhere, DRM3 clearly the sparsest-compute model.
    for name, paper_value in PAPER_SPARSE_SHARE.items():
        measured = shares[name]["Sparse"]
        assert 0.5 * paper_value < measured < 3.0 * paper_value, name
    assert shares["DRM3"]["Sparse"] < shares["DRM1"]["Sparse"]
    assert shares["DRM3"]["Sparse"] < shares["DRM2"]["Sparse"]
    # DRM1/DRM2 have a more transform-heavy mix than DRM3 (Fig. 4 shape).
    for name in ("DRM1", "DRM2"):
        assert (
            shares[name]["Memory Transformations"]
            > shares["DRM3"]["Memory Transformations"]
        )

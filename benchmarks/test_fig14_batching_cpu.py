"""Figure 14: CPU-time stacks for default- vs single-batch replay.

Paper targets: each additional batch issues its own RPC ops, so compute
overhead is multiplicative in batch count -- single-batch replay shrinks
the distributed compute overhead dramatically, and NSBP's overhead grows
slower than load-balanced as shards are added.
"""

from repro.analysis import save_artifact
from repro.experiments import figures


def test_fig14_batching_cpu(benchmark, suites):
    default_results = {"DRM1": suites.serial("DRM1"), "DRM2": suites.serial("DRM2")}
    single_results = {
        "DRM1": suites.single_batch("DRM1"),
        "DRM2": suites.single_batch("DRM2"),
    }
    artifact = benchmark(
        lambda: figures.fig14_batching_cpu(default_results, single_results)
    )
    print("\n" + artifact.text)
    save_artifact("fig14_batching_cpu.txt", artifact.text)

    overheads = artifact.data["p50_overheads"]
    # Single batch -> far lower compute overhead for every DRM1 config.
    for label, default_value in overheads["DRM1/default"].items():
        single_value = overheads["DRM1/single-batch"][label]
        assert single_value < default_value, label

    # NSBP compute overhead grows slower with shards than load-balanced
    # under default batching (one RPC per shard vs one per net per shard).
    default_drm1 = overheads["DRM1/default"]
    load_growth = default_drm1["load-bal 8 shards"] - default_drm1["load-bal 2 shards"]
    nsbp_growth = default_drm1["NSBP 8 shards"] - default_drm1["NSBP 2 shards"]
    assert nsbp_growth < load_growth

    # With one batch per request the marginal increase from sharding is
    # less severe (Section VI-F2).
    single_drm1 = overheads["DRM1/single-batch"]
    single_growth = single_drm1["load-bal 8 shards"] - single_drm1["load-bal 2 shards"]
    assert single_growth < load_growth

"""Figure 6: DRM1/DRM2 latency & compute overheads vs singular (serial).

Paper targets (Section VI):
* every distributed configuration is slower than singular at P50 (serial
  blocking requests always lose);
* increasing shards reduces the latency overhead (load-bal/cap-bal);
* the 2-shard NSBP configuration is (near-)worst at P99 -- it acts like a
  bounding 1-shard configuration for the hot net;
* compute overhead grows with shard count; NSBP incurs the least compute;
* P99 latency overheads are more favorable than P50 for the balanced
  strategies.
"""

import numpy as np

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.sharding import SINGULAR


def check_model(results, model_name):
    artifact = figures.fig6_overheads(results, model_name)
    data = artifact.data

    # All configurations slower than singular at P50.
    for label, per_quantile in data.items():
        assert per_quantile[50]["latency"] > 0, (model_name, label)

    # More shards -> lower latency overhead, higher compute overhead.
    for strategy in ("load-bal", "cap-bal"):
        lat = {n: data[f"{strategy} {n} shards"][50]["latency"] for n in (2, 4, 8)}
        cpu = {n: data[f"{strategy} {n} shards"][50]["compute"] for n in (2, 4, 8)}
        assert lat[8] < lat[2], (model_name, strategy)
        assert cpu[2] < cpu[4] < cpu[8], (model_name, strategy)

    # NSBP: least compute overhead at matching shard counts.
    for n in (4, 8):
        assert (
            data[f"NSBP {n} shards"][50]["compute"]
            < data[f"load-bal {n} shards"][50]["compute"]
        )

    # NSBP-2 is worst or near-worst at P99 (within 10% of the maximum).
    p99 = {label: q[99]["latency"] for label, q in data.items()}
    assert p99["NSBP 2 shards"] >= 0.9 * max(p99.values())

    # P99 overhead <= P50 overhead for the balanced 8-shard configs.
    for label in ("load-bal 8 shards", "cap-bal 8 shards"):
        assert data[label][99]["latency"] <= data[label][50]["latency"] + 0.02

    return artifact


def test_fig06_overheads_drm1(benchmark, suites):
    results = suites.serial("DRM1")
    artifact = benchmark(lambda: figures.fig6_overheads(results, "DRM1"))
    check_model(results, "DRM1")
    print("\n" + artifact.text)
    print(
        "paper DRM1: load-bal-2 P99 +7.3%, load-bal-8 P99 +1%, P50 +11% -> measured "
        f"{artifact.data['load-bal 2 shards'][99]['latency']:+.3f}, "
        f"{artifact.data['load-bal 8 shards'][99]['latency']:+.3f}, "
        f"{artifact.data['load-bal 8 shards'][50]['latency']:+.3f}"
    )
    save_artifact("fig06_overheads_drm1.txt", artifact.text)


def test_fig06_overheads_drm2(benchmark, suites):
    results = suites.serial("DRM2")
    artifact = benchmark(lambda: figures.fig6_overheads(results, "DRM2"))
    check_model(results, "DRM2")
    print("\n" + artifact.text)
    save_artifact("fig06_overheads_drm2.txt", artifact.text)

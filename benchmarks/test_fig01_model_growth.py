"""Figure 1: recommendation-model growth (features & capacity, ~10x/3y)."""

from repro.analysis import save_artifact
from repro.experiments import figures


def test_fig01_model_growth(benchmark):
    artifact = benchmark(figures.fig1_model_growth)
    print("\n" + artifact.text)
    save_artifact("fig01_model_growth.txt", artifact.text)

    # Paper: "Both number of features and embeddings have grown an order
    # of magnitude in only three years."
    assert artifact.data["features_x"] >= 9.0
    assert artifact.data["capacity_x"] >= 9.0
    points = artifact.data["points"]
    assert points[-1].years_since_start == 3.0

"""Figure 13: latency stacks for default- vs single-batch replay.

Paper targets: with one batch per request, the sparse operators carry the
whole request's work, so distributed inference benefits much more from
parallelization -- the 8-shard balanced configurations approach (in the
paper, cross) the singular latency, and DRM1 (larger requests, more
batches by default) is affected more strongly than DRM2.
"""

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.sharding import SINGULAR


def test_fig13_batching_latency(benchmark, suites):
    default_results = {"DRM1": suites.serial("DRM1"), "DRM2": suites.serial("DRM2")}
    single_results = {
        "DRM1": suites.single_batch("DRM1"),
        "DRM2": suites.single_batch("DRM2"),
    }
    artifact = benchmark(
        lambda: figures.fig13_batching_latency(default_results, single_results)
    )
    print("\n" + artifact.text)
    save_artifact("fig13_batching_latency.txt", artifact.text)

    overheads = artifact.data["p50_overheads"]
    for label in ("load-bal 8 shards", "cap-bal 8 shards"):
        # Single-batch shrinks the distributed latency overhead...
        assert (
            overheads["DRM1/single-batch"][label]
            < 0.85 * overheads["DRM1/default"][label]
        ), label
        # ...to a near-crossover level (paper: crosses below singular; our
        # Table-II-calibrated pooling stops just short -- see the pooling
        # ablation for the crossover).
        assert overheads["DRM1/single-batch"][label] < 0.15, label

    # "DRM1's larger requests result in more batches compared to DRM2":
    # the mechanism behind DRM1's stronger batching interaction.
    import numpy as np

    drm1_batches = np.mean(
        [a.num_batches for a in default_results["DRM1"][SINGULAR].attributions]
    )
    drm2_batches = np.mean(
        [a.num_batches for a in default_results["DRM2"][SINGULAR].attributions]
    )
    print(f"mean batches/request: DRM1 {drm1_batches:.2f}, DRM2 {drm2_batches:.2f}")
    assert drm1_batches > 1.3 * drm2_batches

"""Ablation: shard counts beyond the paper's 8.

The paper's trade-off -- more shards manage latency but multiply compute
-- implies diminishing latency returns once the constant network floor
dominates (Section VI-B2), while compute overhead keeps growing with the
RPC fan-out.  This ablation extends the load-balanced sweep to 24 shards.
"""

import numpy as np

from repro.analysis import format_table, save_artifact
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.experiments.runner import run_configuration
from repro.requests import RequestGenerator
from repro.serving import ServingConfig
from repro.sharding import singular_plan

SHARD_COUNTS = (2, 4, 8, 16, 24)


def sweep(suites):
    model = suites.models["DRM1"]
    requests = RequestGenerator(model, seed=3).generate_many(60)
    serving = ServingConfig(seed=1)
    base = run_configuration(model, singular_plan(model), requests, serving)
    base_e2e = np.percentile(base.e2e, 50)
    base_cpu = np.percentile(base.cpu, 50)
    rows = []
    for count in SHARD_COUNTS:
        plan = build_plan(
            model, ShardingConfiguration("load-bal", count), suites.pooling("DRM1")
        )
        dist = run_configuration(model, plan, requests, serving)
        rows.append(
            (
                count,
                float((np.percentile(dist.e2e, 50) - base_e2e) / base_e2e),
                float((np.percentile(dist.cpu, 50) - base_cpu) / base_cpu),
            )
        )
    return rows


def test_ablation_shard_scaling(benchmark, suites):
    rows = benchmark.pedantic(lambda: sweep(suites), rounds=1, iterations=1)
    text = format_table(
        ["shards", "P50 latency overhead", "P50 compute overhead"],
        [(c, round(l, 4), round(k, 4)) for c, l, k in rows],
        title="Ablation: load-balanced shard-count scaling (DRM1)",
    )
    print("\n" + text)
    save_artifact("ablation_shard_scaling.txt", text)

    latency = {c: l for c, l, _ in rows}
    compute = {c: k for c, _, k in rows}

    # Latency improvements flatten: the 8->24 gain is much smaller than
    # the 2->8 gain (network floor).
    gain_2_to_8 = latency[2] - latency[8]
    gain_8_to_24 = latency[8] - latency[24]
    assert gain_2_to_8 > 0
    assert gain_8_to_24 < 0.6 * gain_2_to_8

    # Compute overhead keeps growing, roughly linearly in the fan-out.
    values = [compute[c] for c in SHARD_COUNTS]
    assert all(a < b for a, b in zip(values, values[1:]))
    assert compute[24] > 2.0 * compute[8] * 0.8  # no saturation in sight

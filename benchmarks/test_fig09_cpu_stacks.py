"""Figure 9: P50 aggregate CPU-time stacks by sharding configuration.

Paper targets: distributed inference always increases aggregate CPU (the
extra RPC machinery); compute overhead is proportional to the number of
RPC ops issued, so NSBP -- which never mixes nets within a shard and
issues one RPC per shard -- has the least overhead, and serde + service
overheads (not operators) account for the growth.
"""

import numpy as np

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.sharding import SINGULAR
from repro.tracing import CPU_OPS, CPU_SERVICE, RPC_SERDE


def test_fig09_cpu_stacks(benchmark, suites):
    results = suites.serial("DRM1")
    artifact = benchmark(lambda: figures.fig9_cpu_stacks(results))
    print("\n" + artifact.text)
    save_artifact("fig09_cpu_stacks.txt", artifact.text)

    stacks = artifact.data["stacks"]
    totals = {label: sum(stack.values()) for label, stack in stacks.items()}

    # Every distributed config consumes more CPU than singular.
    for label, total in totals.items():
        if label != SINGULAR:
            assert total > totals[SINGULAR], label

    # CPU grows with shard count for net-agnostic strategies.
    for strategy in ("load-bal", "cap-bal"):
        assert (
            totals[f"{strategy} 2 shards"]
            < totals[f"{strategy} 4 shards"]
            < totals[f"{strategy} 8 shards"]
        )

    # NSBP stays cheapest at matching shard counts.
    for n in (2, 4, 8):
        assert totals[f"NSBP {n} shards"] <= totals[f"load-bal {n} shards"]

    # The growth comes from serde + service overhead, not from operators.
    ops_delta = stacks["load-bal 8 shards"][CPU_OPS] - stacks[SINGULAR][CPU_OPS]
    overhead_delta = (
        stacks["load-bal 8 shards"][RPC_SERDE]
        + stacks["load-bal 8 shards"][CPU_SERVICE]
        - stacks[SINGULAR][RPC_SERDE]
        - stacks[SINGULAR][CPU_SERVICE]
    )
    assert overhead_delta > 3 * abs(ops_delta)

    # Compute overhead tracks RPC-op count (Section VI-C1).
    rpc_counts = {
        label: np.mean([a.rpcs for a in result.attributions])
        for label, result in results.items()
        if label != SINGULAR
    }
    overheads = {
        label: totals[label] - totals[SINGULAR] for label in rpc_counts
    }
    ordered = sorted(rpc_counts, key=rpc_counts.get)
    measured = [overheads[label] for label in ordered]
    assert np.corrcoef(
        [rpc_counts[label] for label in ordered], measured
    )[0, 1] > 0.95

"""Simulation fast-path throughput benchmark (``BENCH_throughput.json``).

Times the stages the fast path optimized -- request generation, the DES
sweep in both trace modes, the parallel sweep runner, a co-located
diurnal ``WorkloadMix`` sweep in AGGREGATE mode, and a closed-loop
``CapacityPlanner`` search over that mix -- and records
simulated-requests-per-second into ``results/BENCH_throughput.json`` via
:func:`repro.analysis.bench.record_benchmark`.  CI uploads the JSON as an
artifact; comparing it across commits is the perf-regression trajectory
for the experiment pipeline (the ``mix_sweep`` entry starts the
mixed-workload branch of that trajectory, ``plan_sweep`` the
capacity-planning branch, ``chaos_sweep`` the fault-injection branch,
``kernel_sweep``/``kernel_ops`` the batched-DES-kernel branch, and
``vectorized_sweep`` the columnar-replay branch -- its headline ratio
times the sweep phase both kernels share, with requests, pooling, and
plans precomputed).

``REPRO_TRACE_MODE`` (``full``/``aggregate``, default ``full``) selects
the trace mode of the *parallel* sweep and suffixes the artifact name
(``BENCH_throughput_aggregate.json`` for the aggregate run), so CI can
record both trajectories side by side.  The serial sweep is always timed
in both modes: the ``aggregate_sweep`` entry tracks the span-free fast
path and its speedup over full tracing.

``SEED_SWEEP_RPS`` is the measured throughput of the pre-fast-path code
(the v0 seed commit) for the identical DRM1 paper sweep on the reference
dev container; ``speedup_vs_seed`` in the artifact is relative to it and
is only meaningful on comparable hardware.  ``PR1_FULL_TRACE_RPS`` is the
same sweep measured at the PR 1 commit (full tracing, REPRO_REQUESTS=2000)
and anchors the aggregate-mode speedup claim.
"""

from __future__ import annotations

import os
import time
import tracemalloc

import numpy as np

from repro.analysis.bench import record_benchmark
from repro.chaos import CorrelatedFailure, HostCrash, availability_sweep
from repro.resilience import ResiliencePolicy
from repro.experiments import (
    ShardingConfiguration,
    SuiteSettings,
    build_plan,
    paper_configurations,
    run_configuration,
    run_mix_suite,
    run_suite,
    run_suite_parallel,
    suite_requests,
)
from repro.experiments.runner import default_chunk_size
from repro.experiments.parallel import default_workers
from repro.planning import CandidateSpace, CapacityPlanner
from repro.sharding.pooling import estimate_pooling_factors
from repro.models import drm1, drm2
from repro.requests import RequestGenerator
from repro.serving import ServingConfig, TraceMode
from repro.tracing.span import MAIN_SHARD, Layer, Span
from repro.workloads import PiecewiseRateArrivals, Workload, WorkloadMix

from conftest import BENCH_REQUESTS
from test_perf_kernel import measure_kernel_ops

#: Seed-commit reference: 11-config DRM1 sweep at REPRO_REQUESTS=500 ran at
#: 85.5 simulated requests/second on the reference container (measured at
#: the commit introducing this benchmark, before the fast path landed).
SEED_SWEEP_RPS = 85.5
SEED_SWEEP_REQUESTS = 500

#: PR 2 reference: the 11-config DRM1 AGGREGATE sweep at REPRO_REQUESTS=150
#: ran at 1329.4 simulated requests/second serial on the reference dev
#: container (the committed ``aggregate_sweep.serial_rps`` at the PR 2
#: commit) -- the anchor for the batched-kernel ``kernel_sweep`` rung.
PR2_AGGREGATE_RPS = 1329.4
PR2_AGGREGATE_REQUESTS = 150

#: PR 1 reference: the same sweep with full tracing at REPRO_REQUESTS=2000
#: ran at 575 simulated requests/second on the reference dev container
#: (measured at the PR 1 commit, before aggregate tracing landed).
PR1_FULL_TRACE_RPS = 575.0
PR1_FULL_TRACE_REQUESTS = 2000

#: Request count for the generator microbenchmark (generation is orders of
#: magnitude faster than simulation, so it needs a bigger sample to time).
GEN_REQUESTS = 2000


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _time_best(fn, repeats: int = 2):
    """Best-of-N wall time: resilient to scheduler noise on shared CI."""
    result, best = _time(fn)
    for _ in range(repeats - 1):
        result, elapsed = _time(fn)
        best = min(best, elapsed)
    return result, best


def _span_bytes_per_instance(count: int = 10_000) -> float:
    """Live bytes per Span, measured -- the ``__slots__`` win tracker."""
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    spans = [
        Span(
            request_id=i, shard=MAIN_SHARD, server="main", layer=Layer.SERDE,
            name="bench", start=0.0, end=1.0, cpu_time=0.5,
        )
        for i in range(count)
    ]
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(spans) == count
    return (after - before) / count


def test_perf_throughput():
    model = drm1()
    settings = SuiteSettings(
        num_requests=BENCH_REQUESTS, serving=ServingConfig(seed=1)
    )
    trace_mode = TraceMode(os.environ.get("REPRO_TRACE_MODE", "full"))
    aggregate_settings = SuiteSettings(
        num_requests=BENCH_REQUESTS,
        serving=ServingConfig(seed=1),
        trace_mode=TraceMode.AGGREGATE,
    )

    # 1. Request generation: vectorized bulk path vs scalar reference.
    vec_requests, vec_s = _time_best(
        lambda: RequestGenerator(model, seed=3).generate_many(GEN_REQUESTS)
    )
    timestamps = np.linspace(0.0, 5.0 * 86_400.0, GEN_REQUESTS, endpoint=False)

    def scalar_pass():
        generator = RequestGenerator(model, seed=3)
        return [generator.generate(i, float(t)) for i, t in enumerate(timestamps)]

    scalar_requests, scalar_s = _time_best(scalar_pass)
    assert len(vec_requests) == len(scalar_requests) == GEN_REQUESTS
    gen_speedup = scalar_s / vec_s
    # DRM1 is the worst case for the bulk path (most tables, biggest
    # requests); it still wins clearly once scheduler noise is excluded.
    # Advisory on shared CI runners (the JSON artifact is the regression
    # signal); enforced only where the host is known-quiet.
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert gen_speedup > 1.2

    # 2. Serial DES sweep over the full DRM1 paper configuration matrix.
    # Warm the shared one-time caches (pooling memo, request sample is
    # regenerated per run but cached_property warmup matters) so serial
    # and parallel timings are both measured warm and comparable.
    suite_requests(model, settings)
    estimate_pooling_factors(
        model, num_requests=settings.pooling_requests, seed=settings.pooling_seed
    )
    serial_results, serial_s = _time(lambda: run_suite(model, settings))
    simulated = sum(len(result) for result in serial_results.values())
    serial_rps = simulated / serial_s
    assert simulated == BENCH_REQUESTS * len(serial_results)

    # 3. The same serial sweep with span-free aggregate tracing.  The
    # columns must be bit-identical to full tracing (spot-checked here;
    # exhaustively regression-tested in tests/test_trace_modes.py).
    aggregate_results, aggregate_s = _time(
        lambda: run_suite(model, aggregate_settings)
    )
    aggregate_rps = simulated / aggregate_s
    for label, full_result in serial_results.items():
        assert np.array_equal(full_result.e2e, aggregate_results[label].e2e)
        assert np.array_equal(full_result.cpu, aggregate_results[label].cpu)

    # 4. Parallel sweep runner (worker count depends on the host).
    workers = default_workers()
    parallel_settings = (
        aggregate_settings if trace_mode is TraceMode.AGGREGATE else settings
    )
    parallel_results, parallel_s = _time(
        lambda: run_suite_parallel(model, parallel_settings, max_workers=workers)
    )
    parallel_rps = simulated / parallel_s
    assert list(parallel_results) == list(serial_results)

    # 5. Diurnal WorkloadMix sweep: DRM1+DRM2 co-located on shared hosts
    # under diurnal arrivals, swept in AGGREGATE mode over a small shared
    # configuration matrix -- the mixed-workload throughput trajectory.
    mix = WorkloadMix(
        (
            Workload(
                "drm1-diurnal", model,
                PiecewiseRateArrivals.diurnal(50.0, seed=7), request_seed=3,
            ),
            Workload(
                "drm2-diurnal", drm2(),
                PiecewiseRateArrivals.diurnal(30.0, trough_fraction=0.5, seed=8),
                request_seed=4,
            ),
        )
    )
    mix_configurations = (
        ShardingConfiguration("singular"),
        ShardingConfiguration("load-bal", 4),
        ShardingConfiguration("NSBP", 8),
    )
    mix_results, mix_s = _time(
        lambda: run_mix_suite(mix, aggregate_settings, mix_configurations)
    )
    mix_simulated = sum(len(result) for result in mix_results.values())
    mix_rps = mix_simulated / mix_s
    assert mix_simulated == 2 * BENCH_REQUESTS * len(mix_results)
    for result in mix_results.values():
        assert result.workload_labels == mix.labels()
        per_workload = result.per_workload_e2e()
        assert all(len(v) == BENCH_REQUESTS for v in per_workload.values())

    # 6. Closed-loop capacity-planning search: the same diurnal mix, swept
    # over the shared configuration matrix and sized at three utilization
    # targets against its singular-derived SLA (AGGREGATE mode).  This is
    # the planner's perf trajectory from day one: its cost is dominated by
    # the candidate simulations, so it tracks the sweep fast path.
    planner = CapacityPlanner(
        space=CandidateSpace(configurations=mix_configurations),
        settings=aggregate_settings,
    )
    plan_result, plan_s = _time(lambda: planner.plan(mix))
    plan_simulated = 2 * BENCH_REQUESTS * len(mix_configurations)
    plan_rps = plan_simulated / plan_s
    # Feasibility depends on tail estimates, which tighten with
    # REPRO_REQUESTS; the artifact records the outcome, the benchmark
    # only asserts the search ran.
    chosen = plan_result.chosen

    # 7. Chaos availability sweep: one DRM1 host-crash suite replayed at
    # three sparse-replica counts (plus the healthy baseline replay that
    # fixes the SLO) in AGGREGATE mode -- the fault-injection rung of the
    # throughput trajectory.  Replica routing and the per-request status
    # accounting ride the same fast path, so this entry tracks the cost
    # the chaos layer adds on top of the plain open-loop replay.
    chaos_workload = Workload(
        "drm1-chaos", model,
        PiecewiseRateArrivals.diurnal(50.0, seed=7), request_seed=3,
    )
    chaos_replicas = (1, 2, 3)
    chaos_result, chaos_s = _time(
        lambda: availability_sweep(
            chaos_workload,
            ShardingConfiguration("load-bal", 4),
            (HostCrash(shard=0, at=0.1),),
            replica_counts=chaos_replicas,
            settings=aggregate_settings,
        )
    )
    chaos_simulated = BENCH_REQUESTS * (len(chaos_replicas) + 1)
    chaos_rps = chaos_simulated / chaos_s
    retention = [o.report.slo_retention for o in chaos_result.outcomes]
    assert all(a <= b for a, b in zip(retention, retention[1:]))

    # 7b. Tail-resilience sweep: the same workload under a correlated
    # domain crash (2 fault domains, spread placement) with a full
    # resilience policy -- per-attempt timeouts, retries, and
    # quantile-derived hedging.  The policy path swaps the plain RPC
    # generator for the supervised orchestrator, so this rung tracks the
    # overhead of attempt supervision on top of the chaos rung above.
    # Best-of-2, matching the perf guard's protocol: this rung runs late
    # in the benchmark where heap pressure from earlier rungs makes a
    # single sample noisy, and the guard compares against a fresh
    # best-of-2 measurement.
    resilience_replicas = (1, 2)
    resilience_result, resilience_s = _time_best(
        lambda: availability_sweep(
            chaos_workload,
            ShardingConfiguration("load-bal", 4),
            (CorrelatedFailure(domain=0, at=0.1),),
            replica_counts=resilience_replicas,
            domains=2,
            placement="spread",
            policy=ResiliencePolicy(
                rpc_timeout=5e-3, max_attempts=3, hedge_quantile=95.0
            ),
            settings=aggregate_settings,
        )
    )
    resilience_simulated = BENCH_REQUESTS * (len(resilience_replicas) + 1)
    resilience_rps = resilience_simulated / resilience_s
    resilience_attempts = int(
        sum(int(o.result.attempts.sum()) for o in resilience_result.outcomes)
    )
    resilience_hedged = int(
        sum(int(o.result.hedged.sum()) for o in resilience_result.outcomes)
    )
    assert resilience_attempts > 0

    # 8. Batched DES kernel: the same 11-config DRM1 AGGREGATE sweep on
    # kernel="batched" (deque-merged event loop, synchronous resource
    # grants, fused At yields), serial and parallel, anchored on the
    # committed PR 2 aggregate baseline.  The columns must be
    # bit-identical to the reference kernel (spot-checked here;
    # exhaustively pinned in tests/test_kernel_equivalence.py).  The raw
    # event-loop ops/sec per kernel ride along as `kernel_ops` -- they
    # double as the machine-speed proxy CI's perf-regression guard
    # normalizes the committed baseline with.
    batched_settings = SuiteSettings(
        num_requests=BENCH_REQUESTS,
        serving=ServingConfig(seed=1),
        trace_mode=TraceMode.AGGREGATE,
        kernel="batched",
    )
    batched_results, batched_s = _time(lambda: run_suite(model, batched_settings))
    batched_rps = simulated / batched_s
    for label, agg_result in aggregate_results.items():
        assert np.array_equal(agg_result.e2e, batched_results[label].e2e)
        assert np.array_equal(agg_result.cpu, batched_results[label].cpu)
    batched_parallel_results, batched_parallel_s = _time(
        lambda: run_suite_parallel(model, batched_settings, max_workers=workers)
    )
    batched_parallel_rps = simulated / batched_parallel_s
    assert list(batched_parallel_results) == list(batched_results)
    kernel_ops = measure_kernel_ops()

    # 9. Vectorized columnar replay: the same 11-config DRM1 AGGREGATE
    # sweep on kernel="vectorized" (no event loop -- per-request costs
    # transposed into per-chunk numpy columns and replayed as array
    # programs), bit-identical to the batched kernel (spot-checked here;
    # exhaustively pinned in tests/test_kernel_equivalence.py).  The
    # headline ratio times the *sweep phase* both kernels share: the
    # paper's replayer preprocesses and caches requests before sending
    # (run_suite docstring), so requests, pooling, and plans are
    # precomputed once and each kernel then replays the full
    # configuration matrix -- interleaved best-of-2, so scheduler noise
    # hits both kernels alike.  The first vectorized pass also warms the
    # columnar builder caches; the committed number is the warm replay,
    # matching every other warm-measured entry.
    vectorized_settings = SuiteSettings(
        num_requests=BENCH_REQUESTS,
        serving=ServingConfig(seed=1),
        trace_mode=TraceMode.AGGREGATE,
        kernel="vectorized",
    )
    vectorized_results, vectorized_suite_s = _time(
        lambda: run_suite(model, vectorized_settings)
    )
    vectorized_rps = simulated / vectorized_suite_s
    for label, result in vectorized_results.items():
        assert result.kernel_used == "vectorized", (label, result.kernel_fallback)
        assert result.kernel_fallback is None
        assert np.array_equal(batched_results[label].e2e, result.e2e)
        assert np.array_equal(batched_results[label].cpu, result.cpu)
    vectorized_parallel_results, vectorized_parallel_s = _time(
        lambda: run_suite_parallel(model, vectorized_settings, max_workers=workers)
    )
    vectorized_parallel_rps = simulated / vectorized_parallel_s
    assert list(vectorized_parallel_results) == list(vectorized_results)

    sweep_requests = suite_requests(model, vectorized_settings)
    sweep_pooling = estimate_pooling_factors(
        model, num_requests=vectorized_settings.pooling_requests,
        seed=vectorized_settings.pooling_seed,
    )
    sweep_plans = [
        build_plan(model, configuration, sweep_pooling)
        for configuration in paper_configurations(model.name)
    ]
    sweep_schedule = vectorized_settings.resolved_schedule()

    def kernel_sweep_once(serving):
        for sweep_plan in sweep_plans:
            run_configuration(
                model, sweep_plan, sweep_requests, serving, sweep_schedule
            )

    batched_serving = batched_settings.resolved_serving()
    vectorized_serving = vectorized_settings.resolved_serving()
    kernel_sweep_once(vectorized_serving)  # warm the builder caches
    batched_sweep_s = vectorized_sweep_s = float("inf")
    for _ in range(2):
        _, elapsed = _time(lambda: kernel_sweep_once(batched_serving))
        batched_sweep_s = min(batched_sweep_s, elapsed)
        _, elapsed = _time(lambda: kernel_sweep_once(vectorized_serving))
        vectorized_sweep_s = min(vectorized_sweep_s, elapsed)
    vectorized_sweep_rps = simulated / vectorized_sweep_s
    batched_sweep_rps = simulated / batched_sweep_s
    vectorized_speedup = batched_sweep_s / vectorized_sweep_s
    # Advisory on shared CI runners, enforced where the host is
    # known-quiet (the committed artifact is the acceptance signal).
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert vectorized_speedup > 3.0

    span_bytes = _span_bytes_per_instance()

    suffix = "" if trace_mode is TraceMode.FULL else f"_{trace_mode.value}"
    path = record_benchmark(
        f"throughput{suffix}",
        {
            "bench_requests": BENCH_REQUESTS,
            "configurations": len(serial_results),
            "generator": {
                "requests": GEN_REQUESTS,
                "vectorized_rps": GEN_REQUESTS / vec_s,
                "scalar_rps": GEN_REQUESTS / scalar_s,
                "speedup_vectorized_vs_scalar": gen_speedup,
            },
            "sweep": {
                "simulated_requests": simulated,
                "serial_wall_s": serial_s,
                "serial_rps": serial_rps,
                "parallel_wall_s": parallel_s,
                "parallel_rps": parallel_rps,
                "parallel_workers": workers,
                "seed_reference_rps": SEED_SWEEP_RPS,
                "seed_reference_requests": SEED_SWEEP_REQUESTS,
                # Only an apples-to-apples ratio when the request count
                # matches the one the seed reference was measured at; the
                # single-process serial number is compared (the seed
                # reference is serial), so hardware parallelism can never
                # mask a fast-path regression.
                "speedup_vs_seed": (
                    serial_rps / SEED_SWEEP_RPS
                    if BENCH_REQUESTS == SEED_SWEEP_REQUESTS
                    else None
                ),
            },
            "aggregate_sweep": {
                "simulated_requests": simulated,
                "serial_wall_s": aggregate_s,
                "serial_rps": aggregate_rps,
                # Span-free tracing vs full tracing, same commit, same
                # request sample -- the direct cost of materializing and
                # attributing spans.
                "speedup_vs_full_trace": aggregate_rps / serial_rps,
                "pr1_reference_rps": PR1_FULL_TRACE_RPS,
                "pr1_reference_requests": PR1_FULL_TRACE_REQUESTS,
                # The sweep-cost claim of the aggregate fast path: only an
                # apples-to-apples ratio at the request count the PR 1
                # full-trace reference was measured at.
                "speedup_vs_pr1_full_trace": (
                    aggregate_rps / PR1_FULL_TRACE_RPS
                    if BENCH_REQUESTS == PR1_FULL_TRACE_REQUESTS
                    else None
                ),
            },
            "mix_sweep": {
                # Two-model diurnal co-location (shared simulated hosts),
                # AGGREGATE trace mode: the mixed-workload rung of the
                # throughput trajectory.
                "workloads": list(mix.labels()),
                "configurations": len(mix_results),
                "simulated_requests": mix_simulated,
                "wall_s": mix_s,
                "rps": mix_rps,
            },
            "plan_sweep": {
                # Closed-loop SLA-driven deployment search over the same
                # diurnal DRM1+DRM2 mix: candidate simulation + per-shard
                # sizing + feasibility filtering, end to end.
                "configurations": len(mix_configurations),
                "utilization_targets": len(planner.space.utilization_targets),
                "candidates": len(plan_result.candidates),
                "simulated_requests": plan_simulated,
                "wall_s": plan_s,
                "rps": plan_rps,
                "feasible": plan_result.feasible,
                "chosen": chosen.label if chosen else None,
                "chosen_servers": chosen.total_servers if chosen else None,
            },
            "kernel_sweep": {
                # Batched DES kernel over the 11-config DRM1 AGGREGATE
                # sweep, bit-identical to the reference kernel.  The
                # PR 2 anchor is a *serial, reference-container* number:
                # the per-kernel `kernel_ops` above is the machine-speed
                # context for reading the ratios on other hosts, and the
                # parallel rung is where multi-core hosts collect the
                # shard-level (one process per simulated cluster) win.
                "kernel": "batched",
                "simulated_requests": simulated,
                "serial_wall_s": batched_s,
                "serial_rps": batched_rps,
                "parallel_wall_s": batched_parallel_s,
                "parallel_rps": batched_parallel_rps,
                "parallel_workers": workers,
                "speedup_vs_reference_kernel": batched_rps / aggregate_rps,
                "pr2_reference_rps": PR2_AGGREGATE_RPS,
                "pr2_reference_requests": PR2_AGGREGATE_REQUESTS,
                "speedup_vs_pr2_serial": (
                    batched_rps / PR2_AGGREGATE_RPS
                    if BENCH_REQUESTS == PR2_AGGREGATE_REQUESTS
                    else None
                ),
                "speedup_vs_pr2_parallel": (
                    batched_parallel_rps / PR2_AGGREGATE_RPS
                    if BENCH_REQUESTS == PR2_AGGREGATE_REQUESTS
                    else None
                ),
            },
            "kernel_ops": kernel_ops,
            "vectorized_sweep": {
                # Columnar replay over the 11-config DRM1 AGGREGATE
                # sweep, bit-identical to the batched kernel.  The
                # headline `speedup_vs_batched_kernel` compares the
                # sweep phase both kernels share (requests, pooling,
                # and plans precomputed; warm builder caches); the
                # suite-level serial/parallel rps include request
                # generation and are comparable to `kernel_sweep`.
                "kernel": "vectorized",
                "simulated_requests": simulated,
                "chunk_size": default_chunk_size(),
                "serial_wall_s": vectorized_suite_s,
                "serial_rps": vectorized_rps,
                "parallel_wall_s": vectorized_parallel_s,
                "parallel_rps": vectorized_parallel_rps,
                "parallel_workers": workers,
                "sweep_wall_s": vectorized_sweep_s,
                "sweep_rps": vectorized_sweep_rps,
                "batched_sweep_wall_s": batched_sweep_s,
                "batched_sweep_rps": batched_sweep_rps,
                "speedup_vs_batched_kernel": vectorized_speedup,
                "speedup_vs_batched_suite": vectorized_rps / batched_rps,
            },
            "chaos_sweep": {
                # Fault-injection availability sweep: healthy baseline +
                # one host-crash replay per replica count (AGGREGATE).
                "replica_counts": list(chaos_replicas),
                "simulated_requests": chaos_simulated,
                "wall_s": chaos_s,
                "rps": chaos_rps,
                "slo_retention": retention,
                "replicas_for_999": chaos_result.replicas_for(0.999),
            },
            "resilience_sweep": {
                # Correlated domain crash (2 domains, spread) under a
                # timeout+retry+hedge policy: the tail-resilience rung.
                "replica_counts": list(resilience_replicas),
                "simulated_requests": resilience_simulated,
                "wall_s": resilience_s,
                "rps": resilience_rps,
                "attempts": resilience_attempts,
                "hedged": resilience_hedged,
                "slo_retention": [
                    o.report.slo_retention
                    for o in resilience_result.outcomes
                ],
            },
            "parallel_trace_mode": trace_mode.value,
            "span_bytes_per_instance": span_bytes,
        },
    )
    print(
        f"\n[bench] serial {serial_rps:.0f} req/s (full) / {aggregate_rps:.0f} "
        f"req/s (aggregate, {aggregate_rps / serial_rps:.2f}x), parallel "
        f"{parallel_rps:.0f} req/s ({workers} workers, {trace_mode.value}), "
        f"mix {mix_rps:.0f} req/s (diurnal DRM1+DRM2, aggregate), "
        f"plan {plan_s:.2f}s ({len(plan_result.candidates)} candidates -> "
        f"{chosen.label if chosen else 'infeasible'}), "
        f"chaos {chaos_rps:.0f} req/s ({len(chaos_replicas)} replica counts), "
        f"resilience {resilience_rps:.0f} req/s "
        f"({resilience_attempts} attempts, {resilience_hedged} hedged), "
        f"batched kernel {batched_rps:.0f} req/s serial / "
        f"{batched_parallel_rps:.0f} req/s parallel "
        f"({batched_rps / aggregate_rps:.2f}x reference), "
        f"vectorized kernel {vectorized_sweep_rps:.0f} req/s sweep-phase "
        f"({vectorized_speedup:.2f}x batched), "
        f"gen speedup {gen_speedup:.1f}x, span {span_bytes:.0f} B -> {path}"
    )
    assert serial_rps > 0 and aggregate_rps > 0 and parallel_rps > 0 and mix_rps > 0
    assert plan_rps > 0 and plan_result.candidates
    assert chaos_rps > 0 and resilience_rps > 0
    assert batched_rps > 0 and batched_parallel_rps > 0
    assert vectorized_rps > 0 and vectorized_sweep_rps > 0

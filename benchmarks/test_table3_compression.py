"""Table III: effect of quantization and pruning on DRM1.

Paper targets: the compressed model is 5.56x smaller (194.46 GB -> 35 GB)
while CPU time and E2E latency stay within a few percent of uncompressed
at every quantile; tail quantiles remain several times P50 (long-tailed
request sizes); and compression alone still cannot bring data-center
scale models onto a handful of ~50 GB commodity servers.
"""

import pytest

from repro.analysis import save_artifact
from repro.experiments import figures


def test_table3_compression(benchmark, suites):
    base, comp, report = suites.compression_pair()
    artifact = benchmark(lambda: figures.table3_compression(base, comp, report))
    print("\n" + artifact.text)
    print(f"paper ratio 5.56x -> measured {report.ratio:.2f}x")
    save_artifact("table3_compression.txt", artifact.text)

    # Size: ~5.56x smaller.
    assert artifact.data["ratio"] == pytest.approx(5.56, rel=0.08)

    # Latency and CPU effects are marginal at every quantile.
    for metric in ("CPU Time", "E2E Latency"):
        for q in (50, 90, 99):
            uncompressed, compressed = artifact.data[f"{metric}-P{q}"]
            assert compressed == pytest.approx(uncompressed, rel=0.05), (metric, q)

    # Long-tailed quantiles survive compression (paper: CPU P99 ~6.6x P50).
    cpu_p99, _ = artifact.data["CPU Time-P99"]
    assert cpu_p99 > 3.0

    # Compression alone is insufficient at data-center scale: the original
    # models are "many times larger" than the 194 GB snapshot, so even
    # 5.56x leaves them beyond a few ~50 GB commodity servers.
    full_scale = report.compressed_bytes * 10
    assert full_scale > 4 * 50e9

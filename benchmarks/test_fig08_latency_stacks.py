"""Figures 8a/8b: P50 latency attribution by sharding strategy (DRM1).

Paper targets:
* singular: embedded portion ~10% of E2E; at 1-shard it grows to ~32%;
  the best 8-shard config brings it back to ~16% (Section VI-B4);
* on sparse shards, network latency exceeds operator latency for every
  distributed configuration (Section VI-B2);
* increasing shards shrinks the embedded bar, but the constant network
  component remains (constant overheads eventually dominate).
"""

from repro.analysis import save_artifact
from repro.experiments import figures
from repro.sharding import SINGULAR
from repro.tracing import EMBEDDED_PORTION, NETWORK_LATENCY, SPARSE_OPS


def embedded_fraction(stacks, label):
    stack = stacks[label]
    return stack[EMBEDDED_PORTION] / sum(stack.values())


def test_fig08a_e2e_latency_stacks(benchmark, suites):
    results = suites.serial("DRM1")
    artifact = benchmark(lambda: figures.fig8a_e2e_latency_stacks(results))
    print("\n" + artifact.text)
    save_artifact("fig08a_latency_stacks.txt", artifact.text)

    stacks = artifact.data["stacks"]
    singular = embedded_fraction(stacks, SINGULAR)
    one_shard = embedded_fraction(stacks, "1 shard")
    load8 = embedded_fraction(stacks, "load-bal 8 shards")
    print(
        f"paper embedded fraction: singular ~10%, 1-shard 32%, load-bal-8 15.6% -> "
        f"measured {singular:.1%}, {one_shard:.1%}, {load8:.1%}"
    )
    assert 0.05 < singular < 0.18
    assert 0.22 < one_shard < 0.42
    assert singular < load8 < one_shard


def test_fig08b_embedded_stacks(benchmark, suites):
    results = suites.serial("DRM1")
    artifact = benchmark(lambda: figures.fig8b_embedded_stacks(results))
    print("\n" + artifact.text)
    save_artifact("fig08b_embedded_stacks.txt", artifact.text)

    stacks = artifact.data["stacks"]
    # Singular bar is pure sparse ops.
    assert stacks[SINGULAR][NETWORK_LATENCY] == 0.0
    assert stacks[SINGULAR][SPARSE_OPS] > 0.0
    # Network latency exceeds operator latency on the bounding shard for
    # every distributed configuration.
    for label, stack in stacks.items():
        if label == SINGULAR:
            continue
        assert stack[NETWORK_LATENCY] > stack[SPARSE_OPS], label
    # More shards -> smaller embedded bar (1 shard tallest among load-bal).
    total = lambda label: sum(stacks[label].values())
    assert total("load-bal 8 shards") < total("load-bal 2 shards") < total("1 shard")

"""Ablation: pooling factor vs the distributed-latency crossover.

Section VI-B2: "if the sparse operators produced enough work on average,
then the model would be amenable to distributed inference.  And given
sufficient sparse operator work, latency could be improved."  This
ablation scales the user-net pooling factors of DRM1 and locates the
crossover: with enough lookups per request, the 8-shard single-batch
configuration beats singular -- the full Figure-13 effect.
"""

import dataclasses

import numpy as np

from repro.analysis import format_table, save_artifact
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.experiments.runner import run_configuration
from repro.models.config import FeatureScope
from repro.requests import RequestGenerator
from repro.serving import ServingConfig
from repro.sharding import estimate_pooling_factors, singular_plan

POOLING_SCALES = (1, 8, 32, 64)


def scale_user_pooling(model, factor):
    tables = tuple(
        dataclasses.replace(t, mean_ids=t.mean_ids * factor)
        if t.scope is FeatureScope.USER
        else t
        for t in model.tables
    )
    return dataclasses.replace(model, name=f"{model.name}-pfx{factor}", tables=tables)


def sweep(base_model):
    serving = ServingConfig(seed=1).with_batch_size(10**9)  # single batch
    rows = []
    for factor in POOLING_SCALES:
        model = scale_user_pooling(base_model, factor)
        requests = RequestGenerator(model, seed=3).generate_many(60)
        pooling = estimate_pooling_factors(model, 200, seed=42)
        plan = build_plan(model, ShardingConfiguration("load-bal", 8), pooling)
        base = run_configuration(model, singular_plan(model), requests, serving)
        dist = run_configuration(model, plan, requests, serving)
        overhead = (
            np.percentile(dist.e2e, 50) - np.percentile(base.e2e, 50)
        ) / np.percentile(base.e2e, 50)
        rows.append((factor, float(overhead)))
    return rows


def test_ablation_pooling_crossover(benchmark, suites):
    rows = benchmark.pedantic(lambda: sweep(suites.models["DRM1"]), rounds=1, iterations=1)
    text = format_table(
        ["user pooling x", "load-bal-8 single-batch P50 overhead"],
        [(f, round(o, 4)) for f, o in rows],
        title="Ablation: pooling factor vs distributed latency crossover",
    )
    print("\n" + text)
    save_artifact("ablation_pooling_crossover.txt", text)

    overheads = dict(rows)
    # Overhead decreases monotonically as sparse work grows.
    values = [overheads[f] for f in POOLING_SCALES]
    assert all(a > b for a, b in zip(values, values[1:]))
    # At DRM1's own (Table II) pooling scale, distribution still costs
    # latency; with enough sparse work it *improves* latency -- the
    # crossover the paper demonstrates with large batches.
    assert overheads[1] > 0
    assert overheads[64] < 0

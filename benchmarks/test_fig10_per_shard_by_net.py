"""Figure 10: DRM1 per-shard operator latencies by net (8 sparse shards).

Paper targets: with load-balanced sharding, per-shard latencies are
roughly even and every shard serves both nets; with NSBP, the net1 shards
(high pooling, small tables) dominate operator latency while the net2
shards do almost nothing -- "only co-locating tables within the same net
has a large effect".
"""

import numpy as np

from repro.analysis import save_artifact
from repro.experiments import figures


def test_fig10_per_shard_by_net(benchmark, suites):
    results = suites.serial("DRM1")
    artifact = benchmark(lambda: figures.fig10_per_shard_by_net(results))
    print("\n" + artifact.text)
    save_artifact("fig10_per_shard_by_net.txt", artifact.text)

    per_shard = artifact.data["per_shard"]

    # Load-balanced: every shard serves both nets.
    load = per_shard["load-bal 8 shards"]
    load_nets_per_shard = {}
    for (shard, net) in load:
        load_nets_per_shard.setdefault(shard, set()).add(net)
    assert all(nets == {"net1", "net2"} for nets in load_nets_per_shard.values())

    # Load-balanced total per-shard op time is fairly even.
    load_totals = {}
    for (shard, _), value in load.items():
        load_totals[shard] = load_totals.get(shard, 0.0) + value
    values = list(load_totals.values())
    assert max(values) / min(values) < 1.6

    # NSBP: shards serve exactly one net; net1 shards dominate.
    nsbp = per_shard["NSBP 8 shards"]
    nsbp_nets_per_shard = {}
    for (shard, net) in nsbp:
        nsbp_nets_per_shard.setdefault(shard, set()).add(net)
    assert all(len(nets) == 1 for nets in nsbp_nets_per_shard.values())
    net1_peak = max(v for (s, n), v in nsbp.items() if n == "net1")
    net2_peak = max(v for (s, n), v in nsbp.items() if n == "net2")
    assert net1_peak > 5 * net2_peak

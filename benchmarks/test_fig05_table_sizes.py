"""Figure 5: embedding-table size distributions.

Paper targets: DRM1 = 200 GB-class / 257 tables / largest 3.6 GB;
DRM2 = 138 GB / 133 tables / largest 6.7 GB; DRM3 = 200 GB / 39 tables
dominated by one 178.8 GB table.  DRM1/DRM2 show a long tail; DRM3 is
dominated by a single table.
"""

import pytest

from repro.analysis import save_artifact
from repro.experiments import figures


def test_fig05_table_sizes(benchmark, models):
    artifact = benchmark(lambda: figures.fig5_table_size_distribution(models))
    print("\n" + artifact.text)
    save_artifact("fig05_table_sizes.txt", artifact.text)

    data = artifact.data
    assert data["DRM1"]["count"] == 257
    assert data["DRM2"]["count"] == 133
    assert data["DRM3"]["count"] == 39
    assert data["DRM1"]["total_gib"] == pytest.approx(194.05, rel=0.02)
    assert data["DRM2"]["total_gib"] == pytest.approx(138.0, rel=0.02)
    assert data["DRM3"]["total_gib"] == pytest.approx(200.0, rel=0.02)
    assert data["DRM1"]["largest_gib"] <= 3.7
    assert data["DRM2"]["largest_gib"] <= 6.8
    assert data["DRM3"]["largest_gib"] == pytest.approx(178.8, rel=0.03)
    # Long tail vs dominant table.
    assert data["DRM1"]["dominant_share"] < 0.05
    assert data["DRM2"]["dominant_share"] < 0.08
    assert data["DRM3"]["dominant_share"] > 0.85

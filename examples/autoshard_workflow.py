"""Automatic sharding workflow (the paper's Section-X future work).

Given a sparse-tier DRAM budget and a P99 latency SLA, profile every
feasible (strategy, shard count) candidate on a request sample and pick
the plan that meets the SLA with the fewest data-center resources.

Run:  python examples/autoshard_workflow.py
"""

from repro.analysis import format_table
from repro.core.types import GIB
from repro.models import drm1
from repro.serving import ServingConfig
from repro.sharding import AutoShardObjective, auto_shard


def main() -> None:
    model = drm1()
    objective = AutoShardObjective(
        shard_dram_budget=55 * GIB,
        max_p99_latency_overhead=0.30,
        shard_counts=(2, 4, 8, 16),
        profile_requests=80,
    )
    print(
        f"auto-sharding {model.name}: sparse-tier budget "
        f"{objective.shard_dram_budget / GIB:.0f} GiB/shard, "
        f"SLA: P99 overhead <= {objective.max_p99_latency_overhead:.0%}"
    )

    outcome = auto_shard(model, objective, ServingConfig(seed=1))

    rows = []
    for evaluation in outcome.evaluations:
        if evaluation.feasible_capacity:
            p99 = f"{evaluation.p99_latency_overhead:+.1%}"
            cpu = f"{evaluation.cpu_overhead:+.1%}"
        else:
            p99 = cpu = "(skipped)"
        rows.append(
            (
                evaluation.label,
                "yes" if evaluation.feasible_capacity else "no",
                p99,
                cpu,
                "yes" if evaluation.meets_sla else "no",
            )
        )
    print(
        format_table(
            ["candidate", "fits DRAM", "P99 overhead", "CPU overhead", "meets SLA"],
            rows,
            title="Candidate evaluation",
        )
    )
    if outcome.chosen is None:
        print("\nno candidate satisfies the budget and SLA; relax one of them.")
        return
    print(
        f"\nchosen: {outcome.chosen.label} -- the fewest shards that fit the"
        f" DRAM budget and meet the SLA, minimizing compute overhead."
    )


if __name__ == "__main__":
    main()

"""Model compression study: quantization + pruning (paper Table III).

Runs the production-style compression recipe at two levels:

* metadata level: full-scale size accounting for DRM1 (194 GiB -> ~35 GB,
  the paper's 5.56x) and the "compression alone is insufficient" check;
* numeric level: real row-wise linear quantization and magnitude pruning
  over a materialized table, with measured reconstruction error against
  the analytic bound.

Run:  python examples/compression_study.py
"""

import numpy as np

from repro.analysis import format_table
from repro.compression import (
    compress_model,
    dequantize_rows,
    prune_by_magnitude,
    quantization_error_bound,
    quantize_rows,
)
from repro.core.embedding import EmbeddingTable
from repro.core.types import GIB
from repro.models import drm1


def main() -> None:
    model = drm1()
    compressed, report = compress_model(model)

    print(
        format_table(
            ["metric", "uncompressed", "quantized + pruned"],
            [
                ("total size (GB)", round(report.uncompressed_bytes / 1e9, 2),
                 round(report.compressed_bytes / 1e9, 2)),
                ("tables int8 / int4", "-", f"{report.tables_int8} / {report.tables_int4}"),
                ("tables pruned", 0, report.tables_pruned),
                ("compression ratio", "1.00x", f"{report.ratio:.2f}x"),
            ],
            title="Full-scale size accounting (Table III)",
        )
    )
    usable = 50e9
    print(
        f"\ncommodity servers (~50 GB usable DRAM) needed: "
        f"{report.fits_servers(usable)} for this snapshot; the production"
        f" originals are many times larger -- compression alone cannot"
        f" bring them onto one, two, or even four such servers."
    )

    # --- real numeric compression on one materialized table -------------------
    table_config = max(model.tables, key=lambda t: t.nbytes)
    table = EmbeddingTable.materialize(table_config, max_rows=4096, seed=11)
    print(f"\nmaterialized {table_config.name}: {table.num_rows} rows x {table.dim}")
    rows = []
    for bits in (8, 4):
        quantized = quantize_rows(table.weights, bits)
        error = np.abs(dequantize_rows(quantized) - table.weights)
        bound = quantization_error_bound(table.weights, bits)
        rows.append(
            (
                f"int{bits}",
                f"{table.weights.nbytes / quantized.nbytes:.2f}x",
                f"{error.mean():.2e}",
                f"{error.max():.2e}",
                f"{bound.max():.2e}",
                "yes" if (error.max(axis=1) <= bound).all() else "NO",
            )
        )
    print(
        format_table(
            ["dtype", "size ratio", "mean err", "max err", "analytic bound", "within bound"],
            rows,
            title="Row-wise linear quantization, measured vs bound",
        )
    )

    pruned = prune_by_magnitude(table.weights, keep_fraction=0.85)
    print(
        f"\nmagnitude pruning keeps {pruned.num_rows}/{table.num_rows} rows "
        f"({pruned.num_rows / table.num_rows:.0%}); dropped rows pool to zero."
    )


if __name__ == "__main__":
    main()

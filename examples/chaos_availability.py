"""Chaos availability: how many replicas keep the SLO when hosts crash?

The paper sizes scale-out deployments against a latency SLA on a
*healthy* fleet (Section VII-C).  This script asks the production
question behind that sizing with the :mod:`repro.chaos` layer:

1. a co-located DRM1+DRM2 Poisson mix is planned by the
   :class:`~repro.planning.CapacityPlanner` closed loop (simulate the
   candidates, check the SLA, size from measured demand, fit DRAM --
   the singular deployment cannot pin both models in one server, so the
   planner is forced to a sharded candidate, the paper's thesis);
2. the chosen candidate is then re-simulated under a deterministic fault
   suite -- a host crash that takes down one sparse shard's primary
   mid-replay, plus a straggler episode on another shard -- at sparse
   replica counts 1, 2, 3 (``CapacityPlanner.assess_availability``);
3. every request ends ok (full result, in SLO), slow, degraded (the
   router failed over until no replica was live and returned the
   dense-tower-only partial result), or failed, and the sweep reports
   availability / SLO retention per replica count plus the replica count
   needed for two- and three-nines retention;
4. the same crash is replayed once more with the self-healing controller
   on (heartbeat detection + re-replication) to show the crash ->
   detected -> healed timeline and the availability window recovering;
5. the tail-resilience layer (:mod:`repro.resilience`) is put to work
   twice: a replica-scoped straggler replayed with and without a hedging
   policy (speculative duplicate after the healthy p95 of the sparse
   fan-out; first response wins) to show hedging cutting the faulted
   p99, and a *correlated* domain crash (one fault domain = half the
   sparse hosts) replayed under spread vs packed replica placement to
   show spread retaining more nines from the same replica budget.

Every fault fires at an explicit simulated time and every random draw
comes from a dedicated ``substream(seed, "chaos", ...)`` or
``substream(seed, "resilience", ...)`` substream, so the report is
byte-stable run to run -- and a run with *no* faults and *no* policy is
byte-identical to one without either layer at all.

The combined report is written to
``results/example_chaos_availability.txt``.

Run:  python examples/chaos_availability.py
"""

import numpy as np

from repro.analysis.report import save_artifact
from repro.chaos import (
    CorrelatedFailure,
    HealingPolicy,
    HostCrash,
    StragglerShard,
    format_assessment,
)
from repro.experiments import ShardingConfiguration, SuiteSettings
from repro.models import drm1, drm2
from repro.planning import CandidateSpace, CapacityPlanner
from repro.resilience import ResiliencePolicy
from repro.serving import ServingConfig, TraceMode
from repro.workloads import PoissonArrivals, Workload, WorkloadMix

RANKING_QPS = 80.0
RETRIEVAL_QPS = 40.0
REQUESTS = 60

EXPERIMENTS = (
    HostCrash(shard=0, at=0.1),
    StragglerShard(shard=1, start=0.3, duration=0.2, multiplier=6.0),
)


def main() -> None:
    workload = WorkloadMix(
        (
            Workload(
                "ranking", drm1(), PoissonArrivals(RANKING_QPS, seed=7),
                request_seed=3,
            ),
            Workload(
                "retrieval", drm2(), PoissonArrivals(RETRIEVAL_QPS, seed=8),
                request_seed=4,
            ),
        )
    )
    planner = CapacityPlanner(
        space=CandidateSpace(
            configurations=(
                ShardingConfiguration("singular"),
                ShardingConfiguration("load-bal", 4),
                ShardingConfiguration("load-bal", 8),
            )
        ),
        settings=SuiteSettings(
            num_requests=REQUESTS,
            serving=ServingConfig(seed=1),
            trace_mode=TraceMode.AGGREGATE,
        ),
    )
    plan = planner.plan(workload)
    chosen = plan.require()
    sections = [
        f"planned deployment: {chosen.label} at "
        f"{chosen.utilization_target:.0%} utilization "
        f"({chosen.total_servers} servers)",
        "",
        "== fault suite: shard-0 primary crash + shard-1 straggler ==",
        "",
    ]

    assessment = planner.assess_availability(
        workload, plan, EXPERIMENTS, replica_counts=(1, 2, 3)
    )
    sections.extend(format_assessment(assessment))

    healed = planner.assess_availability(
        workload,
        plan,
        EXPERIMENTS,
        replica_counts=(1,),
        healing=HealingPolicy(
            check_interval=0.05, consecutive_misses=2, recovery_lag=0.25
        ),
    )
    sections.extend(["", "== same crash with the self-healing controller ==", ""])
    sections.extend(format_assessment(healed))

    # Tail resilience 1: a replica-scoped straggler (one slow replica of
    # shard 0, its sibling healthy) with and without a hedging policy.
    straggler = (
        StragglerShard(shard=0, start=0.0, duration=10.0, multiplier=25.0,
                       replica=0),
    )
    hedge_policy = ResiliencePolicy(
        hedge_quantile=95.0, max_attempts=2,
        retry_budget=500.0, retry_refill_rate=500.0,
    )
    no_hedge = planner.assess_availability(
        workload, plan, straggler, replica_counts=(2,)
    )
    hedged = planner.assess_availability(
        workload, plan, straggler, replica_counts=(2,), policy=hedge_policy
    )
    p99_base = float(np.percentile(no_hedge.outcomes[0].result.e2e, 99.0))
    p99_hedge = float(np.percentile(hedged.outcomes[0].result.e2e, 99.0))
    sections.extend([
        "",
        "== tail resilience: hedging a replica-scoped straggler ==",
        "",
        f"no policy:  p99 {p99_base * 1e3:.3f} ms",
        f"hedged:     p99 {p99_hedge * 1e3:.3f} ms "
        f"({p99_hedge / p99_base:.2f}x, "
        f"{int(hedged.outcomes[0].result.hedged.sum())} hedges issued)",
        "",
    ])
    sections.extend(format_assessment(hedged))

    # Tail resilience 2: a whole fault domain crashes at once; spread
    # placement stripes each shard's replicas across domains so every
    # shard keeps a survivor, packed placement loses shards outright.
    domain_crash = (CorrelatedFailure(domain=0, at=0.1),)
    placements = {}
    for placement in ("spread", "packed"):
        placements[placement] = planner.assess_availability(
            workload, plan, domain_crash, replica_counts=(2,),
            domains=2, placement=placement,
        )
    sections.extend([
        "",
        "== correlated domain crash: spread vs packed placement ==",
        "",
    ])
    for placement, assessed in placements.items():
        sections.extend([f"-- placement: {placement} --", ""])
        sections.extend(format_assessment(assessed))
        sections.append("")

    report = "\n".join(sections)
    print(report)
    path = save_artifact("example_chaos_availability.txt", report)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()

"""Chaos availability: how many replicas keep the SLO when hosts crash?

The paper sizes scale-out deployments against a latency SLA on a
*healthy* fleet (Section VII-C).  This script asks the production
question behind that sizing with the :mod:`repro.chaos` layer:

1. a co-located DRM1+DRM2 Poisson mix is planned by the
   :class:`~repro.planning.CapacityPlanner` closed loop (simulate the
   candidates, check the SLA, size from measured demand, fit DRAM --
   the singular deployment cannot pin both models in one server, so the
   planner is forced to a sharded candidate, the paper's thesis);
2. the chosen candidate is then re-simulated under a deterministic fault
   suite -- a host crash that takes down one sparse shard's primary
   mid-replay, plus a straggler episode on another shard -- at sparse
   replica counts 1, 2, 3 (``CapacityPlanner.assess_availability``);
3. every request ends ok (full result, in SLO), slow, degraded (the
   router failed over until no replica was live and returned the
   dense-tower-only partial result), or failed, and the sweep reports
   availability / SLO retention per replica count plus the replica count
   needed for two- and three-nines retention;
4. the same crash is replayed once more with the self-healing controller
   on (heartbeat detection + re-replication) to show the crash ->
   detected -> healed timeline and the availability window recovering.

Every fault fires at an explicit simulated time and every random draw
comes from a dedicated ``substream(seed, "chaos", ...)`` substream, so
the report is byte-stable run to run -- and a run with *no* faults is
byte-identical to one without the chaos layer at all.

The combined report is written to
``results/example_chaos_availability.txt``.

Run:  python examples/chaos_availability.py
"""

from repro.analysis.report import save_artifact
from repro.chaos import HealingPolicy, HostCrash, StragglerShard, format_assessment
from repro.experiments import ShardingConfiguration, SuiteSettings
from repro.models import drm1, drm2
from repro.planning import CandidateSpace, CapacityPlanner
from repro.serving import ServingConfig, TraceMode
from repro.workloads import PoissonArrivals, Workload, WorkloadMix

RANKING_QPS = 80.0
RETRIEVAL_QPS = 40.0
REQUESTS = 60

EXPERIMENTS = (
    HostCrash(shard=0, at=0.1),
    StragglerShard(shard=1, start=0.3, duration=0.2, multiplier=6.0),
)


def main() -> None:
    workload = WorkloadMix(
        (
            Workload(
                "ranking", drm1(), PoissonArrivals(RANKING_QPS, seed=7),
                request_seed=3,
            ),
            Workload(
                "retrieval", drm2(), PoissonArrivals(RETRIEVAL_QPS, seed=8),
                request_seed=4,
            ),
        )
    )
    planner = CapacityPlanner(
        space=CandidateSpace(
            configurations=(
                ShardingConfiguration("singular"),
                ShardingConfiguration("load-bal", 4),
                ShardingConfiguration("load-bal", 8),
            )
        ),
        settings=SuiteSettings(
            num_requests=REQUESTS,
            serving=ServingConfig(seed=1),
            trace_mode=TraceMode.AGGREGATE,
        ),
    )
    plan = planner.plan(workload)
    chosen = plan.require()
    sections = [
        f"planned deployment: {chosen.label} at "
        f"{chosen.utilization_target:.0%} utilization "
        f"({chosen.total_servers} servers)",
        "",
        "== fault suite: shard-0 primary crash + shard-1 straggler ==",
        "",
    ]

    assessment = planner.assess_availability(
        workload, plan, EXPERIMENTS, replica_counts=(1, 2, 3)
    )
    sections.extend(format_assessment(assessment))

    healed = planner.assess_availability(
        workload,
        plan,
        EXPERIMENTS,
        replica_counts=(1,),
        healing=HealingPolicy(
            check_interval=0.05, consecutive_misses=2, recovery_lag=0.25
        ),
    )
    sections.extend(["", "== same crash with the self-healing controller ==", ""])
    sections.extend(format_assessment(healed))

    report = "\n".join(sections)
    print(report)
    path = save_artifact("example_chaos_availability.txt", report)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()

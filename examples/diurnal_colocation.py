"""Diurnal multi-model co-location: the workload subsystem end to end.

Two models (DRM1 as "ranking", DRM2 as "retrieval") share one simulated
cluster.  Each gets its own diurnal arrival process -- retrieval's day is
phase-aligned but shallower -- and its own sharding plan; the merged
stream replays against shared hosts, so cross-model queueing contention
is *simulated*.  The script renders:

1. an ASCII profile of the merged diurnal arrival curve (arrivals per
   simulated hour, split by workload);
2. per-workload latency quantiles, co-located vs each workload running
   the same stream alone on identical hosts (the co-location tax);
3. an LRU cache summary of each workload's temporally-correlated
   (popularity + recency) sparse-ID stream -- the cache-aware loop into
   ``repro.analysis.caching``.

The combined figure is written to ``results/example_diurnal_colocation.txt``.

Run:  python examples/diurnal_colocation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.caching import trace_hit_summary
from repro.analysis.report import save_artifact
from repro.experiments import run_mix_configuration
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.models import drm1, drm2
from repro.requests import CorrelatedStream
from repro.serving import ServingConfig
from repro.sharding import estimate_pooling_factors
from repro.workloads import (
    PiecewiseRateArrivals,
    Workload,
    WorkloadMix,
    diurnal_qps_curve,
)

PEAK_QPS = 60.0
#: Time-compressed day: each of the 24 "hours" lasts this many simulated
#: seconds, so a few thousand requests trace the whole diurnal curve while
#: instantaneous rates stay production-shaped.
HOUR_SECONDS = 2.0


def compressed_day(peak_qps: float, trough_fraction: float, seed: int):
    return PiecewiseRateArrivals(
        rates=tuple(diurnal_qps_curve(peak_qps, trough_fraction)),
        interval_seconds=HOUR_SECONDS,
        seed=seed,
    )


def day_requests(peak_qps: float, trough_fraction: float) -> int:
    """Requests needed to cover one compressed day at this curve."""
    return int(diurnal_qps_curve(peak_qps, trough_fraction).sum() * HOUR_SECONDS)


def arrival_profile(mix: WorkloadMix, stream, width: int = 48) -> str:
    """ASCII bars of merged arrivals per compressed hour, split by workload."""
    # The curve is periodic: arrivals that spill past the first compressed
    # day fold into the matching hour of the next one.
    hours = np.floor(stream.times / HOUR_SECONDS).astype(int) % 24
    lines = ["arrivals per (compressed) hour of the day (#: ranking, +: retrieval)"]
    counts = [
        [
            int(np.count_nonzero((hours == hour) & (stream.workload_ids == index)))
            for index in range(len(mix.workloads))
        ]
        for hour in range(24)
    ]
    peak = max((sum(c) for c in counts), default=1)
    for hour, per_workload in enumerate(counts):
        bars = "".join(
            symbol * round(width * count / peak)
            for symbol, count in zip("#+", per_workload)
        )
        lines.append(f"h{hour:02d} |{bars:<{width}}| {sum(per_workload):>4}")
    return "\n".join(lines)


def quantile_rows(label: str, latencies: np.ndarray) -> tuple:
    return (
        label,
        len(latencies),
        round(float(np.percentile(latencies, 50)) * 1e3, 3),
        round(float(np.percentile(latencies, 99)) * 1e3, 3),
    )


def main() -> None:
    mix = WorkloadMix(
        (
            Workload(
                "ranking", drm1(),
                compressed_day(PEAK_QPS, trough_fraction=0.3, seed=7),
                request_seed=3,
                id_stream=CorrelatedStream(recency_weight=0.35, seed=7),
            ),
            Workload(
                "retrieval", drm2(),
                compressed_day(0.6 * PEAK_QPS, trough_fraction=0.5, seed=8),
                request_seed=4,
                id_stream=CorrelatedStream(recency_weight=0.35, seed=8),
            ),
        )
    )
    serving = ServingConfig(seed=1, service_workers=4)
    configuration = ShardingConfiguration("load-bal", 4)
    plans = [
        build_plan(
            workload.model, configuration,
            estimate_pooling_factors(workload.model, num_requests=300, seed=42),
        )
        for workload in mix.workloads
    ]

    counts = [
        day_requests(PEAK_QPS, 0.3),
        day_requests(0.6 * PEAK_QPS, 0.5),
    ]
    stream = mix.sample(counts)
    colocated = run_mix_configuration(mix, plans, stream, serving)

    # The same per-workload streams, each alone on identical hosts.
    alone = {}
    for workload, plan, count in zip(mix.workloads, plans, counts):
        solo_mix = WorkloadMix((workload,))
        alone[workload.name] = run_mix_configuration(
            solo_mix, [plan], solo_mix.sample(count), serving
        )

    profile = arrival_profile(mix, stream)
    per_workload = colocated.per_workload_e2e()
    rows = []
    for workload in mix.workloads:
        rows.append(quantile_rows(f"{workload.name} (co-located)", per_workload[workload.name]))
        rows.append(quantile_rows(f"{workload.name} (alone)", alone[workload.name].e2e))
    latency_table = format_table(
        ["deployment", "requests", "P50 (ms)", "P99 (ms)"],
        rows,
        title=(
            f"DRM1+DRM2 co-location under diurnal load "
            f"({PEAK_QPS:.0f} QPS peak, {configuration.label} each)"
        ),
    )

    cache_rows = []
    for name, trace in mix.access_traces(stream).items():
        summary = trace_hit_summary(trace, cache_fraction=0.10)
        cache_rows.append((name, trace.total_accesses(), round(summary["overall"], 3)))
    cache_table = format_table(
        ["workload", "accesses", "LRU hit rate @ 10%"],
        cache_rows,
        title="correlated sparse-ID streams (popularity + recency)",
    )

    figure = "\n\n".join([profile, latency_table, cache_table])
    print(figure)
    path = save_artifact("example_diurnal_colocation.txt", figure)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()

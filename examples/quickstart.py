"""Quickstart: shard a recommendation model and measure serving overheads.

Walks the library's core loop end to end:

1. build the paper's DRM1 model (synthetic, calibrated to Table II);
2. prove that sharded numeric execution matches singular execution on a
   reduced-scale materialization;
3. simulate serial serving for singular vs 8-shard load-balanced and
   print the latency/compute overheads (a single cell of Figure 6).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.dlrm import MaterializedModel
from repro.experiments import run_configuration
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.models import drm1
from repro.requests import RequestGenerator, materialize_numeric
from repro.serving import ServingConfig
from repro.sharding import DistributedModel, estimate_pooling_factors, singular_plan
from repro.workloads import SerialArrivals, Workload
from repro.core.types import GIB


def main() -> None:
    model = drm1()
    print(
        f"model {model.name}: {len(model.tables)} embedding tables, "
        f"{model.sparse_bytes / GIB:.1f} GiB sparse capacity "
        f"({model.sparse_fraction:.1%} of the model)"
    )

    # --- numeric equivalence at reduced scale --------------------------------
    tiny = MaterializedModel.build(drm1(scale=1e-6), max_rows=64, seed=7)
    pooling_tiny = estimate_pooling_factors(tiny.config, num_requests=100, seed=9)
    plan_tiny = build_plan(
        tiny.config, ShardingConfiguration("load-bal", 4), pooling_tiny
    )
    distributed = DistributedModel(tiny, plan_tiny)
    request = materialize_numeric(
        tiny.config, RequestGenerator(tiny.config, seed=21).generate(0), seed=5
    )
    singular_scores = tiny.forward(request)
    distributed_scores = distributed.forward(request)
    max_diff = float(np.abs(singular_scores - distributed_scores).max())
    print(
        f"numeric check: distributed scores match singular "
        f"(max |diff| = {max_diff:.2e} over {len(singular_scores)} items, "
        f"{distributed.rpc_op_count} RPC ops in the rewritten graph)"
    )

    # --- serving simulation ---------------------------------------------------
    # The workload subsystem owns what arrives and when: serial blocking
    # replay here; swap the arrival process (PoissonArrivals,
    # PiecewiseRateArrivals.diurnal, MMPPArrivals) or co-locate several
    # workloads with WorkloadMix -- see examples/diurnal_colocation.py.
    workload = Workload("drm1-serial", model, SerialArrivals(), request_seed=3)
    requests = workload.generator().generate_many(150)
    pooling = estimate_pooling_factors(model, num_requests=500, seed=42)
    serving = ServingConfig(seed=1)

    base = run_configuration(model, singular_plan(model), requests, serving)
    plan = build_plan(model, ShardingConfiguration("load-bal", 8), pooling)
    dist = run_configuration(model, plan, requests, serving)

    print(f"\nserial serving, {len(requests)} sampled requests:")
    print(f"{'quantile':>8} {'singular':>12} {'load-bal 8':>12} {'overhead':>10}")
    for q in (50, 90, 99):
        b = np.percentile(base.e2e, q)
        d = np.percentile(dist.e2e, q)
        print(f"{'P' + str(q):>8} {b * 1e3:>10.3f}ms {d * 1e3:>10.3f}ms {(d - b) / b:>+9.1%}")
    cpu_overhead = (
        np.percentile(dist.cpu, 50) - np.percentile(base.cpu, 50)
    ) / np.percentile(base.cpu, 50)
    print(f"aggregate CPU overhead at P50: {cpu_overhead:+.1%} "
          f"(the cost of {int(np.mean([a.rpcs for a in dist.attributions]))} RPCs/request)")


if __name__ == "__main__":
    main()

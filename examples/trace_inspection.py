"""Inspect one request through the cross-layer distributed tracer.

Replays a single ranking request against a 4-shard load-balanced DRM1
deployment, renders the Figure-3-style timeline, and prints the three
attribution breakdowns the paper derives from such traces: the E2E
latency stack, the embedded-portion stack of the bounding shard (with the
skew-safe network-latency derivation), and the aggregate CPU stack.

Run:  python examples/trace_inspection.py
"""

from repro.core.types import US
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.models import drm1
from repro.requests import RequestGenerator
from repro.serving import ClusterSimulation, ServingConfig
from repro.sharding import estimate_pooling_factors
from repro.tracing import attribute_request, render_trace


def print_stack(title: str, stack: dict[str, float]) -> None:
    total = sum(stack.values()) or 1.0
    print(f"\n{title} (total {total / US:.1f} us)")
    for bucket, value in stack.items():
        bar = "#" * int(40 * value / total)
        print(f"  {bucket:<34} {value / US:>9.1f} us  {bar}")


def main() -> None:
    model = drm1()
    pooling = estimate_pooling_factors(model, num_requests=300, seed=42)
    plan = build_plan(model, ShardingConfiguration("load-bal", 4), pooling)

    # Clock skew is injected deliberately: the attribution below is
    # invariant to it (Section IV-B's duration-difference method).
    config = ServingConfig(seed=1, clock_skew_sigma=0.05)
    cluster = ClusterSimulation(model, plan, config)
    request = RequestGenerator(model, seed=3).generate(0)
    cluster.run_serial([request])

    spans = cluster.tracer.for_request(request.request_id)
    print(f"request 0: {request.num_items} items, {request.total_ids} sparse ids, "
          f"{len(spans)} trace spans across {plan.num_shards + 1} servers\n")
    print(render_trace(spans, width=96))

    attribution = attribute_request(spans)
    print_stack("E2E latency stack (Figure 8a)", attribution.latency_stack)
    print_stack(
        "Embedded-portion stack, bounding shard (Figure 8b)",
        attribution.embedded_stack,
    )
    print_stack("Aggregate CPU stack (Figure 9)", attribution.cpu_stack)
    print(
        f"\nnote: servers were given ~50 ms of clock skew; the network-latency"
        f" bucket ({attribution.embedded_stack['Network Latency'] / US:.1f} us)"
        f" is derived from same-server durations, so the skew cancels."
    )


if __name__ == "__main__":
    main()

"""Data-center capacity planning: replication efficiency of sharding.

Implements the paper's Section VII-C argument with numbers: at data-center
QPS, a singular deployment replicates the *entire* 194 GiB model with
every compute-driven replica, while a distributed deployment replicates
dense-only main shards and lets each sparse shard scale independently.
The script sizes both deployments across a QPS sweep and reports servers
and pinned DRAM, plus the SLA fallout of each configuration.

Run:  python examples/capacity_planning.py

Sizing knobs (see ``repro.experiments``): ``REPRO_REQUESTS`` scales the
request sample of any suite-driven study (the simulation fast path makes
500+ cheap); a full configuration matrix can be fanned out over worker
processes with ``repro.experiments.run_suite_parallel`` (identical output
to ``run_suite``, ``REPRO_SWEEP_WORKERS`` caps the pool); throughput
numbers for this pipeline are tracked in ``results/BENCH_throughput.json``
by ``benchmarks/test_perf_throughput.py``.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.types import GIB
from repro.experiments import run_configuration
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.models import drm1
from repro.requests import RequestGenerator
from repro.serving import (
    ReplicationDemand,
    ServingConfig,
    SlaPolicy,
    evaluate_sla,
    memory_efficiency_vs_singular,
    plan_replication,
)
from repro.sharding import estimate_pooling_factors, singular_plan
from repro.workloads import diurnal_qps_curve


def main() -> None:
    model = drm1()
    requests = RequestGenerator(model, seed=3).generate_many(120)
    pooling = estimate_pooling_factors(model, num_requests=500, seed=42)
    serving = ServingConfig(seed=1)

    base = run_configuration(model, singular_plan(model), requests, serving)
    configs = {
        "load-bal 8 shards": build_plan(
            model, ShardingConfiguration("load-bal", 8), pooling
        ),
        "NSBP 8 shards": build_plan(model, ShardingConfiguration("NSBP", 8), pooling),
    }
    results = {
        label: run_configuration(model, plan, requests, serving)
        for label, plan in configs.items()
    }

    # Size the deployment at the trough, the mean, and the peak of a
    # production-style diurnal day (the workload subsystem's shared curve).
    day = diurnal_qps_curve(peak_qps=80_000, trough_fraction=0.25)
    rows = []
    for qps in (int(day.min()), int(np.median(day)), int(day.max())):
        demand = ReplicationDemand(qps=qps)
        singular_deploy = plan_replication(model, base, demand)
        rows.append(
            (
                f"{qps:,}",
                "singular",
                singular_deploy.total_servers,
                singular_deploy.total_memory_bytes / GIB,
                "1.00x",
            )
        )
        for label, result in results.items():
            deploy = plan_replication(model, result, demand)
            rows.append(
                (
                    "",
                    label,
                    deploy.total_servers,
                    deploy.total_memory_bytes / GIB,
                    f"{memory_efficiency_vs_singular(singular_deploy, deploy):.2f}x",
                )
            )
    print(
        format_table(
            ["QPS", "deployment", "servers", "pinned DRAM GiB", "memory efficiency"],
            [(q, d, s, round(m, 1), e) for q, d, s, m, e in rows],
            title="Replication sizing (Section VII-C)",
        )
    )

    # --- SLA fallout ---------------------------------------------------------
    policy = SlaPolicy.from_baseline_quantile(base.e2e, quantile=99, slack=1.1)
    print(f"\nSLA window: {policy.target_latency * 1e3:.2f} ms "
          f"(singular P99 x 1.1)")
    reports = [evaluate_sla("singular", base.e2e, policy)] + [
        evaluate_sla(label, result.e2e, policy) for label, result in results.items()
    ]
    print(
        format_table(
            ["configuration", "fallback rate", "P50 headroom"],
            [(r.label, f"{r.drop_rate:.1%}", f"{r.headroom_p50:.2f}x") for r in reports],
            title="SLA fallback under the singular-derived window",
        )
    )
    print(
        "\ntakeaway: distributed serving pins a fraction of the DRAM at scale;"
        " the latency overhead shows up as a small fallback-rate increase."
    )


if __name__ == "__main__":
    main()

"""Closed-loop capacity planning: SLA-driven deployment search.

The paper argues capacity -- not compute -- drives scale-out (Sections I,
VII-C).  This script runs that argument end to end with the
:class:`repro.planning.CapacityPlanner`:

1. a DRM1+DRM2 diurnal :class:`~repro.workloads.workload.WorkloadMix` is
   simulated, co-located on shared hosts, under every candidate sharding
   configuration (AGGREGATE trace mode; columns are bit-identical to
   FULL);
2. the latency SLA -- derived from the mix's own singular baseline --
   is checked per workload on the simulated latencies;
3. each candidate is sized from the measured per-shard CPU-demand
   columns at several utilization targets, and every server must fit its
   pinned bytes in platform DRAM;
4. the cheapest feasible deployment wins.  The singular deployment meets
   the SLA but cannot pin DRM1+DRM2 (339 GiB) in one 256 GiB server:
   scale-out here is forced by *capacity*, exactly the paper's thesis;
5. the chosen deployment is then sized across the same diurnal day the
   arrivals replayed (`assess_elasticity` consumes the identical
   ``PiecewiseRateArrivals`` rate function), comparing the DRAM-hours a
   singular deployment would have pinned.

The combined report is written to
``results/example_capacity_planning.txt``.

Run:  python examples/capacity_planning.py

Sizing knobs: ``REPRO_REQUESTS`` does not apply here (the request count
is explicit); pass ``parallel=True`` to ``CapacityPlanner.plan`` to fan
candidate simulations over worker processes (identical plan); planner
search latency is tracked as the ``plan_sweep`` entry of
``results/BENCH_throughput*.json``.
"""

from repro.analysis import format_table
from repro.analysis.report import (
    CAPACITY_CANDIDATE_HEADERS,
    CAPACITY_SIZING_HEADERS,
    capacity_candidate_rows,
    capacity_sizing_rows,
    save_artifact,
)
from repro.core.types import GIB
from repro.experiments import ShardingConfiguration, SuiteSettings
from repro.models import drm1, drm2
from repro.planning import (
    CandidateSpace,
    CapacityPlanner,
    assess_elasticity,
    dram_hours_saved,
)
from repro.serving import ServingConfig, TraceMode
from repro.workloads import PiecewiseRateArrivals, Workload, WorkloadMix

RANKING_PEAK_QPS = 50.0
RETRIEVAL_PEAK_QPS = 30.0
REQUESTS_PER_WORKLOAD = 60


def build_mix() -> WorkloadMix:
    return WorkloadMix(
        (
            Workload(
                "ranking", drm1(),
                PiecewiseRateArrivals.diurnal(RANKING_PEAK_QPS, seed=7),
                request_seed=3,
            ),
            Workload(
                "retrieval", drm2(),
                PiecewiseRateArrivals.diurnal(
                    RETRIEVAL_PEAK_QPS, trough_fraction=0.5, seed=8
                ),
                request_seed=4,
            ),
        )
    )


def candidate_table(plan, planner) -> str:
    return format_table(
        CAPACITY_CANDIDATE_HEADERS,
        capacity_candidate_rows(plan.candidates),
        title=(
            "closed-loop search: DRM1+DRM2 diurnal mix, SLA window "
            f"{plan.policy.target_latency * 1e3:.3f} ms "
            f"(singular P99 x {planner.slack:g})"
        ),
    )


def sizing_table(chosen) -> str:
    return format_table(
        CAPACITY_SIZING_HEADERS,
        capacity_sizing_rows(chosen.workloads),
        title=(
            f"chosen: {chosen.label} at {chosen.utilization_target:.0%} "
            f"utilization -- {chosen.total_servers} servers, "
            f"{chosen.total_memory_bytes / GIB:.1f} GiB pinned (shared hosts "
            "reconciled)"
        ),
    )


#: The simulated replay runs at replayable QPS; day-long sizing scales the
#: *same* piecewise rate function to production amplitude (50 -> 60k peak),
#: so replay, SLA check, and elasticity all consume one curve shape.
PRODUCTION_SCALE = 1200.0


def production_day(arrivals: PiecewiseRateArrivals) -> PiecewiseRateArrivals:
    return PiecewiseRateArrivals(
        rates=tuple(rate * PRODUCTION_SCALE for rate in arrivals.rates),
        interval_seconds=arrivals.interval_seconds,
        seed=arrivals.seed,
    )


def elasticity_table(mix, plan, results) -> str:
    """Size singular vs the chosen configuration across the production-
    amplitude version of the diurnal day the arrivals replayed, reusing
    the candidate simulations the planner already ran."""
    chosen = plan.require()
    rows = []
    reports = {}
    for label in ("singular", chosen.label):
        result = results[label]
        for workload in mix.workloads:
            report = assess_elasticity(
                workload.model,
                result,
                production_day(workload.arrivals),
                workload=workload.name,
            )
            reports[(label, workload.name)] = report
            rows.append(
                (
                    label,
                    workload.name,
                    round(report.server_hours, 1),
                    round(report.dram_byte_hours / (1024 * GIB), 2),
                    report.peak_servers,
                    report.trough_servers,
                    f"{report.elasticity_ratio:.2f}x",
                )
            )
    saved = [
        dram_hours_saved(
            reports[("singular", workload.name)],
            reports[(chosen.label, workload.name)],
        )
        for workload in mix.workloads
    ]
    table = format_table(
        ["configuration", "workload", "server-hours", "DRAM TiB-hours",
         "peak", "trough", "breathing"],
        rows,
        title="arrival-conditioned elasticity (the replayed diurnal rate "
        f"function, scaled x{PRODUCTION_SCALE:.0f} to production amplitude)",
    )
    return table + "\n=> DRAM-hours saved vs singular: " + ", ".join(
        f"{workload.name} {factor:.2f}x"
        for workload, factor in zip(mix.workloads, saved)
    )


SEARCH_SPACE = CandidateSpace(
    configurations=(
        ShardingConfiguration("singular"),
        ShardingConfiguration("load-bal", 4),
        ShardingConfiguration("load-bal", 8),
        ShardingConfiguration("NSBP", 8),
    )
)


def main() -> None:
    mix = build_mix()
    planner = CapacityPlanner(
        space=SEARCH_SPACE,
        settings=SuiteSettings(
            num_requests=REQUESTS_PER_WORKLOAD,
            pooling_requests=300,
            serving=ServingConfig(seed=1),
            trace_mode=TraceMode.AGGREGATE,
        ),
    )
    results = {}
    plan = planner.plan(mix, results_sink=results)
    chosen = plan.require()

    report = "\n\n".join(
        [
            candidate_table(plan, planner),
            sizing_table(chosen),
            elasticity_table(mix, plan, results),
            "takeaway: every candidate meets the SLA at low QPS, but only\n"
            "distributed deployments fit DRM1+DRM2 in per-server DRAM --\n"
            "scale-out is capacity-driven -- and across the diurnal day the\n"
            "distributed main tier breathes while the sparse tier's DRAM\n"
            "stays pinned once, not once per compute replica.",
        ]
    )
    print(report)
    path = save_artifact("example_capacity_planning.txt", report)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()

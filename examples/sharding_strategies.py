"""Compare the paper's sharding strategies on DRM1.

Reproduces the heart of the paper interactively: builds every sharding
configuration of Table I, prints the per-shard placement summary
(Table II style), then simulates serial serving and prints each
configuration's latency/compute overhead (Figure 6 style) so the
latency-vs-compute trade-off is visible in one screen.

Run:  python examples/sharding_strategies.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core.types import GIB
from repro.experiments import run_suite, SuiteSettings
from repro.experiments.configs import build_plan, paper_configurations
from repro.models import drm1
from repro.serving import ServingConfig
from repro.sharding import SINGULAR, estimate_pooling_factors, pooling_by_shard


def main() -> None:
    model = drm1()
    pooling = estimate_pooling_factors(model, num_requests=500, seed=42)

    # --- placement summary (Table II style) -----------------------------------
    rows = []
    for configuration in paper_configurations(model.name):
        if configuration.strategy == SINGULAR:
            continue
        plan = build_plan(model, configuration, pooling)
        capacities = [c / GIB for c in plan.capacity_by_shard(model)]
        loads = pooling_by_shard(plan.shards, pooling)
        rows.append(
            (
                plan.label,
                plan.num_shards,
                f"{min(capacities):.1f}..{max(capacities):.1f}",
                f"{max(capacities) / min(capacities):.2f}x",
                f"{max(loads) / max(min(loads), 1e-9):.2f}x",
            )
        )
    print(
        format_table(
            ["configuration", "shards", "capacity GiB", "capacity skew", "pooling skew"],
            rows,
            title="Placement summary (DRM1)",
        )
    )

    # --- serving overheads (Figure 6 style) -----------------------------------
    settings = SuiteSettings(num_requests=120, serving=ServingConfig(seed=1))
    results = run_suite(model, settings)
    base = results[SINGULAR]
    rows = []
    for label, result in results.items():
        if label == SINGULAR:
            continue
        lat = lambda q: (np.percentile(result.e2e, q) - np.percentile(base.e2e, q)) / np.percentile(base.e2e, q)
        cpu = (np.percentile(result.cpu, 50) - np.percentile(base.cpu, 50)) / np.percentile(base.cpu, 50)
        rows.append((label, f"{lat(50):+.1%}", f"{lat(99):+.1%}", f"{cpu:+.1%}"))
    print()
    print(
        format_table(
            ["configuration", "P50 latency", "P99 latency", "P50 compute"],
            rows,
            title=f"Serving overheads vs singular ({settings.num_requests} serial requests)",
        )
    )
    print(
        "\ntakeaway: more shards trade compute overhead for latency;"
        " NSBP minimizes RPCs (compute) at the cost of parallelism (latency)."
    )


if __name__ == "__main__":
    main()

"""Chaos layer: deterministic fault injection, failover, self-healing.

The paper sizes scale-out deployments for latency SLAs on a *healthy*
fleet; this package asks the production question behind capacity-driven
scale-out -- how many replicas keep N-nines SLO retention when hosts
crash mid-replay, shards straggle, and the network spikes.

* :mod:`repro.chaos.faults` -- composable, validated fault experiments
  (:class:`~repro.chaos.faults.FaultSchedule`) attached to a
  :class:`~repro.serving.simulator.ServingConfig`, including correlated
  fault domains (:class:`~repro.chaos.faults.CorrelatedFailure`) and
  domain-aware replica placement (spread vs packed);
* :mod:`repro.chaos.runtime` -- the in-simulation interpreter: replica
  routing, liveness, degradation accounting, the healing controller;
* :mod:`repro.chaos.availability` -- availability/SLO-retention reports
  and arrival-binned timelines;
* :mod:`repro.chaos.experiment` -- replica sweeps under a fault suite
  (:func:`~repro.chaos.experiment.availability_sweep`), serial or
  parallel, byte-identical either way.

Determinism contract (see :mod:`repro.core.rng`): every chaos random
draw comes from dedicated ``substream(seed, "chaos", ...)`` substreams
and fault times are explicit simulation times, so the healthy replay --
and any replay with an empty schedule -- stays byte-identical to a run
without the chaos layer at all.
"""

from repro.chaos.availability import (
    AvailabilityReport,
    AvailabilityWindow,
    ChaosEvent,
    availability_report,
    format_timeline,
    nines,
)
from repro.chaos.experiment import (
    AvailabilityAssessment,
    ChaosOutcome,
    availability_sweep,
    format_assessment,
)
from repro.chaos.faults import (
    PLACEMENTS,
    CorrelatedFailure,
    FaultDomain,
    FaultExperiment,
    FaultSchedule,
    HealingPolicy,
    HostCrash,
    NetworkSpike,
    ReplicaLoss,
    StragglerShard,
)
from repro.chaos.runtime import ChaosRuntime

__all__ = [
    "AvailabilityAssessment",
    "AvailabilityReport",
    "AvailabilityWindow",
    "ChaosEvent",
    "ChaosOutcome",
    "ChaosRuntime",
    "CorrelatedFailure",
    "FaultDomain",
    "FaultExperiment",
    "FaultSchedule",
    "HealingPolicy",
    "HostCrash",
    "NetworkSpike",
    "PLACEMENTS",
    "ReplicaLoss",
    "StragglerShard",
    "availability_report",
    "availability_sweep",
    "format_assessment",
    "format_timeline",
    "nines",
]

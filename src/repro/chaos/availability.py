"""Availability accounting: timelines, windows, and SLO retention.

Chaos replays answer one question: *of the traffic that arrived, how much
was served well?*  A completed request falls into one of three classes:

* **ok** -- full (undegraded) response within the latency SLO;
* **slow** -- full response, but over the SLO;
* **degraded** -- partial (dense-tower-only) response: at least one
  sparse RPC found no live replica and the request shipped without those
  embeddings.

Requests that never completed at all (only possible on an aborted
replay) count as **failed**.  Two headline numbers summarize a replay:

* ``availability`` -- fraction of requests that received a *full*
  response, however slow: ``(ok + slow) / total``.  This is service
  availability in the N-nines sense (a degraded response means the
  embedding tier was unavailable to that request).
* ``slo_retention`` -- fraction that received a full response *within*
  the SLO: ``ok / total``.  This is the capacity planner's objective:
  "how much of the healthy SLO compliance survives the fault?".

The **timeline** view bins requests by *arrival* time, so a window's
availability describes the experience of traffic that arrived during it
-- crash, detection, and recovery show up as a dip and a ramp exactly
where they occur in simulation time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChaosEvent:
    """One fault or healing transition, stamped with simulation time."""

    time: float
    kind: str
    shard: int | None = None
    server: str | None = None
    detail: str = ""

    def describe(self) -> str:
        parts = [f"t={self.time:8.3f}s", self.kind]
        if self.shard is not None:
            parts.append(f"shard {self.shard}")
        if self.server is not None:
            parts.append(self.server)
        if self.detail:
            parts.append(f"({self.detail})")
        return "  ".join(parts)


@dataclass(frozen=True)
class AvailabilityWindow:
    """Request outcomes for traffic arriving in ``[start, end)``."""

    start: float
    end: float
    arrived: int
    ok: int
    slow: int
    degraded: int
    failed: int

    @property
    def availability(self) -> float:
        if self.arrived == 0:
            return 1.0
        return (self.ok + self.slow) / self.arrived

    @property
    def slo_retention(self) -> float:
        if self.arrived == 0:
            return 1.0
        return self.ok / self.arrived


@dataclass(frozen=True)
class AvailabilityReport:
    """One replay's availability summary + arrival-binned timeline."""

    slo_latency: float
    window: float
    total: int
    ok: int
    slow: int
    degraded: int
    failed: int
    retried: int
    """Requests that retried at least one RPC (successful failovers show
    up here rather than in ``degraded``)."""

    windows: tuple[AvailabilityWindow, ...]

    @property
    def availability(self) -> float:
        if self.total == 0:
            return 1.0
        return (self.ok + self.slow) / self.total

    @property
    def slo_retention(self) -> float:
        if self.total == 0:
            return 1.0
        return self.ok / self.total

    def nines(self) -> float:
        """Availability expressed as a number of nines (capped at 9)."""
        return nines(self.availability)


def nines(value: float) -> float:
    """``0.999 -> 3.0``; capped at 9 so a perfect replay stays finite."""
    if value >= 1.0:
        return 9.0
    if value <= 0.0:
        return 0.0
    return min(9.0, -math.log10(1.0 - value))


def availability_report(
    result,
    arrival_times: np.ndarray,
    slo_latency: float,
    window: float = 0.5,
) -> AvailabilityReport:
    """Classify one replay's requests against an SLO, binned by arrival.

    ``result`` is a :class:`~repro.experiments.runner.RunResult` carrying
    the chaos columns (``request_ids``/``status``/``retries``);
    ``arrival_times[rid]`` is request ``rid``'s arrival time.  Requests
    absent from the result (an aborted replay) are counted as failed, in
    the window they arrived in.
    """
    if not float(slo_latency) > 0.0:
        raise ValueError(f"slo_latency must be positive, got {slo_latency!r}")
    if not float(window) > 0.0:
        raise ValueError(f"window must be positive, got {window!r}")
    arrival_times = np.asarray(arrival_times, dtype=np.float64)
    total = len(arrival_times)

    request_ids = result.request_ids
    status = result.status
    e2e = result.e2e
    retries = result.retries

    degraded_mask = status != 0
    ok_mask = ~degraded_mask & (e2e <= slo_latency)
    slow_mask = ~degraded_mask & (e2e > slo_latency)
    failed_ids = np.setdiff1d(np.arange(total, dtype=np.int64), request_ids)

    span = float(arrival_times.max()) if total else 0.0
    nbins = max(1, int(span / window) + 1)

    def binned(ids: np.ndarray) -> np.ndarray:
        if len(ids) == 0:
            return np.zeros(nbins, dtype=np.int64)
        bins = np.minimum(
            (arrival_times[ids] / window).astype(np.int64), nbins - 1
        )
        return np.bincount(bins, minlength=nbins)

    per_ok = binned(request_ids[ok_mask])
    per_slow = binned(request_ids[slow_mask])
    per_degraded = binned(request_ids[degraded_mask])
    per_failed = binned(failed_ids)
    per_arrived = per_ok + per_slow + per_degraded + per_failed

    windows = tuple(
        AvailabilityWindow(
            start=index * window,
            end=(index + 1) * window,
            arrived=int(per_arrived[index]),
            ok=int(per_ok[index]),
            slow=int(per_slow[index]),
            degraded=int(per_degraded[index]),
            failed=int(per_failed[index]),
        )
        for index in range(nbins)
    )
    return AvailabilityReport(
        slo_latency=float(slo_latency),
        window=float(window),
        total=total,
        ok=int(np.count_nonzero(ok_mask)),
        slow=int(np.count_nonzero(slow_mask)),
        degraded=int(np.count_nonzero(degraded_mask)),
        failed=int(len(failed_ids)),
        retried=int(np.count_nonzero(retries > 0)),
        windows=windows,
    )


def format_timeline(
    events: tuple[ChaosEvent, ...] | list[ChaosEvent],
    report: AvailabilityReport | None = None,
) -> list[str]:
    """Human-readable merged timeline: fault/heal events, and (with a
    report) the per-window availability ramp."""
    lines = [event.describe() for event in events]
    if report is not None:
        for win in report.windows:
            if win.arrived == 0:
                continue
            lines.append(
                f"t=[{win.start:7.3f}s, {win.end:7.3f}s)  "
                f"availability {win.availability:7.2%}  "
                f"slo-retention {win.slo_retention:7.2%}  "
                f"({win.ok} ok / {win.slow} slow / {win.degraded} degraded"
                f"{f' / {win.failed} failed' if win.failed else ''}"
                f" of {win.arrived})"
            )
    return lines

"""Chaos runtime: replica routing, liveness, injection, self-healing.

:class:`ChaosRuntime` interprets one
:class:`~repro.chaos.faults.FaultSchedule` against a live
:class:`~repro.serving.simulator.ClusterSimulation`.  It owns everything
the healthy serving path must not know about:

* the **replica sets** -- each sparse shard index is served by
  ``schedule.replicas`` hosts (plus any healed ones), round-robin routed
  via :meth:`route`;
* **liveness** -- crash/restart/loss experiments run as ordinary engine
  processes flipping per-host alive bits, so fault transitions interleave
  deterministically with request events (same-time ordering follows
  process creation order, and all chaos processes are created before the
  replay driver);
* **degradation accounting** -- per-request ``degraded``/``retries``
  counters the tracing layer folds into result columns;
* the **healing controller** -- a heartbeat process that detects shards
  below their replica target, and re-replicates after a configurable
  detection + recovery lag, emitting ``detected``/``healed`` timeline
  events.  The controller ticks only up to a bounded horizon derived from
  the schedule (last fault + detection lag + recovery lag + slack), so
  the event heap always drains and the replay terminates.

The runtime receives a *server factory* from the cluster instead of
importing :class:`~repro.serving.simulator.SimServer`, keeping the
dependency one-directional (serving -> chaos, lazily).

Fault model granularity: a crash aborts in-flight work at *segment
boundaries* -- an RPC in service on a crashed host completes the segment
it is in (deserialization, SLS gather, ...), then notices the host is
dead at the next instrumented boundary, releases the worker, and aborts
(counted in :attr:`ChaosRuntime.aborted`); the client pays
``failover_timeout`` and retries the next live replica, or -- with none
left -- degrades to a dense-only partial result.  Dead-on-arrival hosts
are still discovered by the client at arrival time: the RPC pays the
network trip, finds the host dead, pays ``failover_timeout``, and fails
over.  Work already past response serialization is considered committed
(the response is on the wire) and delivers normally.

Fault domains: with ``schedule.domains > 1`` every host is assigned to
one :class:`~repro.chaos.faults.FaultDomain` by the schedule's
``placement`` strategy (spread stripes a shard's replicas across
domains; packed keeps them together), and a
:class:`~repro.chaos.faults.CorrelatedFailure` crashes a whole domain
through the dedicated ``(seed, "chaos", "correlated")`` substream.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.chaos.availability import ChaosEvent
from repro.chaos.faults import (
    CorrelatedFailure,
    FaultDomain,
    FaultSchedule,
    HealingPolicy,
    HostCrash,
    NetworkSpike,
    ReplicaLoss,
    StragglerShard,
)


class ChaosRuntime:
    """Interprets a :class:`FaultSchedule` for one cluster replay."""

    def __init__(
        self,
        schedule: FaultSchedule,
        engine,
        primaries: list,
        make_server: Callable[[str], object],
        spike_rng=None,
        corr_rng=None,
    ):
        self.schedule = schedule
        self.engine = engine
        self.make_server = make_server
        self.num_shards = len(primaries)
        self.failover_timeout = schedule.failover_timeout
        self._validate(schedule)

        #: Replica sets per shard index: slot 0 is the healthy primary
        #: (``sparse-{i}``), slots 1..R-1 the static replicas, and healed
        #: hosts append after.  Replica-major construction order keeps the
        #: primaries' clock-skew draws identical to the no-chaos cluster.
        self.replicas: dict[int, list] = {
            shard: [server] for shard, server in enumerate(primaries)
        }
        for clone in range(1, schedule.replicas):
            for shard in range(self.num_shards):
                self.replicas[shard].append(
                    make_server(f"sparse-{shard}-r{clone}")
                )
        self._alive: dict[str, bool] = {
            server.name: True
            for servers in self.replicas.values()
            for server in servers
        }
        self._round_robin = [0] * self.num_shards

        #: Per-request fault accounting: request id -> [degraded, retries].
        self.flags: dict[int, list[int]] = {}
        #: Fault/heal transitions in simulation-time order.
        self.timeline: list[ChaosEvent] = []
        #: In-flight RPC attempts aborted by a mid-service crash.
        self.aborted = 0

        self._active_stragglers: list[StragglerShard] = []
        self._active_spikes: list[NetworkSpike] = []
        self._spike_rng = spike_rng
        self._corr_rng = corr_rng
        self._misses: dict[int, int] = {}
        self._pending_heals: dict[int, int] = {}
        self._heal_seq = 0

        #: Fault-domain assignment: host name -> domain index, from the
        #: schedule's placement strategy.  Healed hosts are assigned as
        #: they join (same formula, their replica slot).
        self._domain_of: dict[str, int] = {}
        for shard, servers in self.replicas.items():
            for slot, server in enumerate(servers):
                self._domain_of[server.name] = self.domain_for(shard, slot)

    # -- fault domains -----------------------------------------------------
    def domain_for(self, shard: int, slot: int) -> int:
        """Fault domain of replica ``slot`` of ``shard`` (placement map)."""
        domains = self.schedule.domains
        if domains <= 1:
            return 0
        if self.schedule.placement == "packed":
            return shard % domains
        return (shard + slot) % domains

    def fault_domains(self) -> tuple[FaultDomain, ...]:
        """Current domain membership snapshot (includes healed hosts)."""
        members: dict[int, list[str]] = {
            domain: [] for domain in range(max(1, self.schedule.domains))
        }
        for shard in range(self.num_shards):
            for server in self.replicas[shard]:
                members[self._domain_of[server.name]].append(server.name)
        return tuple(
            FaultDomain(index=domain, hosts=tuple(hosts))
            for domain, hosts in sorted(members.items())
        )

    def _validate(self, schedule: FaultSchedule) -> None:
        for experiment in schedule.experiments:
            shard = getattr(experiment, "shard", None)
            if shard is not None and shard >= self.num_shards:
                raise ValueError(
                    f"{type(experiment).__name__} targets shard {shard}, but "
                    f"the deployment has only {self.num_shards} sparse "
                    f"shard(s)"
                )
            replica = getattr(experiment, "replica", None)
            if replica is not None and not (
                -schedule.replicas <= replica < schedule.replicas
            ):
                raise ValueError(
                    f"{type(experiment).__name__} targets replica {replica}, "
                    f"but the schedule provisions {schedule.replicas} "
                    f"replica(s) per shard"
                )

    # -- process wiring ----------------------------------------------------
    def start(self) -> None:
        """Spawn every injection process (and the healing controller).

        Must run before the replay driver process is created so that
        same-timestamp fault transitions order before request arrivals.
        """
        engine = self.engine
        for experiment in self.schedule.experiments:
            if isinstance(experiment, HostCrash):
                engine.process(self._run_crash(experiment))
            elif isinstance(experiment, ReplicaLoss):
                engine.process(self._run_loss(experiment))
            elif isinstance(experiment, StragglerShard):
                engine.process(self._run_straggler(experiment))
            elif isinstance(experiment, NetworkSpike):
                engine.process(self._run_spike(experiment))
            elif isinstance(experiment, CorrelatedFailure):
                engine.process(self._run_correlated(experiment))
        if self.schedule.healing is not None:
            engine.process(self._run_controller(self.schedule.healing))

    # -- liveness ----------------------------------------------------------
    def _set_alive(self, shard: int, replica: int, alive: bool, kind: str) -> None:
        server = self.replicas[shard][replica]
        self._alive[server.name] = alive
        live = self.live_replicas(shard)
        self.timeline.append(
            ChaosEvent(
                time=self.engine.now,
                kind=kind,
                shard=shard,
                server=server.name,
                detail=f"{live} live replica(s)",
            )
        )

    def _run_crash(self, experiment: HostCrash):
        yield float(experiment.at)
        self._set_alive(experiment.shard, experiment.replica, False, "crash")
        if experiment.restart_after is not None:
            yield float(experiment.restart_after)
            self._set_alive(experiment.shard, experiment.replica, True, "restart")

    def _run_loss(self, experiment: ReplicaLoss):
        yield float(experiment.at)
        self._set_alive(
            experiment.shard, experiment.replica, False, "replica-loss"
        )

    def _run_correlated(self, experiment: CorrelatedFailure):
        yield float(experiment.at)
        # Victims are snapshotted at fire time, in shard-major slot order
        # -- the deterministic order the stagger offsets are drawn in.
        victims = [
            (shard, slot)
            for shard in range(self.num_shards)
            for slot, server in enumerate(self.replicas[shard])
            if self._domain_of[server.name] == experiment.domain
        ]
        self.timeline.append(
            ChaosEvent(
                time=self.engine.now,
                kind="domain-crash",
                detail=f"domain {experiment.domain}: {len(victims)} host(s)",
            )
        )
        offsets = [0.0] * len(victims)
        if experiment.stagger > 0.0 and self._corr_rng is not None:
            offsets = [
                float(self._corr_rng.uniform(0.0, experiment.stagger))
                for _ in victims
            ]
        for (shard, slot), offset in zip(victims, offsets):
            self.engine.process(
                self._run_domain_victim(experiment, shard, slot, offset)
            )

    def _run_domain_victim(
        self, experiment: CorrelatedFailure, shard: int, slot: int, offset: float
    ):
        if offset > 0.0:
            yield offset
        self._set_alive(shard, slot, False, "correlated-crash")
        if experiment.restart_after is not None:
            yield float(experiment.restart_after)
            self._set_alive(shard, slot, True, "restart")

    def live_replicas(self, shard: int) -> int:
        alive = self._alive
        return sum(1 for server in self.replicas[shard] if alive[server.name])

    def is_live(self, server) -> bool:
        return self._alive[server.name]

    # -- routing & degradation --------------------------------------------
    def route(self, shard: int):
        """Next live replica of ``shard`` (round-robin), or ``None``.

        Pure counter arithmetic -- no RNG -- so routing is deterministic
        and, with one live replica, byte-identical to direct addressing.
        """
        servers = self.replicas[shard]
        n = len(servers)
        start = self._round_robin[shard]
        alive = self._alive
        for offset in range(n):
            index = (start + offset) % n
            server = servers[index]
            if alive[server.name]:
                self._round_robin[shard] = (index + 1) % n
                return server
        return None

    def count_retry(self, request_id: int) -> None:
        entry = self.flags.get(request_id)
        if entry is None:
            entry = self.flags[request_id] = [0, 0]
        entry[1] += 1

    def count_abort(self, request_id: int) -> None:
        """One in-flight attempt aborted by a mid-service crash; the
        abort is also a failover (the client retries a live replica), so
        it counts into the request's ``retries`` column too."""
        self.aborted += 1
        self.count_retry(request_id)

    def mark_degraded(self, request_id: int) -> None:
        entry = self.flags.get(request_id)
        if entry is None:
            entry = self.flags[request_id] = [0, 0]
        entry[0] += 1

    # -- service & network perturbation -----------------------------------
    def _run_straggler(self, experiment: StragglerShard):
        yield float(experiment.start)
        self._active_stragglers.append(experiment)
        self.timeline.append(
            ChaosEvent(
                time=self.engine.now,
                kind="straggler-start",
                shard=experiment.shard,
                detail=f"x{experiment.multiplier:g}",
            )
        )
        yield float(experiment.duration)
        self._active_stragglers.remove(experiment)
        self.timeline.append(
            ChaosEvent(
                time=self.engine.now,
                kind="straggler-end",
                shard=experiment.shard,
            )
        )

    def _run_spike(self, experiment: NetworkSpike):
        yield float(experiment.start)
        self._active_spikes.append(experiment)
        self.timeline.append(
            ChaosEvent(
                time=self.engine.now,
                kind="spike-start",
                detail=(
                    f"x{experiment.multiplier:g}"
                    f"+{experiment.extra_latency * 1e6:g}us"
                ),
            )
        )
        yield float(experiment.duration)
        self._active_spikes.remove(experiment)
        self.timeline.append(
            ChaosEvent(time=self.engine.now, kind="spike-end")
        )

    def scale_service(self, shard: int, delay: float, server=None) -> float:
        """Apply active straggler multipliers to a shard-side delay.

        ``server`` identifies which replica is doing the work: a
        replica-scoped straggler (``StragglerShard.replica`` set) only
        slows that slot, so a hedged attempt on a sibling replica runs
        at full speed.  ``server=None`` keeps the historical shard-wide
        behaviour.
        """
        for straggler in self._active_stragglers:
            if straggler.shard != shard:
                continue
            if straggler.replica is not None and server is not None:
                slots = self.replicas[shard]
                if (
                    straggler.replica >= len(slots)
                    or slots[straggler.replica] is not server
                ):
                    continue
            delay *= straggler.multiplier
        return delay

    def network_delay(self, delay: float) -> float:
        """Apply active network spikes to an RPC one-way delay.

        Spike jitter draws from the dedicated chaos substream, never from
        the healthy fabric's jitter stream; with no active spike this is
        an exact identity.
        """
        for spike in self._active_spikes:
            delay = delay * spike.multiplier + spike.extra_latency
            if spike.jitter_sigma > 0.0 and self._spike_rng is not None:
                delay *= math.exp(
                    float(self._spike_rng.normal(0.0, spike.jitter_sigma))
                )
        return delay

    # -- self-healing controller -------------------------------------------
    def controller_horizon(self, policy: HealingPolicy) -> float:
        """Last heartbeat worth taking: after every scheduled fault has
        fired, been detectable, and had time to recover, plus slack."""
        return (
            self.schedule.horizon()
            + policy.detection_lag()
            + policy.recovery_lag
            + 2.0 * policy.check_interval
        )

    def _run_controller(self, policy: HealingPolicy):
        interval = float(policy.check_interval)
        horizon = self.controller_horizon(policy)
        elapsed = 0.0
        while elapsed + interval <= horizon:
            yield interval
            elapsed += interval
            self._heartbeat(policy)

    def _heartbeat(self, policy: HealingPolicy) -> None:
        target = self.schedule.replicas
        for shard in range(self.num_shards):
            live = self.live_replicas(shard)
            deficit = target - live - self._pending_heals.get(shard, 0)
            if deficit <= 0:
                self._misses[shard] = 0
                continue
            misses = self._misses.get(shard, 0) + 1
            self._misses[shard] = misses
            if misses < policy.consecutive_misses:
                continue
            self._misses[shard] = 0
            for _ in range(deficit):
                self._pending_heals[shard] = (
                    self._pending_heals.get(shard, 0) + 1
                )
                self.timeline.append(
                    ChaosEvent(
                        time=self.engine.now,
                        kind="detected",
                        shard=shard,
                        detail=f"{live}/{target} live",
                    )
                )
                self.engine.process(self._run_recovery(shard, policy))

    def _run_recovery(self, shard: int, policy: HealingPolicy):
        if policy.recovery_lag > 0.0:
            yield float(policy.recovery_lag)
        self._heal_seq += 1
        name = f"sparse-{shard}-h{self._heal_seq}"
        server = self.make_server(name)
        self.replicas[shard].append(server)
        self._domain_of[name] = self.domain_for(
            shard, len(self.replicas[shard]) - 1
        )
        self._alive[name] = True
        self._pending_heals[shard] -= 1
        self.timeline.append(
            ChaosEvent(
                time=self.engine.now,
                kind="healed",
                shard=shard,
                server=name,
                detail=f"{self.live_replicas(shard)} live replica(s)",
            )
        )

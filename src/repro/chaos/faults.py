"""Fault experiments: *what* breaks, *when*, and for *how long*.

A :class:`FaultSchedule` is a deterministic, composable description of a
chaos experiment over one simulated replay: host crashes (with optional
restart), permanently lost replicas, straggler shards (a service-time
multiplier over an interval), and network latency/jitter spikes.  It is
attached to a :class:`~repro.serving.simulator.ServingConfig` via its
``chaos`` field and interpreted by
:class:`~repro.chaos.runtime.ChaosRuntime`, which hooks the DES replay.

Everything here is pure data -- validated, frozen, picklable -- so a
schedule travels unchanged to parallel sweep workers, and identical
schedules replay identical fault timelines.

Determinism contract: all fault *times* are explicit simulation times
(never drawn), and any chaos randomness (e.g. spike jitter) draws from
dedicated ``substream(seed, "chaos", ...)`` substreams, so the healthy
request/jitter/skew streams are never consumed by fault machinery.  An
**empty** schedule with ``replicas=1`` and no healing injects nothing and
is byte-identical to running without a schedule at all
(regression-tested in ``tests/test_chaos.py``).
"""

from __future__ import annotations

from dataclasses import dataclass


def _require_nonnegative(name: str, value: float) -> float:
    value = float(value)
    if not value >= 0.0:  # also rejects NaN
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def _require_shard(shard: int) -> int:
    if int(shard) < 0:
        raise ValueError(
            f"fault experiments target sparse shard indices (>= 0), got "
            f"{shard!r}; main-tier faults are not modeled"
        )
    return int(shard)


@dataclass(frozen=True)
class HostCrash:
    """One replica of a sparse shard crashes at ``at``.

    With ``restart_after`` set, the same host comes back that many
    seconds later; otherwise the crash is permanent (only a
    :class:`HealingPolicy` can restore the shard's redundancy).  While a
    host is down, new RPC arrivals fail over to a live replica of the
    shard or -- with none left -- degrade to dense-only partial results.
    """

    shard: int
    at: float
    restart_after: float | None = None
    replica: int = 0
    """Replica slot to kill: 0 is the primary ``sparse-{shard}`` host,
    ``k`` the ``sparse-{shard}-r{k}`` replica."""

    def __post_init__(self):
        _require_shard(self.shard)
        _require_nonnegative("at", self.at)
        if self.restart_after is not None:
            _require_nonnegative("restart_after", self.restart_after)
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica!r}")

    def end_time(self) -> float:
        return self.at + (self.restart_after or 0.0)


@dataclass(frozen=True)
class ReplicaLoss:
    """Permanent loss of one replica of a shard at ``at``.

    Equivalent to a :class:`HostCrash` with no restart; kept as its own
    experiment because it names the *capacity* event (redundancy lost,
    healing must re-replicate) rather than a transient host failure.
    ``replica=-1`` (the default) kills the highest replica slot.
    """

    shard: int
    at: float
    replica: int = -1

    def __post_init__(self):
        _require_shard(self.shard)
        _require_nonnegative("at", self.at)

    def end_time(self) -> float:
        return self.at


@dataclass(frozen=True)
class StragglerShard:
    """A shard serves slowly for an interval (service-time multiplier).

    Every component of the shard-side service (deserialization, fixed
    service time, framework overhead, SLS work, response serialization)
    is scaled by ``multiplier`` while the window is active; overlapping
    stragglers on the same shard compose multiplicatively.  With
    ``replica=None`` (the default) all replicas of the shard straggle
    together (a shard-local cause: compaction, page cache loss); with a
    replica slot set, only that host straggles (a host-local cause) --
    the regime where hedged requests to a healthy sibling replica win.
    """

    shard: int
    start: float
    duration: float
    multiplier: float = 4.0
    replica: int | None = None
    """Replica slot that straggles: ``None`` slows every replica of the
    shard; ``k`` slows only slot ``k`` (0 = the primary)."""

    def __post_init__(self):
        _require_shard(self.shard)
        _require_nonnegative("start", self.start)
        _require_nonnegative("duration", self.duration)
        if not self.multiplier >= 1.0:
            raise ValueError(
                f"straggler multiplier must be >= 1, got {self.multiplier!r}"
            )
        if self.replica is not None and self.replica < 0:
            raise ValueError(
                f"replica must be >= 0 (or None for all), got {self.replica!r}"
            )

    def end_time(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class NetworkSpike:
    """Fabric degradation over an interval: every RPC one-way delay is
    scaled by ``multiplier``, then ``extra_latency`` is added, then (with
    ``jitter_sigma`` > 0) the sum is scaled by a lognormal factor drawn
    from the dedicated ``(seed, "chaos", "network")`` substream -- chaos
    jitter never consumes the healthy fabric's jitter stream."""

    start: float
    duration: float
    extra_latency: float = 0.0
    multiplier: float = 1.0
    jitter_sigma: float = 0.0

    def __post_init__(self):
        _require_nonnegative("start", self.start)
        _require_nonnegative("duration", self.duration)
        _require_nonnegative("extra_latency", self.extra_latency)
        _require_nonnegative("jitter_sigma", self.jitter_sigma)
        if not self.multiplier >= 1.0:
            raise ValueError(
                f"spike multiplier must be >= 1, got {self.multiplier!r}"
            )

    def end_time(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class FaultDomain:
    """A correlated-failure blast radius (rack, power domain, AZ).

    Built by the chaos runtime from the schedule's ``domains`` count and
    ``placement`` strategy: every sparse host is assigned to exactly one
    domain, and a :class:`CorrelatedFailure` kills a whole domain at
    once.  Pure data -- the runtime's
    :meth:`~repro.chaos.runtime.ChaosRuntime.fault_domains` snapshot.
    """

    index: int
    hosts: tuple[str, ...] = ()

    def __post_init__(self):
        if self.index < 0:
            raise ValueError(f"domain index must be >= 0, got {self.index!r}")
        object.__setattr__(self, "hosts", tuple(self.hosts))


@dataclass(frozen=True)
class CorrelatedFailure:
    """Every host of one fault domain crashes together at ``at``.

    The correlated multi-host failure the ROADMAP leaves open: a rack
    power event or top-of-rack switch loss takes out all hosts sharing
    the domain, not one replica.  With ``stagger`` > 0, each victim's
    onset is offset by an independent draw from ``U[0, stagger)`` on the
    dedicated ``(seed, "chaos", "correlated")`` substream (breakers trip
    host-by-host); with ``restart_after`` set, each victim restarts that
    many seconds after its own crash.  Whether the replay degrades or
    merely fails over is decided by the schedule's ``placement``: spread
    placement leaves every shard a live replica in another domain,
    packed placement loses whole shards.
    """

    domain: int
    at: float
    restart_after: float | None = None
    stagger: float = 0.0

    def __post_init__(self):
        if int(self.domain) < 0:
            raise ValueError(f"domain must be >= 0, got {self.domain!r}")
        _require_nonnegative("at", self.at)
        if self.restart_after is not None:
            _require_nonnegative("restart_after", self.restart_after)
        _require_nonnegative("stagger", self.stagger)

    def end_time(self) -> float:
        return self.at + self.stagger + (self.restart_after or 0.0)


FaultExperiment = (
    HostCrash | ReplicaLoss | StragglerShard | NetworkSpike | CorrelatedFailure
)

#: Valid domain-aware replica placement strategies: ``"spread"`` places
#: replica slot ``r`` of shard ``s`` in domain ``(s + r) % domains`` (no
#: shard loses more than one replica per domain crash); ``"packed"``
#: places every replica of shard ``s`` in domain ``s % domains`` (a
#: domain crash takes out whole shards -- the anti-pattern the planner
#: sweep quantifies).
PLACEMENTS = ("spread", "packed")


@dataclass(frozen=True)
class HealingPolicy:
    """The self-healing controller's reaction speed.

    A heartbeat fires every ``check_interval`` seconds; a shard whose
    live replica count is below the schedule's target for
    ``consecutive_misses`` consecutive heartbeats is *detected* as
    unhealthy (detection lag is therefore roughly
    ``consecutive_misses * check_interval``), and each missing replica is
    re-replicated onto a fresh host that joins the routing set
    ``recovery_lag`` seconds later.
    """

    check_interval: float = 0.25
    consecutive_misses: int = 2
    recovery_lag: float = 2.0

    def __post_init__(self):
        if not float(self.check_interval) > 0.0:
            raise ValueError(
                f"check_interval must be positive, got {self.check_interval!r}"
            )
        if self.consecutive_misses < 1:
            raise ValueError(
                f"consecutive_misses must be >= 1, got {self.consecutive_misses!r}"
            )
        _require_nonnegative("recovery_lag", self.recovery_lag)

    def detection_lag(self) -> float:
        """Worst-case time from failure to detection."""
        return self.consecutive_misses * self.check_interval


@dataclass(frozen=True)
class FaultSchedule:
    """A full chaos experiment: faults + redundancy + failover + healing.

    ``replicas`` is the sparse-tier redundancy: every shard index is
    served by that many hosts (primary plus ``replicas - 1`` clones),
    round-robin routed.  ``failover_timeout`` is what an RPC pays to
    discover a dead host (connection timeout) before retrying a live
    replica or degrading.  ``healing`` enables the self-healing
    controller; ``None`` leaves failures to scheduled restarts only.
    """

    experiments: tuple[FaultExperiment, ...] = ()
    replicas: int = 1
    failover_timeout: float = 2e-3
    healing: HealingPolicy | None = None

    domains: int = 1
    """Number of fault domains the sparse hosts are placed across; a
    :class:`CorrelatedFailure` crashes one whole domain.  ``1`` puts
    every host in the same (never-jointly-crashed) domain."""

    placement: str = "spread"
    """Domain-aware replica placement strategy (:data:`PLACEMENTS`):
    ``"spread"`` stripes a shard's replicas across domains, ``"packed"``
    keeps them in one."""

    def __post_init__(self):
        object.__setattr__(self, "experiments", tuple(self.experiments))
        for experiment in self.experiments:
            if not isinstance(
                experiment,
                (
                    HostCrash,
                    ReplicaLoss,
                    StragglerShard,
                    NetworkSpike,
                    CorrelatedFailure,
                ),
            ):
                raise TypeError(
                    f"experiments must be FaultExperiment instances, "
                    f"got {experiment!r}"
                )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas!r}")
        _require_nonnegative("failover_timeout", self.failover_timeout)
        if self.domains < 1:
            raise ValueError(f"domains must be >= 1, got {self.domains!r}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        for experiment in self.experiments:
            if (
                isinstance(experiment, CorrelatedFailure)
                and experiment.domain >= self.domains
            ):
                raise ValueError(
                    f"CorrelatedFailure targets domain {experiment.domain}, "
                    f"but the schedule provisions {self.domains} domain(s)"
                )

    @property
    def is_empty(self) -> bool:
        """True when the schedule injects nothing at all."""
        return not self.experiments and self.healing is None

    def horizon(self) -> float:
        """Last scheduled fault transition (0.0 for an empty schedule)."""
        return max(
            (experiment.end_time() for experiment in self.experiments),
            default=0.0,
        )

"""Chaos experiments end to end: replica sweeps and SLO retention.

:func:`availability_sweep` is the closed loop the ROADMAP asks for: take
one deployment candidate (a sharding configuration for a workload or
mix), replay it healthy to fix the latency SLO, then re-simulate it under
the same fault experiments at increasing replica counts and measure what
fraction of traffic still gets a full, in-SLO response.  The resulting
:class:`AvailabilityAssessment` answers the production sizing question
directly: ``assessment.replicas_for(0.999)``.

Determinism: the request stream is sampled once in the parent and shared
by every replica count; each replay's RNG substreams are pure functions
of (seed, configuration), and chaos draws use dedicated substreams -- so
a parallel sweep (fork pool, one process per cluster replay: the healthy
baseline and every replica count together) is byte-identical to the
serial one, exactly like the suite runners in
:mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.chaos.availability import (
    AvailabilityReport,
    ChaosEvent,
    availability_report,
)
from repro.chaos.faults import FaultExperiment, FaultSchedule, HealingPolicy

if TYPE_CHECKING:
    from repro.resilience.policy import ResiliencePolicy
from repro.experiments.configs import ShardingConfiguration, build_plan
from repro.experiments.parallel import run_cluster_tasks
from repro.experiments.runner import (
    RunResult,
    SuiteSettings,
    mix_stream,
    run_mix_configuration,
)
from repro.sharding.pooling import estimate_pooling_factors
from repro.workloads.workload import Workload, WorkloadMix


@dataclass(frozen=True)
class ChaosOutcome:
    """One replica count's replay under the fault suite."""

    replicas: int
    report: AvailabilityReport
    timeline: tuple[ChaosEvent, ...]
    result: RunResult


@dataclass(frozen=True)
class AvailabilityAssessment:
    """A full replica sweep under one fault suite."""

    slo_latency: float
    """Latency SLO the retention numbers are measured against (seconds)."""

    baseline_p99: float
    """Healthy (no-fault) p99 latency the SLO was derived from."""

    outcomes: tuple[ChaosOutcome, ...]

    policy: "ResiliencePolicy | None" = None
    """Resilience policy the faulted replays ran under (hedge quantile
    already resolved against the healthy baseline); ``None`` for plain
    failover-only sweeps."""

    domains: int = 1
    """Fault domains the sparse hosts were placed across."""

    placement: str = "spread"
    """Domain-aware replica placement the sweep used."""

    def replicas_for(self, retention: float) -> int | None:
        """Smallest swept replica count whose SLO retention meets
        ``retention`` (e.g. ``0.999``); ``None`` if none does."""
        for outcome in self.outcomes:
            if outcome.report.slo_retention >= retention:
                return outcome.replicas
        return None


def format_assessment(
    assessment: AvailabilityAssessment,
    *,
    timeline_replicas: int | None = None,
    retention_targets: Sequence[float] = (0.99, 0.999),
) -> list[str]:
    """Render an assessment as deterministic report lines.

    Shared by ``repro chaos``, the example script, and the CI artifact so
    they all emit the same (byte-stable) report: SLO provenance, the
    per-replica availability table, ``replicas_for`` answers for the
    ``retention_targets``, and the chaos timeline of one replica count
    (``timeline_replicas``, default the first/lowest swept count).
    """
    from repro.chaos.availability import format_timeline, nines

    lines = [
        f"healthy p99 {assessment.baseline_p99 * 1e3:.3f} ms, "
        f"SLO {assessment.slo_latency * 1e3:.3f} ms",
    ]
    if assessment.domains > 1:
        lines.append(
            f"fault domains: {assessment.domains} "
            f"(placement {assessment.placement})"
        )
    if assessment.policy is not None:
        lines.append(f"resilience policy: {assessment.policy.describe()}")
    lines += [
        "",
        "replicas  availability  slo-retention  nines     ok   slow  degraded  failed  retried  aborted    p99ms  attempts  hedged",
    ]
    for outcome in assessment.outcomes:
        report = outcome.report
        result = outcome.result
        p99 = (
            float(np.percentile(result.e2e, 99.0)) if len(result) else 0.0
        )
        lines.append(
            f"{outcome.replicas:>8d}  {report.availability:>11.2%}  "
            f"{report.slo_retention:>12.2%}  {nines(report.slo_retention):>5.2f}  "
            f"{report.ok:>5d}  {report.slow:>5d}  {report.degraded:>8d}  "
            f"{report.failed:>6d}  {report.retried:>7d}  "
            f"{result.aborted_rpcs:>7d}  {p99 * 1e3:>7.3f}  "
            f"{int(result.attempts.sum()):>8d}  {int(result.hedged.sum()):>6d}"
        )
    lines.append("")
    for target in retention_targets:
        needed = assessment.replicas_for(target)
        lines.append(
            f"replicas for {target:.1%} SLO retention: "
            + (str(needed) if needed is not None else "not reached in sweep")
        )
    chosen = timeline_replicas
    if chosen is None and assessment.outcomes:
        chosen = assessment.outcomes[0].replicas
    for outcome in assessment.outcomes:
        if outcome.replicas == chosen:
            lines.append("")
            lines.append(f"timeline (replicas={outcome.replicas}):")
            lines.extend(
                "  " + line
                for line in format_timeline(outcome.timeline, outcome.report)
            )
            break
    return lines


def _as_mix(workload: Workload | WorkloadMix) -> WorkloadMix:
    if isinstance(workload, WorkloadMix):
        return workload
    return WorkloadMix((workload,))


def _replay_healthy(_item: None) -> RunResult:
    """Worker body: the no-fault baseline replay (also in-process)."""
    from repro.experiments.parallel import _WORKER_CONTEXT

    assert _WORKER_CONTEXT is not None
    mix, plans, stream, serving = _WORKER_CONTEXT[:4]
    return run_mix_configuration(mix, plans, stream, serving)


def _replay_chaos(replicas: int) -> RunResult:
    """Worker body: one replica count's faulted replay (also in-process).

    Returns the raw :class:`RunResult`; the availability report is
    computed in the parent, because the SLO it is measured against may
    itself derive from the healthy baseline running in the same pool.
    """
    from repro.experiments.parallel import _WORKER_CONTEXT

    assert _WORKER_CONTEXT is not None
    (
        mix, plans, stream, serving, experiments, failover_timeout,
        healing, domains, placement, policy,
    ) = _WORKER_CONTEXT
    schedule = FaultSchedule(
        experiments=experiments,
        replicas=replicas,
        failover_timeout=failover_timeout,
        healing=healing,
        domains=domains,
        placement=placement,
    )
    serving = serving.with_chaos(schedule)
    if policy is not None:
        serving = serving.with_resilience(policy)
    return run_mix_configuration(mix, plans, stream, serving)


def availability_sweep(
    workload: Workload | WorkloadMix,
    configuration: ShardingConfiguration,
    experiments: Sequence[FaultExperiment],
    replica_counts: Sequence[int] = (1, 2, 3),
    *,
    healing: HealingPolicy | None = None,
    failover_timeout: float = 2e-3,
    domains: int = 1,
    placement: str = "spread",
    policy: "ResiliencePolicy | None" = None,
    settings: SuiteSettings | None = None,
    slo_latency: float | None = None,
    slo_slack: float = 1.5,
    window: float = 0.5,
    parallel: bool = False,
    max_workers: int | None = None,
) -> AvailabilityAssessment:
    """Sweep replica counts under one fault suite; measure SLO retention.

    The stream replays open-loop (the workload's arrival process), once
    healthy to fix the SLO -- ``slo_latency`` if given, otherwise the
    healthy p99 times ``slo_slack`` -- then once per replica count with a
    :class:`FaultSchedule` built from ``experiments``, placed across
    ``domains`` fault domains by ``placement`` (spread vs packed -- the
    planner's domain-aware sizing axis).  A ``policy``
    (:class:`~repro.resilience.ResiliencePolicy`) applies to every
    *faulted* replay -- the healthy baseline stays policy-free so the SLO
    derivation never shifts; a policy with ``hedge_quantile`` set is
    resolved here to that percentile of the healthy replay's per-request
    embedded-window totals (the tail-at-scale recipe: hedge when the
    sparse fan-out is slower than its usual pXX).  With
    ``parallel=True`` every cluster replay -- the healthy baseline *and*
    the per-replica-count faulted replays -- fans out over one shared
    fork pool (:func:`repro.experiments.parallel.run_cluster_tasks`),
    byte-identically to the serial sweep: the workers return raw
    :class:`RunResult` objects and the parent derives the SLO and the
    availability reports afterwards, so result values never depend on
    scheduling.
    """
    if not replica_counts:
        raise ValueError("replica_counts must name at least one count")
    mix = _as_mix(workload)
    settings = settings or SuiteSettings()
    serving = settings.resolved_serving()
    if serving.chaos is not None:
        raise ValueError(
            "availability_sweep builds its own FaultSchedule per replica "
            "count; pass experiments/healing instead of serving.chaos"
        )
    if serving.resilience is not None:
        raise ValueError(
            "availability_sweep applies the resilience policy to the "
            "faulted replays only; pass policy= instead of "
            "serving.resilience"
        )
    stream = mix_stream(mix, settings)
    plans = [
        build_plan(
            wl.model,
            configuration,
            estimate_pooling_factors(
                wl.model,
                num_requests=settings.pooling_requests,
                seed=settings.pooling_seed,
            ),
        )
        for wl in mix.workloads
    ]

    counts = tuple(int(count) for count in replica_counts)
    workers = max_workers if parallel else 1
    base_context = (
        mix, plans, stream, serving, tuple(experiments), failover_timeout,
        healing, int(domains), placement,
    )

    if policy is not None and policy.hedge_quantile is not None:
        # Resolve the hedge trigger against the healthy baseline first:
        # the faulted replays need the concrete delay, so the healthy
        # replay runs in its own batch ahead of them.  Each replay is a
        # pure function of its inputs, so the split keeps serial and
        # parallel sweeps byte-identical.
        healthy = run_cluster_tasks(
            [(_replay_healthy, None)], base_context + (None,), workers
        )[0]
        policy = policy.with_hedge_delay(
            float(
                np.percentile(healthy.embedded_totals, policy.hedge_quantile)
            )
        )
        replays = [healthy] + run_cluster_tasks(
            [(_replay_chaos, count) for count in counts],
            base_context + (policy,),
            workers,
        )
    else:
        tasks = [(_replay_healthy, None)]
        tasks += [(_replay_chaos, count) for count in counts]
        replays = run_cluster_tasks(tasks, base_context + (policy,), workers)

    healthy = replays[0]
    baseline_p99 = float(np.percentile(healthy.e2e, 99.0))
    if slo_latency is None:
        slo_latency = baseline_p99 * slo_slack

    outcomes = []
    for count, result in zip(counts, replays[1:]):
        report = availability_report(
            result, stream.times, float(slo_latency), float(window)
        )
        outcomes.append(
            ChaosOutcome(
                replicas=count,
                report=report,
                timeline=result.chaos_timeline,
                result=result,
            )
        )
    return AvailabilityAssessment(
        slo_latency=float(slo_latency),
        baseline_p99=baseline_p99,
        outcomes=tuple(outcomes),
        policy=policy,
        domains=int(domains),
        placement=placement,
    )

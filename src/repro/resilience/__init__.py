"""Tail-resilience layer: deadlines, retries, hedging, retry budgets.

The paper's capacity-driven scale-out thesis makes every ranking query
fan out across many sparse shards, so one slow or dead host governs the
request tail -- exactly the regime where production recommendation
stacks lean on per-attempt timeouts, hedged requests, and retry budgets
rather than a single hard-coded failover timeout.

* :mod:`repro.resilience.policy` -- the validated, frozen
  :class:`~repro.resilience.policy.ResiliencePolicy` attached to a
  :class:`~repro.serving.simulator.ServingConfig` via its ``resilience``
  field;
* :mod:`repro.resilience.runtime` -- the in-simulation interpreter:
  per-request attempt/hedge/deadline accounting and the token-bucket
  retry budget.

Determinism contract (see :mod:`repro.core.rng`): every resilience
random draw (backoff jitter) comes from the dedicated
``substream(seed, "resilience", ...)`` substream, so the healthy
request/jitter/skew streams are never consumed by retry machinery.  An
**empty** policy (no timeout, one attempt, no hedge, no deadline)
installs no runtime at all and replays byte-identical to
``resilience=None`` (regression-tested in ``tests/test_resilience.py``).
"""

from repro.resilience.policy import ResiliencePolicy
from repro.resilience.runtime import ResilienceRuntime

__all__ = [
    "ResiliencePolicy",
    "ResilienceRuntime",
]

"""The tail-resilience policy: *when* to retry, hedge, or give up.

A :class:`ResiliencePolicy` is pure data -- validated, frozen,
picklable -- describing how the serving layer's sparse-shard RPCs react
to slowness and failure:

* a **per-attempt timeout** (``rpc_timeout``): an attempt that has not
  responded after this long stops being waited on exclusively and a new
  attempt is issued (the old one keeps running and may still win);
* **bounded attempts** (``max_attempts``) with **exponential backoff**
  between timeout-driven retries (``backoff_base`` doubled by
  ``backoff_factor`` per attempt, stretched by a deterministic jitter
  draw from the dedicated resilience substream);
* an optional **hedged request** (``hedge_delay`` /
  ``hedge_quantile``): one speculative second attempt to another
  replica after a fixed delay, the classic tail-at-scale lever against
  stragglers;
* a **request deadline** (``deadline``): no new attempt is issued once
  the request is past it, and requests finishing over it are flagged in
  the ``deadline_exceeded`` result column;
* a **token-bucket retry budget** (``retry_budget`` refilled at
  ``retry_refill_rate`` tokens/second): every retry or hedge spends one
  token, so correlated failure cannot trigger a retry storm -- denials
  are counted, not queued.

An **empty** policy (the default construction) drives nothing: the
serving layer installs no runtime for it and the replay is
byte-identical to ``resilience=None``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


def _require_positive(name: str, value: float) -> float:
    value = float(value)
    if not value > 0.0:  # also rejects NaN
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def _require_nonnegative(name: str, value: float) -> float:
    value = float(value)
    if not value >= 0.0:  # also rejects NaN
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


@dataclass(frozen=True)
class ResiliencePolicy:
    """How one deployment's sparse RPCs respond to slowness and failure."""

    rpc_timeout: float | None = None
    """Per-attempt response timeout (seconds).  When an attempt has been
    outstanding this long, a replacement attempt is issued (budget and
    ``max_attempts`` permitting); the timed-out attempt keeps running
    and the first response wins.  ``None`` disables timeout retries."""

    max_attempts: int = 1
    """Total attempts per RPC, counting the first send and any hedge.
    ``1`` means no retries at all."""

    backoff_base: float = 0.0
    """Base delay (seconds) before a timeout-driven retry; attempt ``n``
    waits ``backoff_base * backoff_factor**(n - 1)``.  ``0`` retries
    immediately."""

    backoff_factor: float = 2.0
    """Exponential growth factor between successive retry backoffs."""

    backoff_jitter: float = 0.0
    """Deterministic jitter fraction in ``[0, 1]``: each nonzero backoff
    is stretched by ``1 + backoff_jitter * u`` with ``u`` drawn from the
    dedicated ``substream(seed, "resilience", ...)`` stream -- replayed
    draws are bit-identical, serial or parallel."""

    hedge_delay: float | None = None
    """Issue one speculative duplicate attempt to the next replica this
    many seconds after the first send (budget permitting).  ``None``
    disables hedging."""

    hedge_quantile: float | None = None
    """Derive ``hedge_delay`` from the healthy baseline instead of
    fixing it: :func:`repro.chaos.experiment.availability_sweep`
    resolves it to this percentile (0-100) of the healthy replay's
    per-request embedded-window totals.  Unresolved policies cannot be
    attached to a cluster directly -- resolve via
    :meth:`with_hedge_delay` first."""

    deadline: float | None = None
    """Per-request latency deadline (seconds, from request arrival): no
    retry or hedge is issued for a request already past it, and requests
    completing over it set the ``deadline_exceeded`` result column."""

    retry_budget: float = 10.0
    """Token-bucket capacity shared by all retries/hedges of a cluster
    replay; each spends one token.  Exhaustion denies (and counts) the
    attempt instead of queueing it -- the anti-retry-storm valve."""

    retry_refill_rate: float = 10.0
    """Bucket refill rate in tokens per simulated second."""

    def __post_init__(self):
        if self.rpc_timeout is not None:
            _require_positive("rpc_timeout", self.rpc_timeout)
        if int(self.max_attempts) < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        _require_nonnegative("backoff_base", self.backoff_base)
        if not float(self.backoff_factor) >= 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        jitter = _require_nonnegative("backoff_jitter", self.backoff_jitter)
        if jitter > 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter!r}"
            )
        if self.hedge_delay is not None and self.hedge_quantile is not None:
            raise ValueError(
                "set hedge_delay or hedge_quantile, not both; "
                "hedge_quantile is resolved to a delay by availability_sweep"
            )
        if self.hedge_delay is not None:
            _require_positive("hedge_delay", self.hedge_delay)
        if self.hedge_quantile is not None:
            quantile = float(self.hedge_quantile)
            if not 0.0 < quantile < 100.0:
                raise ValueError(
                    f"hedge_quantile must be a percentile in (0, 100), "
                    f"got {self.hedge_quantile!r}"
                )
        if self.deadline is not None:
            _require_positive("deadline", self.deadline)
        _require_nonnegative("retry_budget", self.retry_budget)
        _require_nonnegative("retry_refill_rate", self.retry_refill_rate)
        if (
            self.hedge_delay is not None or self.hedge_quantile is not None
        ) and int(self.max_attempts) < 2:
            raise ValueError(
                "hedging issues a second attempt, so max_attempts must be "
                f">= 2, got {self.max_attempts!r}"
            )

    @property
    def is_empty(self) -> bool:
        """True when the policy drives nothing: no timeout retries, no
        extra attempts, no hedge, no deadline.  The serving layer skips
        runtime construction entirely for empty policies, so they replay
        byte-identical to ``resilience=None``."""
        return (
            self.rpc_timeout is None
            and self.max_attempts <= 1
            and self.hedge_delay is None
            and self.hedge_quantile is None
            and self.deadline is None
        )

    def with_hedge_delay(self, hedge_delay: float) -> "ResiliencePolicy":
        """Resolve ``hedge_quantile`` into a concrete ``hedge_delay``."""
        return dataclasses.replace(
            self, hedge_delay=float(hedge_delay), hedge_quantile=None
        )

    def describe(self) -> str:
        """One deterministic human-readable line (report artifacts)."""
        parts = []
        if self.rpc_timeout is not None:
            parts.append(f"timeout {self.rpc_timeout * 1e3:g}ms")
        if self.max_attempts > 1:
            parts.append(f"max {self.max_attempts} attempts")
        if self.backoff_base > 0.0:
            jitter = (
                f"+{self.backoff_jitter:g}j" if self.backoff_jitter > 0.0 else ""
            )
            parts.append(
                f"backoff {self.backoff_base * 1e3:g}ms"
                f"x{self.backoff_factor:g}{jitter}"
            )
        if self.hedge_delay is not None:
            parts.append(f"hedge after {self.hedge_delay * 1e3:.3f}ms")
        elif self.hedge_quantile is not None:
            parts.append(f"hedge at p{self.hedge_quantile:g}")
        if self.deadline is not None:
            parts.append(f"deadline {self.deadline * 1e3:g}ms")
        if not parts:
            return "empty"
        parts.append(
            f"budget {self.retry_budget:g}@{self.retry_refill_rate:g}/s"
        )
        return ", ".join(parts)

"""Resilience runtime: per-replay retry accounting and the token bucket.

:class:`ResilienceRuntime` interprets one
:class:`~repro.resilience.policy.ResiliencePolicy` for one cluster
replay.  It owns everything the healthy serving path must not know
about:

* **per-request accounting** -- ``flags`` maps request id to
  ``[attempts, hedged, deadline_exceeded]``, which the tracing layer
  folds into result columns in both trace modes;
* the **token-bucket retry budget** -- one shared bucket per cluster
  replay, refilled in simulated time, spent by every retry and hedge;
  exhaustion is counted (``budget_denied``), never queued, so
  correlated failure cannot amplify into a retry storm;
* **backoff jitter** -- the only random draws in the layer, taken from
  the dedicated ``substream(seed, "resilience", ...)`` stream handed in
  by the cluster, in event order, so serial and parallel replays are
  bit-identical.

The runtime is deliberately passive: the serving layer's RPC
orchestrator (:meth:`repro.serving.simulator.ClusterSimulation.
_rpc_resilient`) asks it *may I retry?* and *how long do I back off?*;
all event scheduling stays in the serving generators.
"""

from __future__ import annotations

from repro.resilience.policy import ResiliencePolicy


class ResilienceRuntime:
    """Interprets a :class:`ResiliencePolicy` for one cluster replay."""

    def __init__(self, policy: ResiliencePolicy, engine, rng):
        if policy.hedge_quantile is not None:
            raise ValueError(
                "hedge_quantile is unresolved; derive a concrete hedge_delay "
                "first (availability_sweep resolves it from the healthy "
                "baseline, or call policy.with_hedge_delay)"
            )
        self.policy = policy
        self.engine = engine
        self._rng = rng

        #: Per-request accounting: request id ->
        #: ``[attempts, hedged, deadline_exceeded]``.
        self.flags: dict[int, list[int]] = {}
        #: Request arrival times (engine time), for deadline checks.
        self._starts: dict[int, float] = {}

        # Token bucket (simulated time): retries and hedges spend 1 each.
        self._tokens = float(policy.retry_budget)
        self._refilled_at = 0.0

        # Replay-level counters (surfaced as RunResult.resilience_stats).
        self.attempts_total = 0
        self.hedges = 0
        self.budget_denied = 0
        self.deadline_exceeded_total = 0
        self.aborted_attempts = 0

    # -- per-request accounting -------------------------------------------
    def _entry(self, request_id: int) -> list[int]:
        entry = self.flags.get(request_id)
        if entry is None:
            entry = self.flags[request_id] = [0, 0, 0]
        return entry

    def start_request(self, request_id: int) -> float:
        """Record a request's arrival time; returns it (deadline base)."""
        start = self.engine.now
        self._starts[request_id] = start
        return start

    def finish_request(self, request_id: int, e2e: float) -> None:
        """Close out one request: stamp the deadline flag from its E2E."""
        self._starts.pop(request_id, None)
        deadline = self.policy.deadline
        if deadline is not None and e2e > deadline:
            self._entry(request_id)[2] = 1
            self.deadline_exceeded_total += 1

    def deadline_at(self, request_id: int) -> float | None:
        """Absolute engine time of this request's deadline (or None)."""
        deadline = self.policy.deadline
        if deadline is None:
            return None
        start = self._starts.get(request_id)
        if start is None:
            return None
        return start + deadline

    def count_attempt(self, request_id: int) -> None:
        self.attempts_total += 1
        self._entry(request_id)[0] += 1

    def count_hedge(self, request_id: int) -> None:
        self.hedges += 1
        self._entry(request_id)[1] += 1

    def count_abort(self) -> None:
        self.aborted_attempts += 1

    # -- retry budget ------------------------------------------------------
    @property
    def tokens(self) -> float:
        """Current bucket level (after refilling to the present)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self.engine.now
        elapsed = now - self._refilled_at
        if elapsed > 0.0:
            self._tokens = min(
                float(self.policy.retry_budget),
                self._tokens + elapsed * self.policy.retry_refill_rate,
            )
            self._refilled_at = now

    def try_spend(self) -> bool:
        """Spend one retry/hedge token; count (never queue) a denial."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.budget_denied += 1
        return False

    # -- backoff -----------------------------------------------------------
    def backoff_delay(self, attempts_made: int) -> float:
        """Backoff before the next attempt, given ``attempts_made`` so far.

        ``backoff_base * backoff_factor**(attempts_made - 1)``, stretched
        by ``1 + backoff_jitter * u`` with ``u ~ U[0, 1)`` from the
        resilience substream.  A zero base backs off not at all and
        consumes no draw, so policies without backoff leave the stream
        untouched.
        """
        policy = self.policy
        delay = policy.backoff_base * policy.backoff_factor ** max(
            0, attempts_made - 1
        )
        if delay > 0.0 and policy.backoff_jitter > 0.0:
            delay *= 1.0 + policy.backoff_jitter * float(self._rng.random())
        return delay

    # -- replay summary ----------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Replay-level counters (``RunResult.resilience_stats``)."""
        return {
            "attempts": self.attempts_total,
            "hedges": self.hedges,
            "budget_denied": self.budget_denied,
            "deadline_exceeded": self.deadline_exceeded_total,
            "aborted_attempts": self.aborted_attempts,
        }

"""Quantile and overhead computations used by every experiment.

The paper reports P50/P90/P99 end-to-end latency and aggregate CPU time,
expressed as *relative change versus the singular configuration*
(Figures 6, 7, 16): ``overhead_q = (Q_q(config) - Q_q(singular)) / Q_q(singular)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The quantiles every figure reports.
QUANTILES = (50, 90, 99)


def quantile(values, q: float) -> float:
    """Percentile with linear interpolation (numpy default)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a quantile of no samples")
    return float(np.percentile(arr, q))


def quantiles(values, qs=QUANTILES) -> dict[int, float]:
    return {int(q): quantile(values, q) for q in qs}


@dataclass(frozen=True)
class OverheadPoint:
    """Relative change vs singular at one quantile (one figure marker)."""

    quantile: int
    latency_overhead: float
    compute_overhead: float


def overhead_vs_baseline(values, baseline, q: float) -> float:
    """Relative change of a quantile versus the baseline configuration."""
    base = quantile(baseline, q)
    if base <= 0:
        raise ValueError("baseline quantile must be positive")
    return (quantile(values, q) - base) / base


def overhead_series(
    latency, compute, baseline_latency, baseline_compute, qs=QUANTILES
) -> list[OverheadPoint]:
    """One config's latency+compute overhead curve (a Figure-6 panel)."""
    return [
        OverheadPoint(
            quantile=int(q),
            latency_overhead=overhead_vs_baseline(latency, baseline_latency, q),
            compute_overhead=overhead_vs_baseline(compute, baseline_compute, q),
        )
        for q in qs
    ]


def median_window_mean_columns(
    columns: dict[str, "np.ndarray"],
    keyed_by,
    lo_pct: float = 40.0,
    hi_pct: float = 60.0,
) -> dict[str, float]:
    """Columnar :func:`median_window_mean`: one array per stack bucket.

    Operates directly on a ``RunResult``'s preallocated stack columns, so
    figure generation never rebuilds per-request dicts.
    """
    keys = np.asarray(keyed_by, dtype=float)
    for bucket, column in columns.items():
        if len(column) != keys.size:
            raise ValueError(f"column {bucket} does not align with keys")
    lo, hi = np.percentile(keys, [lo_pct, hi_pct])
    mask = (keys >= lo) & (keys <= hi)
    chosen = int(mask.sum())
    if chosen == 0:
        return {bucket: float(np.mean(col)) for bucket, col in columns.items()}
    return {bucket: float(col[mask].sum() / chosen) for bucket, col in columns.items()}


def median_window_mean(samples: list[dict[str, float]], keyed_by: list[float],
                       lo_pct: float = 40.0, hi_pct: float = 60.0) -> dict[str, float]:
    """Mean of per-request stacks across the median window of a key metric.

    "P50 stacks" in the paper break down the *median request*; averaging
    the stacks of requests between the 40th and 60th percentile of the key
    metric (e.g. E2E latency) gives a stable estimate of it.
    """
    if len(samples) != len(keyed_by):
        raise ValueError("samples and keys must align")
    keys = np.asarray(keyed_by, dtype=float)
    lo, hi = np.percentile(keys, [lo_pct, hi_pct])
    chosen = [s for s, k in zip(samples, keys) if lo <= k <= hi] or list(samples)
    merged: dict[str, float] = {}
    for stack in chosen:
        for bucket, value in stack.items():
            merged[bucket] = merged.get(bucket, 0.0) + value
    return {bucket: value / len(chosen) for bucket, value in merged.items()}

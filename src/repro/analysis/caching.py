"""Frequency-based caching analysis over embedding access traces.

Implements the trace-driven DRAM-reduction study the paper recommends
(Section IX, after Bandana): given an offline access trace, how much of a
table's traffic does a small in-DRAM cache capture, with the remainder
served from slower storage?

Two cache policies are evaluated:

* **frequency** (offline-optimal static placement): pin the top-K rows by
  trace frequency -- what a Bandana-style offline pass would provision;
* **LRU** (online): a classic recency cache simulated over the trace,
  the deployable baseline.

Zipf-skewed production accesses make small caches disproportionately
effective, which is the quantitative basis for serving huge tables from
a DRAM cache over flash.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.requests.access_trace import AccessTrace


@dataclass(frozen=True)
class CachePoint:
    """Hit rate of one (table, policy, cache-size) evaluation."""

    table_name: str
    policy: str
    cache_fraction: float
    cache_rows: int
    hit_rate: float


def working_set_rows(accesses: np.ndarray) -> int:
    """Distinct rows touched by the trace (the table's working set)."""
    if accesses.size == 0:
        return 0
    return int(np.unique(accesses).size)


def frequency_hit_rate(accesses: np.ndarray, num_rows: int, cache_fraction: float) -> float:
    """Hit rate of pinning the hottest ``cache_fraction`` of the working set.

    Cache sizes are expressed relative to the *observed working set*
    (distinct rows in the trace), not the raw hash-bucket count: embedding
    tables are sized for collision avoidance, so most rows are never
    touched in any finite window, and a bucket-relative fraction would be
    trivially large.  This is the framing Bandana uses ("effective DRAM").
    """
    if not 0.0 < cache_fraction <= 1.0:
        raise ValueError("cache_fraction must be in (0, 1]")
    if accesses.size == 0:
        return 0.0
    cache_rows = max(1, int(working_set_rows(accesses) * cache_fraction))
    _, counts = np.unique(accesses, return_counts=True)
    counts = np.sort(counts)[::-1]
    return float(counts[:cache_rows].sum() / accesses.size)


def lru_hit_rate(accesses: np.ndarray, num_rows: int, cache_fraction: float) -> float:
    """Hit rate of an LRU cache sized at ``cache_fraction`` of the
    working set, simulated over the access stream."""
    if not 0.0 < cache_fraction <= 1.0:
        raise ValueError("cache_fraction must be in (0, 1]")
    if accesses.size == 0:
        return 0.0
    capacity = max(1, int(working_set_rows(accesses) * cache_fraction))
    cache: OrderedDict[int, None] = OrderedDict()
    hits = 0
    for row in accesses.tolist():
        if row in cache:
            hits += 1
            cache.move_to_end(row)
        else:
            cache[row] = None
            if len(cache) > capacity:
                cache.popitem(last=False)
    return hits / accesses.size


def cache_curve(
    trace: AccessTrace,
    table_name: str,
    fractions=(0.01, 0.05, 0.10, 0.25, 0.50),
    policies=("frequency", "lru"),
) -> list[CachePoint]:
    """Hit-rate curve for one table across cache sizes and policies."""
    accesses = trace.accesses[table_name]
    num_rows = trace.num_rows[table_name]
    evaluators = {"frequency": frequency_hit_rate, "lru": lru_hit_rate}
    points = []
    for policy in policies:
        evaluate = evaluators[policy]
        for fraction in fractions:
            points.append(
                CachePoint(
                    table_name=table_name,
                    policy=policy,
                    cache_fraction=fraction,
                    cache_rows=max(1, int(num_rows * fraction)),
                    hit_rate=evaluate(accesses, num_rows, fraction),
                )
            )
    return points


def cache_curves(
    trace: AccessTrace,
    fractions=(0.01, 0.05, 0.10, 0.25, 0.50),
    policies=("frequency", "lru"),
) -> dict[str, list[CachePoint]]:
    """Hit-rate curves for **every** table of a trace.

    The whole-trace consumer for workload-emitted access streams (see
    ``Workload.access_trace`` / ``RequestGenerator.access_trace``): one
    call turns a request stream's trace into the full caching study.
    """
    return {
        name: cache_curve(trace, name, fractions=fractions, policies=policies)
        for name in trace.tables()
    }


def trace_hit_summary(
    trace: AccessTrace, cache_fraction: float = 0.10, policy: str = "lru"
) -> dict[str, float]:
    """Per-table hit rate at one cache size, plus the trace-wide rate.

    The ``"overall"`` entry weights each table by its access volume --
    the number a serving tier actually experiences when every table gets
    the same relative DRAM budget.  Recency-correlated streams
    (:class:`~repro.requests.access_trace.CorrelatedStream`) raise the
    LRU numbers over i.i.d. popularity draws; comparing the two
    quantifies how much a deployable cache gains from temporal locality.
    """
    evaluators = {"frequency": frequency_hit_rate, "lru": lru_hit_rate}
    evaluate = evaluators[policy]
    summary: dict[str, float] = {}
    hits = 0.0
    total = 0
    for name in trace.tables():
        accesses = trace.accesses[name]
        rate = evaluate(accesses, trace.num_rows[name], cache_fraction)
        summary[name] = rate
        hits += rate * accesses.size
        total += accesses.size
    summary["overall"] = hits / total if total else 0.0
    return summary


def dram_reduction_at_hit_target(
    trace: AccessTrace,
    table_name: str,
    hit_target: float = 0.9,
    resolution: int = 64,
) -> float:
    """Smallest cache fraction whose frequency hit rate meets the target.

    Returns 1.0 when the full working set is required: the table's
    accesses are too uniform to benefit (the paper's observation that
    embedding-table entropy limits compression applies to caching too).
    """
    if not 0.0 < hit_target <= 1.0:
        raise ValueError("hit_target must be in (0, 1]")
    accesses = trace.accesses[table_name]
    num_rows = trace.num_rows[table_name]
    for step in range(1, resolution + 1):
        fraction = step / resolution
        if frequency_hit_rate(accesses, num_rows, fraction) >= hit_target:
            return fraction
    return 1.0

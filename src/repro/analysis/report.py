"""Plain-text rendering of reproduced tables and figures.

Every benchmark prints its artifact through these helpers so that the
regenerated "figures" are readable in CI logs and saved under
``results/`` as aligned text tables (the repository has no plotting
dependency by design).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.core.types import GIB


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.01:
            return f"{cell:.2e}"
        return f"{cell:,.3f}"
    return str(cell)


def format_stack_bars(
    stacks: dict[str, dict[str, float]],
    buckets: Sequence[str],
    title: str = "",
    width: int = 44,
) -> str:
    """Render normalized stacked bars as text (one row per configuration).

    Bars are normalized to the tallest configuration, mirroring the
    paper's normalized stack figures.
    """
    totals = {label: sum(stack.values()) for label, stack in stacks.items()}
    peak = max(totals.values()) or 1.0
    glyphs = "#=+:~o*%@"
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"[{glyphs[i % len(glyphs)]}] {bucket}" for i, bucket in enumerate(buckets)
    )
    lines.append(legend)
    label_width = max(len(label) for label in stacks)
    for label, stack in stacks.items():
        bar = []
        for i, bucket in enumerate(buckets):
            chars = round(stack.get(bucket, 0.0) / peak * width)
            bar.append(glyphs[i % len(glyphs)] * chars)
        lines.append(
            f"{label.ljust(label_width)} |{''.join(bar)}  ({totals[label] / peak:.2f})"
        )
    return "\n".join(lines)


def capacity_candidate_rows(candidates) -> list[tuple]:
    """Table rows for a capacity-planning candidate list (one row per
    evaluated (configuration, utilization) point).

    Shared by the ``repro plan`` CLI and ``examples/capacity_planning.py``
    so the two renderings of a :class:`~repro.planning.capacity.MixPlan`
    cannot drift.  Headers: configuration, util, servers, pinned GiB,
    fits DRAM, meets SLA, worst drop.
    """
    return [
        (
            candidate.label,
            f"{candidate.utilization_target:.0%}",
            candidate.total_servers,
            round(candidate.total_memory_bytes / GIB, 1),
            "yes" if candidate.fits_memory else "NO",
            "yes" if candidate.meets_sla else "NO",
            f"{candidate.worst_drop_rate:.1%}",
        )
        for candidate in candidates
    ]


CAPACITY_CANDIDATE_HEADERS = [
    "configuration", "util", "servers", "pinned GiB", "fits DRAM",
    "meets SLA", "worst drop",
]


def capacity_sizing_rows(sizings) -> list[tuple]:
    """Table rows for a chosen candidate's per-workload sizings.

    Headers: workload, model, peak QPS, main replicas, sparse
    replicas/shard, standalone GiB, drop rate, P50 headroom.
    """
    return [
        (
            sizing.workload,
            sizing.model_name,
            round(sizing.qps, 1),
            sizing.standalone.main_replicas,
            " ".join(
                str(count)
                for _, count in sorted(sizing.standalone.sparse_replicas.items())
            )
            or "-",
            round(sizing.standalone.total_memory_bytes / GIB, 1),
            f"{sizing.sla.drop_rate:.1%}",
            f"{sizing.sla.headroom_p50:.2f}x",
        )
        for sizing in sizings
    ]


CAPACITY_SIZING_HEADERS = [
    "workload", "model", "peak QPS", "main replicas", "sparse replicas/shard",
    "standalone GiB", "drop rate", "P50 headroom",
]


def save_artifact(name: str, content: str, results_dir: str | None = None) -> str:
    """Write an artifact under ``results/`` and return its path."""
    directory = results_dir or os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        handle.write(content)
        handle.write("\n")
    return path

"""Performance-benchmark artifact writer.

Perf work needs a tracked trajectory, not one-off timings: the throughput
benchmark (``benchmarks/test_perf_throughput.py``) records
simulated-requests-per-second and its companion metrics into
``results/BENCH_throughput.json`` on every run, and CI uploads the file
as an artifact.  Comparing the JSON across commits is the repo's
regression story for the simulation fast path.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

from repro.analysis.report import save_artifact


def record_benchmark(
    name: str, metrics: dict[str, object], results_dir: str | None = None
) -> str:
    """Write ``results/BENCH_<name>.json`` and return its path.

    ``metrics`` must be JSON-serializable.  A small environment header
    (python version, platform, request-count knob, wall time) is added so
    numbers from different machines are not compared blindly.
    """
    payload = {
        "benchmark": name,
        # Benchmark artifacts are *about* the host, so the wall-clock
        # timestamp below is deliberate, not a replay hazard.
        "recorded_at_unix": time.time(),  # detlint: disable=DET003 -- host timestamp
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repro_requests": os.environ.get("REPRO_REQUESTS"),
        "repro_trace_mode": os.environ.get("REPRO_TRACE_MODE"),
        "metrics": metrics,
    }
    return save_artifact(
        f"BENCH_{name}.json", json.dumps(payload, indent=2, sort_keys=True),
        results_dir=results_dir,
    )


def load_benchmark(path: str) -> dict[str, object]:
    """Read back a benchmark artifact written by :func:`record_benchmark`."""
    with open(path) as handle:
        return json.load(handle)

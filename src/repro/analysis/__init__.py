"""Analysis: quantiles, overheads, stack aggregation, text reports."""

from repro.analysis.caching import (
    CachePoint,
    cache_curve,
    dram_reduction_at_hit_target,
    frequency_hit_rate,
    lru_hit_rate,
    working_set_rows,
)
from repro.analysis.bench import record_benchmark
from repro.analysis.quantiles import (
    QUANTILES,
    OverheadPoint,
    median_window_mean,
    median_window_mean_columns,
    overhead_series,
    overhead_vs_baseline,
    quantile,
    quantiles,
)
from repro.analysis.report import (
    CAPACITY_CANDIDATE_HEADERS,
    CAPACITY_SIZING_HEADERS,
    capacity_candidate_rows,
    capacity_sizing_rows,
    format_stack_bars,
    format_table,
    save_artifact,
)

__all__ = [
    "CachePoint",
    "CAPACITY_CANDIDATE_HEADERS",
    "CAPACITY_SIZING_HEADERS",
    "OverheadPoint",
    "capacity_candidate_rows",
    "capacity_sizing_rows",
    "cache_curve",
    "dram_reduction_at_hit_target",
    "frequency_hit_rate",
    "lru_hit_rate",
    "working_set_rows",
    "QUANTILES",
    "format_stack_bars",
    "format_table",
    "median_window_mean",
    "median_window_mean_columns",
    "overhead_series",
    "record_benchmark",
    "overhead_vs_baseline",
    "quantile",
    "quantiles",
    "save_artifact",
]

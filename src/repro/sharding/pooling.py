"""Pooling-factor estimation (paper Section III-B2).

The load-balanced strategy places tables by *pooling factor* -- the
expected number of embedding-table lookups a table performs -- which the
paper estimates "by sampling 1000 requests from the evaluation dataset and
observing the number of lookups per table".  This module reproduces that
estimator: it draws requests from the model's request generator and sums
observed ids per table, giving Table-II-scale aggregate pooling factors.

Estimates are memoized per (model tables/profile, num_requests, seed):
the suite runner and the benchmark conftest ask for the same estimate for
every serving variant of a model, and the sampling itself is pure.
"""

from __future__ import annotations

from repro.models.config import ModelConfig
from repro.requests.generator import RequestGenerator

_CACHE: dict[tuple, dict[str, float]] = {}


def _cache_key(model: ModelConfig, num_requests: int, seed: int) -> tuple:
    # Pooling depends only on the sampling distribution: the model name
    # (part of the substream key), its tables, and its request profile.
    return (model.name, model.tables, model.profile, num_requests, seed)


def clear_pooling_cache() -> None:
    """Drop memoized estimates (tests exercising the sampler directly)."""
    _CACHE.clear()


def estimate_pooling_factors(
    model: ModelConfig, num_requests: int = 1000, seed: int = 42
) -> dict[str, float]:
    """Aggregate observed lookups per table over ``num_requests`` samples.

    Every table appears in the result (0.0 if never observed), so
    strategies can place cold tables too.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    key = _cache_key(model, num_requests, seed)
    cached = _CACHE.get(key)
    if cached is None:
        generator = RequestGenerator(model, seed=seed)
        cached = _CACHE[key] = generator.table_totals(num_requests)
    return dict(cached)


def pooling_by_shard(
    plan_shards, pooling: dict[str, float]
) -> list[float]:
    """Sum estimated pooling factors per shard of a plan.

    Row-partitioned assignments split a table's pooling evenly across
    partitions; for single-lookup tables this overstates per-partition
    work (only one partition is hit per request), which is exactly the
    approximation the paper's Table II makes.
    """
    totals = []
    for shard in plan_shards:
        totals.append(
            sum(pooling.get(a.table_name, 0.0) * a.fraction for a in shard.assignments)
        )
    return totals

"""Pooling-factor estimation (paper Section III-B2).

The load-balanced strategy places tables by *pooling factor* -- the
expected number of embedding-table lookups a table performs -- which the
paper estimates "by sampling 1000 requests from the evaluation dataset and
observing the number of lookups per table".  This module reproduces that
estimator: it draws requests from the model's request generator and sums
observed ids per table, giving Table-II-scale aggregate pooling factors.
"""

from __future__ import annotations

from repro.models.config import ModelConfig
from repro.requests.generator import RequestGenerator


def estimate_pooling_factors(
    model: ModelConfig, num_requests: int = 1000, seed: int = 42
) -> dict[str, float]:
    """Aggregate observed lookups per table over ``num_requests`` samples.

    Every table appears in the result (0.0 if never observed), so
    strategies can place cold tables too.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    generator = RequestGenerator(model, seed=seed)
    totals = {table.name: 0.0 for table in model.tables}
    for request in generator.generate_many(num_requests):
        for draw in request.draws.values():
            totals[draw.table_name] += draw.total_ids
    return totals


def pooling_by_shard(
    plan_shards, pooling: dict[str, float]
) -> list[float]:
    """Sum estimated pooling factors per shard of a plan.

    Row-partitioned assignments split a table's pooling evenly across
    partitions; for single-lookup tables this overstates per-partition
    work (only one partition is hit per request), which is exactly the
    approximation the paper's Table II makes.
    """
    totals = []
    for shard in plan_shards:
        totals.append(
            sum(pooling.get(a.table_name, 0.0) * a.fraction for a in shard.assignments)
        )
    return totals

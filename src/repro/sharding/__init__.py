"""Capacity-driven model sharding: plans, strategies, pooling, partitioning."""

from repro.sharding.auto import (
    AutoShardObjective,
    AutoShardResult,
    CandidateEvaluation,
    auto_shard,
)
from repro.sharding.distributed import DistributedModel, ShardService
from repro.sharding.plan import (
    SINGULAR,
    ShardSpec,
    ShardingError,
    ShardingPlan,
    TableAssignment,
    singular_plan,
)
from repro.sharding.pooling import estimate_pooling_factors, pooling_by_shard
from repro.sharding.serialization import (
    SerializationError,
    dump_model,
    dump_plan,
    load_model,
    load_plan,
)
from repro.sharding.strategies import (
    STRATEGIES,
    CapacityBalancedStrategy,
    LoadBalancedStrategy,
    NetSpecificBinPacking,
    OneShardStrategy,
    ShardingStrategy,
)

__all__ = [
    "AutoShardObjective",
    "AutoShardResult",
    "CandidateEvaluation",
    "auto_shard",
    "CapacityBalancedStrategy",
    "DistributedModel",
    "LoadBalancedStrategy",
    "NetSpecificBinPacking",
    "OneShardStrategy",
    "SINGULAR",
    "STRATEGIES",
    "ShardService",
    "ShardSpec",
    "ShardingError",
    "ShardingPlan",
    "SerializationError",
    "ShardingStrategy",
    "TableAssignment",
    "dump_model",
    "dump_plan",
    "load_model",
    "load_plan",
    "estimate_pooling_factors",
    "pooling_by_shard",
    "singular_plan",
]

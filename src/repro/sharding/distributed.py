"""Distributed numeric execution: partition a materialized model by a plan.

Implements the paper's model transformation (Section III-C): a custom
partitioning tool groups embedding tables per the sharding plan, replaces
their SLS operators in the main net with RPC operators, and builds one
little sparse-shard net per (shard, net) pair.  Here the "RPC" is an
in-process call into a :class:`ShardService`, which keeps the semantics --
stateless shards, pooled results returned by blob name, row-partitioned
tables returning partial sums merged on the main shard -- while letting
tests assert *numeric equivalence with singular execution*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dlrm import MaterializedModel, NumericRequest
from repro.core.embedding import PartitionedEmbeddingTable, RowShardRouting
from repro.core.executor import NetExecutor
from repro.core.graph import ModelGraph, Net
from repro.core.operators import (
    Operator,
    RemoteCall,
    SparseLengthsSum,
    SumBlobs,
    Workspace,
)
from repro.models.config import ModelConfig
from repro.sharding.plan import ShardingPlan, TableAssignment


@dataclass(frozen=True)
class _ShardTable:
    """A (possibly partitioned) table resident on a sparse shard."""

    assignment: TableAssignment
    pooled_blob: str

    @property
    def name(self) -> str:
        return self.assignment.table_name


class ShardService:
    """One sparse shard: holds table storage, serves pooled lookups.

    Stateless between calls (paper Section III-A1): every ``invoke`` gets
    ids and lengths in the payload and returns pooled outputs; nothing is
    retained, so shards can be replicated or restarted freely.
    """

    def __init__(
        self,
        shard_index: int,
        model: MaterializedModel,
        assignments: list[TableAssignment],
    ):
        self.shard_index = shard_index
        self.model_config = model.config
        self._tables: dict[str, object] = {}
        self._shard_tables: list[_ShardTable] = []
        for assignment in assignments:
            base = model.tables[assignment.table_name]
            if assignment.num_parts == 1:
                storage = base
                pooled_blob = f"{assignment.table_name}_pooled"
            else:
                routing = RowShardRouting(
                    assignment.table_name, assignment.part_index, assignment.num_parts
                )
                storage = PartitionedEmbeddingTable(base, routing)
                pooled_blob = (
                    f"{assignment.table_name}_pooled_part{assignment.part_index}"
                )
            self._tables[pooled_blob] = storage
            self._shard_tables.append(_ShardTable(assignment, pooled_blob))

    def tables_for_net(self, net_name: str) -> list[_ShardTable]:
        return [
            st
            for st in self._shard_tables
            if self.model_config.table(st.name).net == net_name
        ]

    def invoke(self, net_name: str, payload: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Serve one RPC: pooled lookups for this shard's tables of a net."""
        results: dict[str, np.ndarray] = {}
        for shard_table in self.tables_for_net(net_name):
            values = payload[f"{shard_table.name}_hashed"]
            lengths = payload[f"{shard_table.name}_lengths"]
            storage = self._tables[shard_table.pooled_blob]
            if isinstance(storage, PartitionedEmbeddingTable):
                results[shard_table.pooled_blob] = storage.lookup_sum_partial(
                    values, lengths
                )
            else:
                results[shard_table.pooled_blob] = storage.lookup_sum(values, lengths)
        return results


class DistributedModel:
    """A materialized model partitioned into a main shard + sparse shards."""

    def __init__(self, model: MaterializedModel, plan: ShardingPlan):
        plan.validate(model.config)
        self.base = model
        self.plan = plan
        self.shards = [
            ShardService(spec.index, model, spec.assignments) for spec in plan.shards
        ]
        self.graph = self._rewrite_graph()
        self.graph.validate()

    # -- graph rewrite -------------------------------------------------------
    def _remote_tables(self) -> set[str]:
        return {
            assignment.table_name
            for shard in self.plan.shards
            for assignment in shard.assignments
        }

    def _rewrite_graph(self) -> ModelGraph:
        remote = self._remote_tables()
        config: ModelConfig = self.base.config
        graph = ModelGraph(f"{config.name}:{self.plan.label}")
        for source_net in self.base.graph.nets:
            net = Net(
                source_net.name,
                external_inputs=set(source_net.external_inputs),
                external_outputs=list(source_net.external_outputs),
            )
            ops: list[Operator] = []
            removed: list[SparseLengthsSum] = []
            for op in source_net.operators:
                if isinstance(op, SparseLengthsSum):
                    table_name = op.name.removeprefix("sls_")
                    if table_name in remote:
                        removed.append(op)
                        continue
                ops.append(op)
            insert_at = self._rpc_insertion_point(ops)
            rpc_ops = self._build_rpc_ops(source_net.name, removed)
            net.operators = ops[:insert_at] + rpc_ops + ops[insert_at:]
            graph.nets.append(net)
        return graph

    @staticmethod
    def _rpc_insertion_point(ops: list[Operator]) -> int:
        """RPC results must exist before the first op that consumes pooled
        blobs; inserting before the first Concat keeps the paper's layout
        (dense bottom -> async RPC -> interaction/top)."""
        for index, op in enumerate(ops):
            if op.__class__.__name__ == "Concat":
                return index
        return len(ops)

    def _build_rpc_ops(
        self, net_name: str, removed: list[SparseLengthsSum]
    ) -> list[Operator]:
        removed_names = {op.name.removeprefix("sls_") for op in removed}
        rpc_ops: list[Operator] = []
        merges: dict[str, list[str]] = {}
        for shard, service in zip(self.plan.shards, self.shards):
            shard_tables = [
                a
                for a in shard.assignments
                if a.table_name in removed_names
                and self.base.config.table(a.table_name).net == net_name
            ]
            if not shard_tables:
                continue
            inputs, outputs = [], []
            for assignment in shard_tables:
                inputs.extend(
                    (f"{assignment.table_name}_hashed", f"{assignment.table_name}_lengths")
                )
                if assignment.num_parts == 1:
                    outputs.append(f"{assignment.table_name}_pooled")
                else:
                    blob = f"{assignment.table_name}_pooled_part{assignment.part_index}"
                    outputs.append(blob)
                    merges.setdefault(assignment.table_name, []).append(blob)
            rpc_ops.append(
                RemoteCall(
                    name=f"rpc_{net_name}_shard{shard.index}",
                    inputs=tuple(inputs),
                    outputs=tuple(outputs),
                    shard_index=shard.index,
                    net_name=net_name,
                    invoke=service.invoke,
                )
            )
        for table_name, partial_blobs in sorted(merges.items()):
            rpc_ops.append(
                SumBlobs(
                    name=f"merge_{table_name}",
                    inputs=tuple(sorted(partial_blobs)),
                    outputs=(f"{table_name}_pooled",),
                )
            )
        return rpc_ops

    # -- execution -------------------------------------------------------------
    def forward(self, request: NumericRequest) -> np.ndarray:
        """Distributed forward pass; must match the singular model exactly
        up to floating-point associativity."""
        executor = NetExecutor()
        self.base.feed_request(executor.workspace, request)
        executor.run_model(self.graph)
        return executor.workspace.fetch("scores").reshape(-1)

    @property
    def rpc_op_count(self) -> int:
        return sum(1 for op in self.graph.all_operators() if isinstance(op, RemoteCall))

"""Sharding plans: which embedding table (or row partition) lives where.

A plan assigns every embedding table of a model to one of ``N`` sparse
shards (paper Section III-A1).  Tables larger than a shard's budget are
row-partitioned: partition ``p`` of ``P`` holds rows ``r`` with
``r % P == p``.  The main shard keeps all dense layers and is implicit.

Plans are strategy-agnostic data: strategies produce them, the partitioner
and the serving simulator consume them, and :meth:`ShardingPlan.validate`
enforces the structural invariants (every table covered exactly once, all
row partitions present, no empty shards).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.models.config import ModelConfig

SINGULAR = "singular"


class ShardingError(ValueError):
    """Raised for invalid plans or infeasible strategy inputs."""


@dataclass(frozen=True)
class TableAssignment:
    """Placement of one table (or one row partition of it) on a shard.

    ``num_parts == 1`` means the whole table; otherwise this is partition
    ``part_index`` of ``num_parts`` row partitions.
    """

    table_name: str
    shard_index: int
    part_index: int = 0
    num_parts: int = 1

    def __post_init__(self):
        if self.num_parts < 1 or not 0 <= self.part_index < self.num_parts:
            raise ShardingError(
                f"bad partition {self.part_index}/{self.num_parts} for {self.table_name}"
            )

    @property
    def fraction(self) -> float:
        """Fraction of the table's rows held by this assignment."""
        return 1.0 / self.num_parts


@dataclass
class ShardSpec:
    """One sparse shard: an index plus its table assignments."""

    index: int
    assignments: list[TableAssignment] = field(default_factory=list)

    def table_names(self) -> list[str]:
        return [assignment.table_name for assignment in self.assignments]

    def capacity_bytes(self, model: ModelConfig) -> float:
        return sum(
            model.table(a.table_name).nbytes * a.fraction for a in self.assignments
        )

    def nets_present(self, model: ModelConfig) -> set[str]:
        return {model.table(a.table_name).net for a in self.assignments}


@dataclass
class ShardingPlan:
    """A complete sharding decision for one model."""

    model_name: str
    strategy: str
    shards: list[ShardSpec] = field(default_factory=list)

    @property
    def is_singular(self) -> bool:
        return not self.shards

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def label(self) -> str:
        """Display label matching the paper's figure axes."""
        if self.is_singular:
            return SINGULAR
        if self.strategy == "1-shard":
            return "1 shard"
        return f"{self.strategy} {self.num_shards} shards"

    # -- queries -----------------------------------------------------------
    def assignments_for_table(self, table_name: str) -> list[TableAssignment]:
        return [
            assignment
            for shard in self.shards
            for assignment in shard.assignments
            if assignment.table_name == table_name
        ]

    def shards_for_net(self, model: ModelConfig, net_name: str) -> list[ShardSpec]:
        """Shards holding at least one table of ``net_name``.

        This is the fan-out set of the net's RPC operators: one RPC per
        (net, shard) pair per batch (Section III-B3).
        """
        return [shard for shard in self.shards if net_name in shard.nets_present(model)]

    def capacity_by_shard(self, model: ModelConfig) -> list[float]:
        return [shard.capacity_bytes(model) for shard in self.shards]

    # -- validation ----------------------------------------------------------
    def validate(self, model: ModelConfig) -> None:
        """Check full, exactly-once coverage of the model's tables."""
        if self.is_singular:
            return
        coverage: dict[str, list[TableAssignment]] = defaultdict(list)
        for position, shard in enumerate(self.shards):
            if shard.index != position:
                raise ShardingError(
                    f"shard at position {position} has index {shard.index}"
                )
            if not shard.assignments:
                raise ShardingError(f"shard {shard.index} is empty")
            for assignment in shard.assignments:
                coverage[assignment.table_name].append(assignment)

        known = {table.name for table in model.tables}
        for table_name in known:
            assignments = coverage.pop(table_name, None)
            if not assignments:
                raise ShardingError(f"table {table_name} is unassigned")
            num_parts = assignments[0].num_parts
            if any(a.num_parts != num_parts for a in assignments):
                raise ShardingError(f"table {table_name}: inconsistent num_parts")
            parts = sorted(a.part_index for a in assignments)
            if parts != list(range(num_parts)):
                raise ShardingError(
                    f"table {table_name}: partitions {parts} do not cover 0..{num_parts - 1}"
                )
        if coverage:
            raise ShardingError(f"unknown tables assigned: {sorted(coverage)}")


def singular_plan(model: ModelConfig) -> ShardingPlan:
    """The non-distributed baseline: everything on one server."""
    return ShardingPlan(model_name=model.name, strategy=SINGULAR, shards=[])

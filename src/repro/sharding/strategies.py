"""The paper's capacity-driven sharding strategies (Table I).

==================  =========================================================
strategy            placement rule
==================  =========================================================
``1-shard``         all embedding tables on one sparse shard (worst case)
``cap-bal``         equal total embedding-table *bytes* per shard
``load-bal``        equal estimated *pooling factor* (lookup work) per shard
``NSBP``            tables grouped by net, packed into bins up to a size
                    limit; tables larger than the limit get whole shards
                    via row partitioning
==================  =========================================================

``singular`` (distributed inference disabled) is represented by
:func:`repro.sharding.plan.singular_plan`.

The balanced strategies use longest-processing-time greedy placement, the
standard heuristic for makespan balancing; the paper likewise uses
heuristics because exhaustive search is intractable (Section III-B).
"""

from __future__ import annotations

import abc
import math

from repro.models.config import ModelConfig, TableConfig
from repro.sharding.plan import ShardingError, ShardingPlan, ShardSpec, TableAssignment


class ShardingStrategy(abc.ABC):
    """Produces a :class:`ShardingPlan` for a model."""

    name: str = ""

    @abc.abstractmethod
    def build_plan(
        self,
        model: ModelConfig,
        num_shards: int,
        pooling: dict[str, float] | None = None,
    ) -> ShardingPlan:
        """Build and validate a plan with ``num_shards`` sparse shards."""

    def _finish(self, model: ModelConfig, shards: list[ShardSpec]) -> ShardingPlan:
        plan = ShardingPlan(model_name=model.name, strategy=self.name, shards=shards)
        plan.validate(model)
        return plan


class OneShardStrategy(ShardingStrategy):
    """All embedding tables on a single sparse shard (paper's worst case)."""

    name = "1-shard"

    def build_plan(self, model, num_shards=1, pooling=None):
        if num_shards != 1:
            raise ShardingError("1-shard strategy places everything on one shard")
        shard = ShardSpec(0, [TableAssignment(t.name, 0) for t in model.tables])
        return self._finish(model, [shard])


def _greedy_balance(
    model: ModelConfig,
    num_shards: int,
    weight: dict[str, float],
    strategy_name: str,
) -> list[ShardSpec]:
    """LPT greedy: heaviest table first, onto the lightest shard."""
    if num_shards < 1:
        raise ShardingError("num_shards must be >= 1")
    budget = sum(t.nbytes for t in model.tables) / num_shards
    oversized = [t.name for t in model.tables if t.nbytes > 1.5 * budget]
    if oversized and num_shards > 1:
        raise ShardingError(
            f"{strategy_name}: tables {oversized} exceed the per-shard budget; "
            "huge tables require row partitioning (use NSBP)"
        )
    loads = [0.0] * num_shards
    byte_loads = [0.0] * num_shards  # tie-break so zero-weight tables spread out
    shards = [ShardSpec(i) for i in range(num_shards)]
    order = sorted(model.tables, key=lambda t: (-weight[t.name], t.name))
    for table in order:
        target = min(range(num_shards), key=lambda i: (loads[i], byte_loads[i], i))
        shards[target].assignments.append(TableAssignment(table.name, target))
        loads[target] += weight[table.name]
        byte_loads[target] += table.nbytes
    empty = [s.index for s in shards if not s.assignments]
    if empty:
        raise ShardingError(f"{strategy_name}: shards {empty} ended up empty")
    return shards


class CapacityBalancedStrategy(ShardingStrategy):
    """Equal embedding-table bytes per shard (paper Section III-B1)."""

    name = "cap-bal"

    def build_plan(self, model, num_shards, pooling=None):
        weights = {t.name: t.nbytes for t in model.tables}
        return self._finish(
            model, _greedy_balance(model, num_shards, weights, self.name)
        )


class LoadBalancedStrategy(ShardingStrategy):
    """Equal estimated pooling work per shard (paper Section III-B2)."""

    name = "load-bal"

    def build_plan(self, model, num_shards, pooling=None):
        if pooling is None:
            raise ShardingError("load-bal requires estimated pooling factors")
        missing = {t.name for t in model.tables} - set(pooling)
        if missing:
            raise ShardingError(f"pooling estimates missing for {sorted(missing)}")
        weights = {t.name: pooling[t.name] for t in model.tables}
        return self._finish(
            model, _greedy_balance(model, num_shards, weights, self.name)
        )


class NetSpecificBinPacking(ShardingStrategy):
    """Group tables by net, pack bins to a size limit (Section III-B3).

    Tables are packed per net, in declaration order (the paper packs the
    existing training parameter servers, preserving their grouping), into
    bins no larger than a limit ``L``.  A table larger than ``L`` is row
    partitioned into ``ceil(bytes / L)`` whole shards.  ``L`` is searched
    so the total bin count equals the requested shard count.
    """

    name = "NSBP"

    def build_plan(self, model, num_shards, pooling=None):
        if num_shards < 1:
            raise ShardingError("num_shards must be >= 1")
        if num_shards < len(model.nets):
            raise ShardingError(
                f"NSBP needs at least one shard per net ({len(model.nets)})"
            )
        limit = self._search_limit(model, num_shards)
        bins = self._pack(model, limit)
        if len(bins) != num_shards:
            raise ShardingError(
                f"NSBP could not reach exactly {num_shards} shards "
                f"(closest packing gives {len(bins)})"
            )
        shards = []
        for index, assignments in enumerate(bins):
            shards.append(
                ShardSpec(
                    index,
                    [
                        TableAssignment(name, index, part_index, num_parts)
                        for name, part_index, num_parts in assignments
                    ],
                )
            )
        return self._finish(model, shards)

    @staticmethod
    def _pack(model: ModelConfig, limit: float) -> list[list[tuple[str, int, int]]]:
        """Pack per net; returns per-bin lists of (table, part, num_parts)."""
        bins: list[list[tuple[str, int, int]]] = []
        for net in model.nets:
            current: list[tuple[str, int, int]] = []
            current_bytes = 0.0
            for table in model.tables_for_net(net.name):
                if table.nbytes > limit:
                    # Huge table: its own run of row-partition shards.
                    if current:
                        bins.append(current)
                        current, current_bytes = [], 0.0
                    parts = max(2, math.ceil(table.nbytes / limit))
                    for part in range(parts):
                        bins.append([(table.name, part, parts)])
                    continue
                if current and current_bytes + table.nbytes > limit:
                    bins.append(current)
                    current, current_bytes = [], 0.0
                current.append((table.name, 0, 1))
                current_bytes += table.nbytes
            if current:
                bins.append(current)
        return bins

    def _search_limit(self, model: ModelConfig, num_shards: int) -> float:
        """Find a size limit whose packing yields exactly ``num_shards`` bins."""
        total = sum(t.nbytes for t in model.tables)
        lo, hi = total / (4 * num_shards), total * 1.01

        def count(limit: float) -> int:
            return len(self._pack(model, limit))

        # Bin count decreases (weakly) as the limit grows: bisect.
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if count(mid) > num_shards:
                lo = mid
            else:
                hi = mid
        if count(hi) == num_shards:
            return hi
        # The count function can jump past the target; scan a fine grid
        # around the bisection point for an exact hit.
        for factor in [1.0 + k * 0.002 for k in range(-150, 151)]:
            limit = hi * factor
            if limit > 0 and count(limit) == num_shards:
                return limit
        raise ShardingError(
            f"NSBP: no size limit yields exactly {num_shards} shards for {model.name}"
        )


#: Strategy registry keyed by the labels used in the paper's figures.
STRATEGIES: dict[str, ShardingStrategy] = {
    strategy.name: strategy
    for strategy in (
        OneShardStrategy(),
        CapacityBalancedStrategy(),
        LoadBalancedStrategy(),
        NetSpecificBinPacking(),
    )
}

"""Automatic sharding (the paper's headline future work, Section X).

"Future work is needed to automate model sharding to target data-center
resource efficiency and per-model SLA and QPS requirements."  This module
implements that workflow on top of the reproduction's substrates:

1. **feasibility**: enumerate (strategy, shard count) candidates whose
   per-shard capacity fits the sparse-tier DRAM budget (the capacity
   constraint that motivates distributed inference in the first place);
2. **profiling**: simulate each candidate on a request sample -- the
   "workflow that dynamically profiles models" the paper calls for
   (Section VI) -- measuring P99 latency overhead and aggregate CPU;
3. **selection**: among candidates meeting the latency SLA, pick the one
   minimizing data-center resources (shard count, then CPU overhead),
   mirroring the heuristic that fewer shards cost fewer resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.config import ModelConfig
from repro.requests.generator import Request, RequestGenerator
from repro.serving.simulator import ServingConfig
from repro.sharding.plan import ShardingError, ShardingPlan, singular_plan
from repro.sharding.pooling import estimate_pooling_factors
from repro.sharding.strategies import STRATEGIES


@dataclass(frozen=True)
class AutoShardObjective:
    """What the auto-sharder optimizes for."""

    shard_dram_budget: float
    """Usable DRAM per sparse shard server, in bytes."""

    max_p99_latency_overhead: float = 0.25
    """SLA guard: admissible P99 latency overhead versus singular."""

    strategies: tuple[str, ...] = ("load-bal", "cap-bal", "NSBP")
    shard_counts: tuple[int, ...] = (2, 4, 8, 16)
    profile_requests: int = 120


@dataclass
class CandidateEvaluation:
    """Profiling outcome for one candidate plan."""

    plan: ShardingPlan
    feasible_capacity: bool
    p99_latency_overhead: float = float("nan")
    p50_latency_overhead: float = float("nan")
    cpu_overhead: float = float("nan")
    meets_sla: bool = False

    @property
    def label(self) -> str:
        return self.plan.label


@dataclass
class AutoShardResult:
    """The chosen plan plus the full evaluation record."""

    chosen: ShardingPlan | None
    evaluations: list[CandidateEvaluation] = field(default_factory=list)

    def evaluation_for(self, label: str) -> CandidateEvaluation:
        for evaluation in self.evaluations:
            if evaluation.label == label:
                return evaluation
        raise KeyError(label)


def _candidate_plans(
    model: ModelConfig,
    objective: AutoShardObjective,
    pooling: dict[str, float],
) -> list[ShardingPlan]:
    plans = []
    for count in objective.shard_counts:
        for strategy_name in objective.strategies:
            try:
                plans.append(
                    STRATEGIES[strategy_name].build_plan(model, count, pooling)
                )
            except ShardingError:
                continue  # e.g. cap-bal on a dominant-table model
    return plans


def auto_shard(
    model: ModelConfig,
    objective: AutoShardObjective,
    serving: ServingConfig | None = None,
    seed: int = 17,
) -> AutoShardResult:
    """Run the profile-and-select workflow; returns the chosen plan.

    ``chosen`` is None when no candidate satisfies both the capacity
    budget and the latency SLA (the caller must relax one of them).
    """
    from repro.experiments.runner import run_configuration  # local: avoids cycle

    serving = serving or ServingConfig(seed=seed)
    pooling = estimate_pooling_factors(model, num_requests=500, seed=seed)
    requests = RequestGenerator(model, seed=seed).generate_many(
        objective.profile_requests
    )

    baseline = run_configuration(model, singular_plan(model), requests, serving)
    base_p99 = float(np.percentile(baseline.e2e, 99))
    base_p50 = float(np.percentile(baseline.e2e, 50))
    base_cpu = float(np.percentile(baseline.cpu, 50))

    result = AutoShardResult(chosen=None)
    viable: list[tuple[tuple, CandidateEvaluation]] = []
    for plan in _candidate_plans(model, objective, pooling):
        capacities = plan.capacity_by_shard(model)
        evaluation = CandidateEvaluation(
            plan=plan,
            feasible_capacity=max(capacities) <= objective.shard_dram_budget,
        )
        result.evaluations.append(evaluation)
        if not evaluation.feasible_capacity:
            continue
        profiled = run_configuration(model, plan, requests, serving)
        evaluation.p99_latency_overhead = (
            float(np.percentile(profiled.e2e, 99)) - base_p99
        ) / base_p99
        evaluation.p50_latency_overhead = (
            float(np.percentile(profiled.e2e, 50)) - base_p50
        ) / base_p50
        evaluation.cpu_overhead = (
            float(np.percentile(profiled.cpu, 50)) - base_cpu
        ) / base_cpu
        evaluation.meets_sla = (
            evaluation.p99_latency_overhead <= objective.max_p99_latency_overhead
        )
        if evaluation.meets_sla:
            # Fewer shards first (fewer servers), then less CPU overhead.
            viable.append(
                ((plan.num_shards, evaluation.cpu_overhead), evaluation)
            )
    if viable:
        viable.sort(key=lambda entry: entry[0])
        result.chosen = viable[0][1].plan
    return result

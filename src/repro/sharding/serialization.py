"""Serialization of sharding plans and model configs (paper Section III-C).

The paper's partitioning tool "employs a user-supplied configuration to
group embedding tables and their operators, insert RPC operators, generate
new Caffe2 nets, and then serialize the model to storage."  This module is
that storage format: plans and model configs round-trip through plain JSON
so a sharding decision can be published once and loaded by every serving
tier (and by humans reviewing it).

The format is versioned; loading verifies structural integrity and -- when
given the model -- full plan validity, so a stale or hand-edited plan
cannot reach serving.
"""

from __future__ import annotations

import json

from repro.core.types import DType
from repro.models.config import (
    FeatureScope,
    ModelConfig,
    NetConfig,
    RequestProfile,
    TableConfig,
)
from repro.core.types import OpCategory
from repro.sharding.plan import ShardingError, ShardingPlan, ShardSpec, TableAssignment

FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a payload cannot be decoded into a valid object."""


# -- sharding plans ------------------------------------------------------------
def plan_to_dict(plan: ShardingPlan) -> dict:
    return {
        "version": FORMAT_VERSION,
        "kind": "sharding-plan",
        "model_name": plan.model_name,
        "strategy": plan.strategy,
        "shards": [
            {
                "index": shard.index,
                "assignments": [
                    {
                        "table": a.table_name,
                        "part": a.part_index,
                        "parts": a.num_parts,
                    }
                    for a in shard.assignments
                ],
            }
            for shard in plan.shards
        ],
    }


def plan_from_dict(payload: dict, model: ModelConfig | None = None) -> ShardingPlan:
    _check_header(payload, "sharding-plan")
    try:
        shards = [
            ShardSpec(
                index=entry["index"],
                assignments=[
                    TableAssignment(
                        table_name=a["table"],
                        shard_index=entry["index"],
                        part_index=a["part"],
                        num_parts=a["parts"],
                    )
                    for a in entry["assignments"]
                ],
            )
            for entry in payload["shards"]
        ]
        plan = ShardingPlan(
            model_name=payload["model_name"],
            strategy=payload["strategy"],
            shards=shards,
        )
    except (KeyError, TypeError, ShardingError) as error:
        raise SerializationError(f"malformed plan payload: {error}") from error
    if model is not None:
        if model.name != plan.model_name:
            raise SerializationError(
                f"plan was built for {plan.model_name!r}, not {model.name!r}"
            )
        plan.validate(model)
    return plan


def dump_plan(plan: ShardingPlan) -> str:
    return json.dumps(plan_to_dict(plan), indent=2, sort_keys=True)


def load_plan(text: str, model: ModelConfig | None = None) -> ShardingPlan:
    return plan_from_dict(json.loads(text), model)


# -- model configs -----------------------------------------------------------
def model_to_dict(model: ModelConfig) -> dict:
    return {
        "version": FORMAT_VERSION,
        "kind": "model-config",
        "name": model.name,
        "dense_param_bytes": model.dense_param_bytes,
        "profile": {
            "median_items": model.profile.median_items,
            "sigma_items": model.profile.sigma_items,
            "batch_size": model.profile.batch_size,
            "min_items": model.profile.min_items,
            "max_items": model.profile.max_items,
            "dense_feature_bytes": model.profile.dense_feature_bytes,
        },
        "nets": [
            {
                "name": net.name,
                "dense_us_per_item": net.dense_us_per_item,
                "dense_us_fixed": net.dense_us_fixed,
                "op_mix": {category.name: value for category, value in net.op_mix.items()},
            }
            for net in model.nets
        ],
        "tables": [
            {
                "name": t.name,
                "net": t.net,
                "num_rows": t.num_rows,
                "dim": t.dim,
                "dtype": t.dtype.name,
                "scope": t.scope.value,
                "activation_prob": t.activation_prob,
                "mean_ids": t.mean_ids,
                "deterministic_ids": t.deterministic_ids,
            }
            for t in model.tables
        ],
    }


def model_from_dict(payload: dict) -> ModelConfig:
    _check_header(payload, "model-config")
    try:
        profile = RequestProfile(**payload["profile"])
        nets = tuple(
            NetConfig(
                name=entry["name"],
                dense_us_per_item=entry["dense_us_per_item"],
                dense_us_fixed=entry["dense_us_fixed"],
                op_mix={
                    OpCategory[name]: value
                    for name, value in entry["op_mix"].items()
                },
            )
            for entry in payload["nets"]
        )
        tables = tuple(
            TableConfig(
                name=entry["name"],
                net=entry["net"],
                num_rows=entry["num_rows"],
                dim=entry["dim"],
                dtype=DType[entry["dtype"]],
                scope=FeatureScope(entry["scope"]),
                activation_prob=entry["activation_prob"],
                mean_ids=entry["mean_ids"],
                deterministic_ids=entry["deterministic_ids"],
            )
            for entry in payload["tables"]
        )
        return ModelConfig(
            name=payload["name"],
            nets=nets,
            tables=tables,
            profile=profile,
            dense_param_bytes=payload["dense_param_bytes"],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed model payload: {error}") from error


def dump_model(model: ModelConfig) -> str:
    return json.dumps(model_to_dict(model), indent=2, sort_keys=True)


def load_model(text: str) -> ModelConfig:
    return model_from_dict(json.loads(text))


def _check_header(payload: dict, expected_kind: str) -> None:
    if not isinstance(payload, dict):
        raise SerializationError("payload must be a JSON object")
    if payload.get("kind") != expected_kind:
        raise SerializationError(
            f"expected kind {expected_kind!r}, got {payload.get('kind')!r}"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {payload.get('version')!r}"
        )

"""Replication planning in the data-center (paper Section VII-C).

Serving tiers replicate model instances to meet aggregate QPS.  For a
singular deployment, replicating for *compute* drags the entire memory
footprint along: "the large load incurred by the dense layers will cause
the entire model to be replicated to additional servers, including all
embedding tables".  Distributed inference decouples the two: main-shard
replicas carry only dense parameters, sparse-shard replicas carry only
their tables and replicate by their own (much lower) compute demand.

This planner sizes a deployment from measured per-request CPU demand (the
per-shard columns of a :class:`~repro.experiments.runner.RunResult`,
available in FULL *and* AGGREGATE trace modes), a QPS target, and a
utilization ceiling, and reports the replica counts and the total DRAM
the deployment pins -- the efficiency argument of Section VII-C.  For a
co-located mix, ``workload=`` sizes one tenant from its own label-column
rows and its own sharding plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.models.config import ModelConfig
from repro.simulation.platform import SC_LARGE, Platform
from repro.tracing.span import MAIN_SHARD

if TYPE_CHECKING:  # imported lazily to avoid a cycle with the runner
    from repro.experiments.runner import RunResult
    from repro.sharding.plan import ShardingPlan


class PerShardDemandError(ValueError):
    """Raised when a result carries no per-shard CPU demand to size from."""


@dataclass(frozen=True)
class ReplicationDemand:
    """Sizing inputs for one deployment."""

    qps: float
    utilization_target: float = 0.6
    workers_per_replica: int = 32
    platform: Platform = SC_LARGE

    def __post_init__(self):
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if not 0 < self.utilization_target <= 1:
            raise ValueError("utilization_target must be in (0, 1]")


@dataclass
class ReplicationPlan:
    """Replica counts and memory footprint for one configuration."""

    label: str
    main_replicas: int
    sparse_replicas: dict[int, int] = field(default_factory=dict)
    main_memory_bytes: float = 0.0
    sparse_memory_bytes: float = 0.0

    @property
    def total_servers(self) -> int:
        return self.main_replicas + sum(self.sparse_replicas.values())

    @property
    def total_memory_bytes(self) -> float:
        return self.main_memory_bytes + self.sparse_memory_bytes


def _replicas_for(cpu_per_request: float, demand: ReplicationDemand) -> int:
    capacity = demand.workers_per_replica * demand.utilization_target
    return max(1, math.ceil(demand.qps * cpu_per_request / capacity))


def _demand_or_raise(
    result: "RunResult",
    workload: str | None,
    cpu_by_shard: "Mapping[int, float] | None" = None,
) -> "Mapping[int, float]":
    if cpu_by_shard is None:
        cpu_by_shard = result.mean_cpu_by_shard(workload=workload)
    if not cpu_by_shard:
        scope = f" for workload {workload!r}" if workload is not None else ""
        raise PerShardDemandError(
            f"result {result.label!r} has no per-shard CPU demand{scope}: "
            "no completed requests were recorded, so replication cannot be "
            "sized (run the configuration with at least one request)"
        )
    return cpu_by_shard


def _tenant_plan(result: "RunResult", workload: str | None) -> "ShardingPlan":
    if workload is None:
        return result.plan
    return result.plans[result.workload_labels.index(workload)]


def plan_replication(
    model: ModelConfig,
    result: "RunResult",
    demand: ReplicationDemand,
    workload: str | None = None,
    cpu_by_shard: "Mapping[int, float] | None" = None,
) -> ReplicationPlan:
    """Size a deployment of ``result``'s configuration for ``demand``.

    Memory accounting follows the paper: every main replica of a singular
    deployment pins the full model; a distributed main replica pins only
    the dense parameters; each sparse-shard replica pins its shard.

    ``workload`` restricts the demand signal to one tenant of a co-located
    mix (its label-column rows and its own sharding plan) -- the
    standalone sizing of that tenant.  ``cpu_by_shard`` short-circuits the
    column reduction with an already-computed demand mapping (callers
    sizing one result many times, e.g. the capacity planner's utilization
    sweep).  Raises :class:`PerShardDemandError` when the result holds no
    completed requests to size from.
    """
    cpu_by_shard = _demand_or_raise(result, workload, cpu_by_shard)
    main_replicas = _replicas_for(cpu_by_shard.get(MAIN_SHARD, 0.0), demand)

    plan = _tenant_plan(result, workload)
    label = result.label if workload is None else f"{result.label} / {workload}"
    if plan.is_singular:
        return ReplicationPlan(
            label=label,
            main_replicas=main_replicas,
            main_memory_bytes=main_replicas * model.total_bytes,
        )

    sparse_replicas: dict[int, int] = {}
    sparse_memory = 0.0
    for shard in plan.shards:
        replicas = _replicas_for(cpu_by_shard.get(shard.index, 0.0), demand)
        sparse_replicas[shard.index] = replicas
        sparse_memory += replicas * shard.capacity_bytes(model)
    return ReplicationPlan(
        label=label,
        main_replicas=main_replicas,
        sparse_replicas=sparse_replicas,
        main_memory_bytes=main_replicas * model.dense_param_bytes,
        sparse_memory_bytes=sparse_memory,
    )


def memory_efficiency_vs_singular(
    singular: ReplicationPlan, distributed: ReplicationPlan
) -> float:
    """How many times less DRAM the distributed deployment pins."""
    if distributed.total_memory_bytes <= 0:
        raise ValueError("distributed plan has no memory accounted")
    return singular.total_memory_bytes / distributed.total_memory_bytes

"""Capacity planning: SLA policies, replication sizing, elasticity, and
the closed-loop deployment search.

This package absorbs and supersedes the open-loop planners that lived in
``repro.serving`` (``sla.py``, ``replication.py``, ``elasticity.py`` --
kept there as thin deprecation re-export shims) and adds the closed loop
on top: :class:`CapacityPlanner` simulates candidate deployments of a
:class:`~repro.workloads.workload.WorkloadMix` under its real arrival
processes, checks the SLA per workload, sizes each candidate from the
measured per-shard CPU-demand columns (FULL and AGGREGATE trace modes
alike), enforces per-server DRAM capacity, and returns the cheapest
feasible plan.
"""

from repro.planning.capacity import (
    CandidatePlan,
    CandidateSpace,
    CapacityPlanner,
    MixPlan,
    NoFeasiblePlanError,
    PlanningError,
    WorkloadSizing,
)
from repro.planning.elasticity import (
    ElasticityReport,
    assess_elasticity,
    diurnal_qps_curve,
    dram_hours_saved,
)
from repro.planning.replication import (
    PerShardDemandError,
    ReplicationDemand,
    ReplicationPlan,
    memory_efficiency_vs_singular,
    plan_replication,
)
from repro.planning.sla import SlaPolicy, SlaReport, evaluate_sla, sla_sweep

__all__ = [
    "CandidatePlan",
    "CandidateSpace",
    "CapacityPlanner",
    "ElasticityReport",
    "MixPlan",
    "NoFeasiblePlanError",
    "PerShardDemandError",
    "PlanningError",
    "ReplicationDemand",
    "ReplicationPlan",
    "SlaPolicy",
    "SlaReport",
    "WorkloadSizing",
    "assess_elasticity",
    "diurnal_qps_curve",
    "dram_hours_saved",
    "evaluate_sla",
    "memory_efficiency_vs_singular",
    "plan_replication",
    "sla_sweep",
]

"""Closed-loop, SLA-driven capacity planning over workload mixes.

The paper's core argument is that **capacity** -- not compute -- drives
scale-out, and that the payoff of distributed serving only shows up when
a whole deployment (replicas x shards x DRAM) is sized against a latency
SLA under real traffic.  This module closes that loop:

1. **Simulate** every candidate sharding configuration under the mix's
   actual arrival processes (``run_mix_suite``; contention between
   co-located tenants is simulated on shared hosts, in FULL or AGGREGATE
   trace mode -- the columns are bit-identical either way);
2. **Check the SLA per workload** on the simulated latencies (the label
   column splits a mix's latencies by tenant);
3. **Size** each feasible candidate from the measured per-shard CPU
   demand columns and the arrival process's peak rate, at every
   utilization target in the candidate space;
4. **Check capacity**: every server of the deployment must fit its
   pinned bytes in platform DRAM -- the constraint that makes scale-out
   capacity-driven (a singular DRM1+DRM2 replica simply does not fit);
5. **Choose** the minimum-server plan, breaking ties toward minimum
   pinned DRAM, then toward earlier candidates (so listing utilization
   targets headroom-first makes ties resolve conservatively).

The search is deterministic: identical inputs produce bit-identical
plans across trace modes and across serial/parallel candidate
evaluation (regression-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.planning.replication import (
    ReplicationDemand,
    ReplicationPlan,
    plan_replication,
)
from repro.planning.sla import SlaPolicy, SlaReport, evaluate_sla
from repro.tracing.span import MAIN_SHARD
from repro.workloads.workload import Workload, WorkloadMix

if TYPE_CHECKING:  # heavy imports stay lazy: repro.experiments imports serving
    from repro.chaos.experiment import AvailabilityAssessment
    from repro.chaos.faults import FaultExperiment, HealingPolicy
    from repro.experiments.configs import ShardingConfiguration
    from repro.experiments.runner import RunResult, SuiteSettings
    from repro.resilience.policy import ResiliencePolicy


class PlanningError(ValueError):
    """Raised when a capacity-planning search cannot be carried out."""


class NoFeasiblePlanError(PlanningError):
    """Raised when no candidate meets the SLA within platform capacity."""


@dataclass(frozen=True)
class CandidateSpace:
    """The deployment space a :class:`CapacityPlanner` searches.

    ``configurations`` defaults to the paper matrix shared by every model
    of the mix (:func:`~repro.experiments.configs.mix_configurations`);
    ``utilization_targets`` are CPU ceilings the sizing may load replicas
    to -- list them headroom-first (ascending) so equal-cost ties resolve
    toward the safer target.
    """

    configurations: "tuple[ShardingConfiguration, ...] | None" = None
    utilization_targets: tuple[float, ...] = (0.4, 0.6, 0.8)

    def __post_init__(self):
        targets = tuple(float(target) for target in self.utilization_targets)
        if not targets:
            raise ValueError("utilization_targets must be non-empty")
        if any(not 0 < target <= 1 for target in targets):
            raise ValueError(
                f"utilization targets must be in (0, 1], got {targets}"
            )
        object.__setattr__(self, "utilization_targets", targets)
        if self.configurations is not None:
            object.__setattr__(
                self, "configurations", tuple(self.configurations)
            )


@dataclass(frozen=True)
class WorkloadSizing:
    """One tenant's view of one candidate deployment."""

    workload: str
    model_name: str
    qps: float
    """Sizing rate: the tenant's arrival-process peak QPS."""
    sla: SlaReport
    """SLA fallout of this tenant's *simulated* latencies (contention
    with the co-located tenants included)."""
    standalone: ReplicationPlan
    """What this tenant alone would pin (its label-column demand, its own
    sharding plan) -- the attribution view of the shared deployment."""

    @property
    def meets_sla(self) -> bool:
        return self.sla.met_p99


@dataclass(frozen=True)
class CandidatePlan:
    """One evaluated point of the deployment space, fully sized.

    Replica counts reconcile the shared hosts of a co-located mix: tier
    demand is the *sum* of the tenants' per-shard CPU demand, and every
    replica of a tier pins the *sum* of the tenants' bytes on that host.
    """

    label: str
    utilization_target: float
    workloads: tuple[WorkloadSizing, ...]
    main_replicas: int
    sparse_replicas: dict[int, int]
    main_memory_bytes: float
    sparse_memory_bytes: float
    main_bytes_per_replica: float
    sparse_bytes_per_host: dict[int, float]
    main_dram_capacity: float
    sparse_dram_capacity: float

    @property
    def total_servers(self) -> int:
        return self.main_replicas + sum(self.sparse_replicas.values())

    @property
    def total_memory_bytes(self) -> float:
        return self.main_memory_bytes + self.sparse_memory_bytes

    @property
    def meets_sla(self) -> bool:
        """Every tenant's simulated P99 within the SLA window."""
        return all(sizing.meets_sla for sizing in self.workloads)

    @property
    def fits_memory(self) -> bool:
        """Every server's pinned bytes within its platform's DRAM."""
        if self.main_bytes_per_replica > self.main_dram_capacity:
            return False
        return all(
            pinned <= self.sparse_dram_capacity
            for pinned in self.sparse_bytes_per_host.values()
        )

    @property
    def feasible(self) -> bool:
        return self.meets_sla and self.fits_memory

    @property
    def worst_drop_rate(self) -> float:
        return max(sizing.sla.drop_rate for sizing in self.workloads)


@dataclass(frozen=True)
class MixPlan:
    """Outcome of one closed-loop search over a workload mix."""

    policy: SlaPolicy
    chosen: CandidatePlan | None
    candidates: tuple[CandidatePlan, ...]

    @property
    def feasible(self) -> bool:
        return self.chosen is not None

    def require(self) -> CandidatePlan:
        """The chosen plan, or :class:`NoFeasiblePlanError` with the
        reason no candidate qualified."""
        if self.chosen is None:
            reasons = "; ".join(
                f"{candidate.label} @ {candidate.utilization_target:.0%}: "
                + (
                    "does not fit DRAM"
                    if not candidate.fits_memory
                    else f"worst drop rate {candidate.worst_drop_rate:.1%}"
                )
                for candidate in self.candidates
            )
            raise NoFeasiblePlanError(
                "no candidate deployment meets the SLA within platform "
                f"capacity (target {self.policy.target_latency * 1e3:.2f} ms): "
                f"{reasons}"
            )
        return self.chosen


@dataclass(frozen=True)
class CapacityPlanner:
    """Searches the deployment space for the cheapest SLA-meeting plan.

    ``policy=None`` derives the SLA from the mix's own singular baseline
    (``from_baseline_quantile`` at ``baseline_quantile`` with ``slack``),
    which requires the singular configuration in the candidate space.
    The default slack of 1.5 mirrors how production windows are set:
    wide enough that sharded serving's P99 overheads (up to ~40-60% in
    the paper's Figure 6) can qualify, tight enough that a pathological
    configuration still falls out.
    """

    policy: SlaPolicy | None = None
    space: CandidateSpace = field(default_factory=CandidateSpace)
    settings: "SuiteSettings | None" = None
    workers_per_replica: int = 32
    baseline_quantile: float = 99.0
    slack: float = 1.5

    def plan(
        self,
        workload: "Workload | WorkloadMix",
        parallel: bool = False,
        max_workers: int | None = None,
        results_sink: "dict[str, RunResult] | None" = None,
    ) -> MixPlan:
        """Run the closed loop: simulate, check SLA, size, choose.

        ``parallel`` fans the candidate simulations out over worker
        processes -- one process per simulated cluster, via the shared
        :func:`repro.experiments.parallel.run_cluster_tasks` pool --
        with byte-identical results, hence an identical plan.  Pair it
        with ``settings.kernel = "batched"`` to also take the faster DES
        kernel inside every worker (bit-identical by the kernel
        equivalence contract).  ``settings.kernel = "vectorized"`` is
        accepted but falls back to the batched kernel here: candidate
        simulations are co-located open-loop mixes, outside the columnar
        path's eligible regime (the fallback and its reason are recorded
        on every candidate's ``RunResult.kernel_used`` /
        ``kernel_fallback``).
        ``results_sink`` receives the candidate simulations keyed by
        configuration label, so callers can reuse the measurements (e.g.
        day-long elasticity sizing) without re-simulating.
        """
        from repro.experiments.configs import mix_configurations
        from repro.experiments.parallel import run_mix_suite_parallel
        from repro.experiments.runner import SuiteSettings, run_mix_suite
        from repro.sharding.plan import SINGULAR

        mix = (
            WorkloadMix((workload,)) if isinstance(workload, Workload) else workload
        )
        qps: dict[str, float] = {}
        for tenant in mix.workloads:
            rate = tenant.arrivals.peak_rate()
            if rate is None:
                raise PlanningError(
                    f"workload {tenant.name!r} uses closed-loop (serial) "
                    "arrivals, which have no intrinsic rate to size "
                    "against; give it an open-loop arrival process"
                )
            qps[tenant.name] = float(rate)

        settings = self.settings or SuiteSettings()
        configurations = self.space.configurations or mix_configurations(
            tenant.model.name for tenant in mix.workloads
        )
        if parallel:
            results = run_mix_suite_parallel(
                mix, settings, tuple(configurations), max_workers=max_workers
            )
        else:
            results = run_mix_suite(mix, settings, tuple(configurations))
        if results_sink is not None:
            results_sink.update(results)

        policy = self.policy
        if policy is None:
            baseline = results.get(SINGULAR)
            if baseline is None:
                raise PlanningError(
                    "no explicit SlaPolicy and the candidate space does not "
                    "include the singular configuration to derive one from"
                )
            policy = SlaPolicy.from_baseline_quantile(
                baseline.e2e, quantile=self.baseline_quantile, slack=self.slack
            )

        serving = settings.resolved_serving()
        candidates: list[CandidatePlan] = []
        for result in results.values():
            per_workload_e2e = result.per_workload_e2e()
            demand = {
                tenant.name: result.mean_cpu_by_shard(workload=tenant.name)
                for tenant in mix.workloads
            }
            reports = {
                tenant.name: evaluate_sla(
                    tenant.name, per_workload_e2e[tenant.name], policy
                )
                for tenant in mix.workloads
            }
            for utilization in self.space.utilization_targets:
                candidates.append(
                    self._size_candidate(
                        mix, result, utilization, qps, demand, reports, serving
                    )
                )

        chosen: CandidatePlan | None = None
        best_key: tuple[int, float] | None = None
        for candidate in candidates:
            if not candidate.feasible:
                continue
            key = (candidate.total_servers, candidate.total_memory_bytes)
            if best_key is None or key < best_key:
                best_key, chosen = key, candidate
        return MixPlan(policy=policy, chosen=chosen, candidates=tuple(candidates))

    def assess_availability(
        self,
        workload: "Workload | WorkloadMix",
        configuration: "ShardingConfiguration | CandidatePlan | MixPlan",
        experiments: "tuple[FaultExperiment, ...]",
        replica_counts: tuple[int, ...] = (1, 2, 3),
        *,
        healing: "HealingPolicy | None" = None,
        failover_timeout: float = 2e-3,
        domains: int = 1,
        placement: str = "spread",
        policy: "ResiliencePolicy | None" = None,
        window: float = 0.5,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> "AvailabilityAssessment":
        """Re-simulate a chosen candidate under a chaos suite.

        Answers the availability side of the sizing question the closed
        loop leaves open: the chosen deployment meets the SLA on a
        healthy fleet, but how many sparse replicas -- spread across how
        many fault ``domains``, under what retry/hedging ``policy`` --
        does it need to keep N-nines SLO retention when the
        ``experiments`` fire?  Delegates to
        :func:`repro.chaos.experiment.availability_sweep` with the
        planner's own settings; the SLO is the planner policy's target
        latency when one is set, otherwise the healthy p99 times the
        planner's ``slack``.  ``configuration`` may be the
        :class:`MixPlan` / :class:`CandidatePlan` returned by
        :meth:`plan` (its label is mapped back onto the candidate
        matrix) or an explicit sharding configuration.  ``domains`` and
        ``placement`` (``"spread"`` or ``"packed"``) choose the
        domain-aware replica layout the faulted replays use, and
        ``policy`` is a :class:`~repro.resilience.ResiliencePolicy`
        applied to the faulted replays only (a ``hedge_quantile`` is
        resolved against the healthy baseline).  With ``parallel=True``
        the healthy baseline replay and every replica-count replay run
        as one pooled batch of cluster simulations.
        """
        from repro.chaos.experiment import availability_sweep
        from repro.experiments.configs import mix_configurations

        mix = (
            WorkloadMix((workload,)) if isinstance(workload, Workload) else workload
        )
        if isinstance(configuration, MixPlan):
            configuration = configuration.require()
        if isinstance(configuration, CandidatePlan):
            label = configuration.label
            matches = [
                candidate
                for candidate in mix_configurations(
                    tenant.model.name for tenant in mix.workloads
                )
                if candidate.label == label
            ]
            if not matches:
                raise PlanningError(
                    f"cannot map chosen plan label {label!r} back onto the "
                    "candidate configuration matrix"
                )
            configuration = matches[0]
        slo = self.policy.target_latency if self.policy is not None else None
        return availability_sweep(
            mix,
            configuration,
            experiments,
            replica_counts,
            healing=healing,
            failover_timeout=failover_timeout,
            domains=domains,
            placement=placement,
            policy=policy,
            settings=self.settings,
            slo_latency=slo,
            slo_slack=self.slack,
            window=window,
            parallel=parallel,
            max_workers=max_workers,
        )

    def _size_candidate(
        self,
        mix: WorkloadMix,
        result: "RunResult",
        utilization: float,
        qps: Mapping[str, float],
        demand: Mapping[str, Mapping[int, float]],
        reports: Mapping[str, SlaReport],
        serving,
    ) -> CandidatePlan:
        """Size one (configuration, utilization) candidate."""
        capacity = self.workers_per_replica * utilization

        sizings = []
        for tenant in mix.workloads:
            tenant_demand = ReplicationDemand(
                qps=qps[tenant.name],
                utilization_target=utilization,
                workers_per_replica=self.workers_per_replica,
            )
            sizings.append(
                WorkloadSizing(
                    workload=tenant.name,
                    model_name=tenant.model.name,
                    qps=qps[tenant.name],
                    sla=reports[tenant.name],
                    standalone=plan_replication(
                        tenant.model,
                        result,
                        tenant_demand,
                        workload=tenant.name,
                        cpu_by_shard=demand[tenant.name],
                    ),
                )
            )

        # Reconcile the shared hosts: demands add, pinned bytes add.
        main_demand = sum(
            qps[tenant.name] * demand[tenant.name].get(MAIN_SHARD, 0.0)
            for tenant in mix.workloads
        )
        main_replicas = max(1, math.ceil(main_demand / capacity))
        main_bytes_per_replica = sum(
            tenant.model.total_bytes
            if plan.is_singular
            else tenant.model.dense_param_bytes
            for tenant, plan in zip(mix.workloads, result.plans)
        )
        host_bytes: dict[int, float] = {}
        host_demand: dict[int, float] = {}
        for tenant, plan in zip(mix.workloads, result.plans):
            tenant_cpu = demand[tenant.name]
            for shard in plan.shards:
                host_bytes[shard.index] = host_bytes.get(
                    shard.index, 0.0
                ) + shard.capacity_bytes(tenant.model)
                host_demand[shard.index] = host_demand.get(
                    shard.index, 0.0
                ) + qps[tenant.name] * tenant_cpu.get(shard.index, 0.0)
        sparse_replicas = {
            index: max(1, math.ceil(host_demand[index] / capacity))
            for index in sorted(host_bytes)
        }
        sparse_memory = sum(
            sparse_replicas[index] * host_bytes[index] for index in sparse_replicas
        )
        return CandidatePlan(
            label=result.label,
            utilization_target=utilization,
            workloads=tuple(sizings),
            main_replicas=main_replicas,
            sparse_replicas=sparse_replicas,
            main_memory_bytes=main_replicas * main_bytes_per_replica,
            sparse_memory_bytes=sparse_memory,
            main_bytes_per_replica=main_bytes_per_replica,
            sparse_bytes_per_host=host_bytes,
            main_dram_capacity=serving.main_platform.dram_capacity,
            sparse_dram_capacity=serving.sparse_platform.dram_capacity,
        )

"""Diurnal elasticity of serving deployments (paper Section I).

The paper motivates homogeneous-infrastructure serving with elasticity:
"clusters with specialized configurations cannot easily expand resources
during periods of high activity or efficiently shrink resources during
periods of low activity.  This is particularly true of workloads affected
by diurnal traffic patterns."

This module quantifies that argument: given a diurnal QPS curve -- either
a raw per-hour array or, arrival-conditioned, the *same*
:class:`~repro.workloads.arrivals.PiecewiseRateArrivals` process that
replayed the traffic -- size the deployment step by step with the
replication planner and compare the resource-hours (servers, DRAM) of
singular versus distributed serving.  Because a singular replica pins the
whole model, scaling it with traffic is memory-expensive; distributed
serving scales dense main-shard replicas elastically while the sparse
tier stays nearly constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.models.config import ModelConfig
from repro.planning.replication import ReplicationDemand, plan_replication

# The diurnal curve lives (generalized) in the workload subsystem so
# elasticity sizing and diurnal arrival replay share one definition.
from repro.workloads.arrivals import PiecewiseRateArrivals, diurnal_qps_curve  # noqa: F401

if TYPE_CHECKING:
    from repro.experiments.runner import RunResult

_HOUR_SECONDS = 3600.0


@dataclass
class ElasticityReport:
    """Resource-hours of one deployment across a diurnal day."""

    label: str
    server_hours: float
    dram_byte_hours: float
    peak_servers: int
    trough_servers: int
    hourly_servers: list[int] = field(default_factory=list)

    @property
    def elasticity_ratio(self) -> float:
        """Peak-to-trough server ratio -- how much the tier breathes.

        Well-defined on degenerate inputs: an empty curve (no deployment
        ever sized, ``peak_servers == 0``) does not breathe and reports
        ``1.0``; a zero-server trough is clamped to one server, since a
        tier cannot shrink below a single replica.
        """
        if self.peak_servers <= 0:
            return 1.0
        return self.peak_servers / max(1, self.trough_servers)


def assess_elasticity(
    model: ModelConfig,
    result: "RunResult",
    qps_curve: "np.ndarray | Sequence[float] | PiecewiseRateArrivals",
    utilization_target: float = 0.6,
    workers_per_replica: int = 32,
    workload: str | None = None,
) -> ElasticityReport:
    """Size ``result``'s configuration for every step of the curve.

    ``qps_curve`` is either an array of per-hour QPS samples (the
    historical interface) or a
    :class:`~repro.workloads.arrivals.PiecewiseRateArrivals` process, in
    which case sizing consumes the *identical* rate function the arrival
    replay drew from -- each segment weighted by its real duration
    (``interval_seconds``), so resource-hours stay calibrated whatever
    the curve resolution.  ``workload`` sizes one tenant of a co-located
    mix from its own label-column demand.
    """
    if isinstance(qps_curve, PiecewiseRateArrivals):
        rates: Sequence[float] = qps_curve.rates
        step_hours = qps_curve.interval_seconds / _HOUR_SECONDS
    else:
        rates = np.asarray(qps_curve, dtype=float)
        step_hours = 1.0
    server_hours = 0.0
    dram_byte_hours = 0.0
    hourly = []
    for qps in rates:
        demand = ReplicationDemand(
            qps=float(qps),
            utilization_target=utilization_target,
            workers_per_replica=workers_per_replica,
        )
        deployment = plan_replication(model, result, demand, workload=workload)
        hourly.append(deployment.total_servers)
        server_hours += deployment.total_servers * step_hours
        dram_byte_hours += deployment.total_memory_bytes * step_hours
    return ElasticityReport(
        label=result.label if workload is None else f"{result.label} / {workload}",
        server_hours=server_hours,
        dram_byte_hours=dram_byte_hours,
        peak_servers=max(hourly, default=0),
        trough_servers=min(hourly, default=0),
        hourly_servers=hourly,
    )


def dram_hours_saved(
    singular: ElasticityReport, distributed: ElasticityReport
) -> float:
    """Factor of DRAM-hours the distributed deployment saves over a day."""
    if distributed.dram_byte_hours <= 0:
        raise ValueError("distributed deployment has no DRAM accounted")
    return singular.dram_byte_hours / distributed.dram_byte_hours

"""SLA accounting and fallback-drop modeling (paper Section II).

"In order to provide a satisfactory user experience, recommendation
results are expected within a timed window.  This strict latency
constraint defines the service-level agreement (SLA).  If SLA targets
cannot be satisfied, the inference request is dropped in favor of a
potentially lower quality recommendation result."

This module evaluates measured latency samples against an SLA policy:
what fraction of requests would have fallen back, per configuration --
the serving-quality lens on the latency overheads of Figures 6/7/16, and
the feasibility test of the closed-loop capacity planner
(:mod:`repro.planning.capacity`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SlaPolicy:
    """A latency SLA: requests slower than ``target_latency`` fall back."""

    target_latency: float

    def __post_init__(self):
        if self.target_latency <= 0:
            raise ValueError("target_latency must be positive")

    @classmethod
    def from_baseline_quantile(
        cls, baseline_latencies, quantile: float = 99.0, slack: float = 1.2
    ) -> "SlaPolicy":
        """Derive an SLA from a baseline configuration's tail, with slack.

        Production SLAs are set so the healthy configuration comfortably
        meets them; ``slack`` models that headroom.
        """
        samples = np.asarray(baseline_latencies, float)
        if samples.size == 0:
            raise ValueError(
                "baseline_latencies must be non-empty to derive an SLA"
            )
        if not 0 < quantile <= 100:
            raise ValueError(f"quantile must be in (0, 100], got {quantile!r}")
        if slack <= 0:
            raise ValueError(f"slack must be positive, got {slack!r}")
        target = float(np.percentile(samples, quantile))
        return cls(target_latency=target * slack)


@dataclass(frozen=True)
class SlaReport:
    """Fallback statistics of one configuration under one policy."""

    label: str
    drop_rate: float
    met_p99: bool
    headroom_p50: float
    """target / P50 -- how much room the median request has."""


def evaluate_sla(label: str, latencies, policy: SlaPolicy) -> SlaReport:
    """Fraction of requests exceeding the SLA window."""
    samples = np.asarray(latencies, dtype=float)
    if samples.size == 0:
        raise ValueError("no latency samples")
    drops = float(np.mean(samples > policy.target_latency))
    return SlaReport(
        label=label,
        drop_rate=drops,
        met_p99=float(np.percentile(samples, 99)) <= policy.target_latency,
        headroom_p50=policy.target_latency / float(np.percentile(samples, 50)),
    )


def sla_sweep(
    latencies_by_config: dict[str, "np.ndarray"], policy: SlaPolicy
) -> list[SlaReport]:
    """Evaluate every configuration under one policy, worst first."""
    reports = [
        evaluate_sla(label, latencies, policy)
        for label, latencies in latencies_by_config.items()
    ]
    reports.sort(key=lambda report: -report.drop_rate)
    return reports

"""Workloads: *what* arrives, *when*, and *for which model*.

A :class:`Workload` binds a model, its seeded
:class:`~repro.requests.generator.RequestGenerator`, an
:class:`~repro.workloads.arrivals.ArrivalProcess`, and (optionally) a
temporally-correlated sparse-ID stream for the caching analysis.  A
:class:`WorkloadMix` interleaves several workloads into one merged,
time-ordered request stream, which is what a co-located multi-model
cluster (``ClusterSimulation.colocated``) consumes: contention between
the models is then *simulated* on shared hosts, not post-processed.

Request timestamps in a sampled stream are the arrival times themselves,
so the generator's diurnal request-size modulation tracks the arrival
curve: a diurnal arrival process peaks exactly when requests are largest,
the coupling the HPCA 2020 production characterization describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Sequence

import numpy as np

from repro.models.config import ModelConfig
from repro.requests.access_trace import (
    AccessTrace,
    CorrelatedStream,
    collect_access_trace,
    collect_correlated_trace,
)
from repro.requests.generator import Request, RequestGenerator
from repro.workloads.arrivals import ArrivalProcess


@dataclass(frozen=True)
class Workload:
    """One model's request stream: generator seed + arrival process."""

    name: str
    model: ModelConfig
    arrivals: ArrivalProcess
    request_seed: int = 3
    id_stream: CorrelatedStream | None = None
    """When set, :meth:`access_trace` emits a temporally-correlated
    (popularity + recency) sparse-ID stream instead of i.i.d. Zipf draws;
    the trace feeds :mod:`repro.analysis.caching` directly."""

    def generator(self) -> RequestGenerator:
        return RequestGenerator(self.model, seed=self.request_seed)

    def sample(self, count: int) -> tuple[np.ndarray, list[Request]]:
        """Draw ``count`` requests with their arrival times.

        Raises for serial (closed-loop) arrivals: those have no
        precomputable times and cannot join a merged timed stream.
        """
        times = self.arrivals.arrival_times(count)
        if times is None:
            raise ValueError(
                f"workload {self.name!r}: serial arrivals have no arrival "
                "times; use an open-loop arrival process"
            )
        return times, self.generator().generate_batch(times)

    def access_trace(self, requests: list[Request]) -> AccessTrace:
        """Row-access trace of ``requests``: correlated when ``id_stream``
        is set, i.i.d. Zipf otherwise.

        Both paths are keyed by *position in the list*, never by request
        id -- mix sampling renumbers ids to merged positions, and a
        workload's trace must be identical whether it was sampled alone
        or co-located (renumbering is not a cache effect).
        """
        if self.id_stream is None:
            positional = [
                replace(request, request_id=position)
                for position, request in enumerate(requests)
            ]
            return collect_access_trace(
                self.model, positional, seed=self.request_seed
            )
        return collect_correlated_trace(self.model, requests, self.id_stream)


class MixedStream:
    """A merged, time-ordered request stream over several workloads.

    ``requests[i]`` arrives at ``times[i]`` and belongs to workload
    ``workload_ids[i]``; request ids equal merged positions, so any
    per-request record (completion, trace, column row) maps back to its
    workload by indexing ``workload_ids`` with the request id.
    """

    def __init__(
        self,
        times: np.ndarray,
        workload_ids: np.ndarray,
        requests: list[Request],
        counts: tuple[int, ...],
    ):
        self.times = times
        self.workload_ids = workload_ids
        self.requests = requests
        self.counts = counts

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[tuple[float, int, Request]]:
        times = self.times.tolist()
        ids = self.workload_ids.tolist()
        return iter(zip(times, ids, self.requests))


@dataclass(frozen=True)
class WorkloadMix:
    """Several workloads co-located on one simulated cluster."""

    workloads: tuple[Workload, ...]

    def __post_init__(self):
        workloads = tuple(self.workloads)
        if not workloads:
            raise ValueError("a WorkloadMix needs at least one workload")
        names = [workload.name for workload in workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"workload names must be unique, got {names}")
        object.__setattr__(self, "workloads", workloads)

    def labels(self) -> tuple[str, ...]:
        return tuple(workload.name for workload in self.workloads)

    def models(self) -> list[ModelConfig]:
        return [workload.model for workload in self.workloads]

    def sample(self, count: int | Sequence[int]) -> MixedStream:
        """Draw every workload's stream and merge by arrival time.

        ``count`` is either one per-workload request count or a sequence
        with one entry per workload.  The merge is **stable**: at equal
        timestamps, requests keep workload declaration order, then
        per-workload generation order -- so a mix replays identically
        however the per-workload streams happen to collide.
        """
        if isinstance(count, (int, np.integer)):
            counts = [int(count)] * len(self.workloads)
        else:
            counts = [int(c) for c in count]
            if len(counts) != len(self.workloads):
                raise ValueError(
                    f"got {len(counts)} counts for {len(self.workloads)} workloads"
                )
        all_times: list[np.ndarray] = []
        all_requests: list[list[Request]] = []
        for workload, per_workload in zip(self.workloads, counts):
            times, requests = workload.sample(per_workload)
            all_times.append(np.asarray(times, dtype=np.float64))
            all_requests.append(requests)
        times = np.concatenate(all_times) if all_times else np.empty(0)
        workload_ids = np.concatenate(
            [
                np.full(len(chunk), index, dtype=np.int64)
                for index, chunk in enumerate(all_times)
            ]
        ) if all_times else np.empty(0, dtype=np.int64)
        order = np.argsort(times, kind="stable")
        flat = [request for chunk in all_requests for request in chunk]
        merged = [flat[position] for position in order.tolist()]
        for request_id, request in enumerate(merged):
            request.request_id = request_id
        return MixedStream(
            times=times[order],
            workload_ids=workload_ids[order],
            requests=merged,
            counts=tuple(counts),
        )

    def access_traces(self, stream: MixedStream) -> dict[str, AccessTrace]:
        """Per-workload access traces of a sampled stream (merged order),
        ready for :mod:`repro.analysis.caching`."""
        traces: dict[str, AccessTrace] = {}
        ids = stream.workload_ids.tolist()
        for index, workload in enumerate(self.workloads):
            requests = [
                request
                for request, workload_id in zip(stream.requests, ids)
                if workload_id == index
            ]
            traces[workload.name] = workload.access_trace(requests)
        return traces

"""Workload subsystem: what arrives, when, and for which model.

Composable arrival processes (:mod:`repro.workloads.arrivals`), the
:class:`Workload` / :class:`WorkloadMix` binding of models to request
generators and arrival streams, and the correlated sparse-ID stream that
closes the loop into the caching analysis.  ``ReplaySchedule`` in
:mod:`repro.requests.replayer` is a thin frozen facade over this package.
"""

# arrivals must import first: repro.requests.replayer (reached through
# workload -> generator -> repro.requests.__init__) imports it while this
# package is still initializing.
from repro.workloads.arrivals import (
    ArrivalProcess,
    ConstantRateArrivals,
    MMPPArrivals,
    PiecewiseRateArrivals,
    PoissonArrivals,
    SerialArrivals,
    diurnal_qps_curve,
)
from repro.workloads.workload import MixedStream, Workload, WorkloadMix
from repro.requests.access_trace import CorrelatedStream

__all__ = [
    "ArrivalProcess",
    "ConstantRateArrivals",
    "CorrelatedStream",
    "MMPPArrivals",
    "MixedStream",
    "PiecewiseRateArrivals",
    "PoissonArrivals",
    "SerialArrivals",
    "Workload",
    "WorkloadMix",
    "diurnal_qps_curve",
]

"""Composable arrival processes: *when* requests reach the cluster.

The paper evaluates two request regimes -- serial blocking (Section VI)
and a 25-QPS Poisson open loop (Section VII-A) -- but its queueing
conclusions change qualitatively under time-varying and bursty load
(DeepRecSys, Gupta et al., ISCA 2020; the production diurnal patterns of
Gupta et al., HPCA 2020).  This module owns the arrival-time axis of a
workload as a family of small frozen value objects:

* :class:`SerialArrivals` -- closed-loop blocking replay (no precomputable
  times; the cluster drives each send after the previous response);
* :class:`PoissonArrivals` -- the paper's open-loop regime, byte-identical
  to the historical ``ReplaySchedule.open_loop`` stream;
* :class:`ConstantRateArrivals` -- deterministic fixed-gap injection (the
  zero-variance baseline that isolates queueing noise from arrival noise);
* :class:`PiecewiseRateArrivals` -- a non-homogeneous Poisson process over
  a piecewise-constant rate curve, inverted exactly via time rescaling;
  :meth:`PiecewiseRateArrivals.diurnal` builds the curve from
  :func:`diurnal_qps_curve`, giving diurnal QPS replay;
* :class:`MMPPArrivals` -- a Markov-modulated Poisson process (states with
  distinct rates, exponential dwell times), the classic bursty-traffic
  model.

Determinism contract: every process normalizes its numeric parameters to
Python floats in ``__post_init__``, and each draws from a named
:func:`~repro.core.rng.substream` keyed on those normalized values -- so
``PoissonArrivals(25)``, ``PoissonArrivals(25.0)`` and
``PoissonArrivals(np.float64(25.0))`` replay one identical stream, and
equality/hashing treat them as the same process.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

import numpy as np

from repro.core.rng import substream

_HOUR_SECONDS = 3600.0


def diurnal_qps_curve(
    peak_qps: float,
    trough_fraction: float = 0.35,
    hours: int = 24,
    samples: int | None = None,
    period_hours: float | None = None,
) -> np.ndarray:
    """A smooth stretch of traffic: sinusoid between trough and peak QPS.

    The generalized form of the curve ``serving/elasticity.py`` introduced
    (and still re-exports): ``samples`` decouples the resolution from the
    covered ``hours`` (defaults keep one sample per hour, bit-identical to
    the historical output), and ``period_hours`` sets the cycle length
    (defaults to ``hours``, i.e. exactly one full day over the window).
    """
    if peak_qps <= 0 or not 0 < trough_fraction <= 1:
        raise ValueError("peak_qps must be positive, trough_fraction in (0, 1]")
    if samples is None:
        samples = hours
    if samples < 1 or hours <= 0:
        raise ValueError("hours and samples must be positive")
    period = float(hours if period_hours is None else period_hours)
    if period <= 0:
        raise ValueError("period_hours must be positive")
    # Parenthesized so the default spelling reproduces the historical
    # curve bit-for-bit: 2pi * (positions / period), not (2pi*positions)/period.
    phase = 2.0 * np.pi * ((np.arange(samples) * (hours / samples)) / period)
    mean = (1 + trough_fraction) / 2
    amplitude = (1 - trough_fraction) / 2
    return peak_qps * (mean - amplitude * np.cos(phase))


class ArrivalProcess:
    """When requests arrive.  Subclasses are frozen value objects.

    :meth:`arrival_times` returns the first ``count`` absolute arrival
    times (seconds, nondecreasing) as a float array -- an **empty array
    for** ``count == 0`` -- or ``None`` for closed-loop (serial) arrivals,
    which have no precomputable times.  The stream is a pure function of
    the process's fields: replaying the same process always yields the
    same times.
    """

    def arrival_times(self, count: int) -> np.ndarray | None:
        raise NotImplementedError

    def peak_rate(self) -> float | None:
        """Highest sustained QPS of the process (capacity planners size
        deployments against it), or ``None`` for closed-loop arrivals,
        which have no intrinsic rate."""
        return None

    def mean_rate(self) -> float | None:
        """Long-run average QPS, or ``None`` for closed-loop arrivals."""
        return None

    @staticmethod
    def _checked_count(count: int) -> int:
        """Validate a request count: any integer spelling, ``>= 0``."""
        try:
            checked = operator.index(count)
        except TypeError:
            raise TypeError(
                f"count must be an integer, got {type(count).__name__}"
            ) from None
        if checked < 0:
            raise ValueError(f"count must be >= 0, got {count!r}")
        return checked


@dataclass(frozen=True)
class SerialArrivals(ArrivalProcess):
    """Closed-loop blocking replay: each send waits for the previous
    response, so there are no precomputable arrival times."""

    def arrival_times(self, count: int) -> None:
        self._checked_count(count)
        return None


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson arrivals at a fixed QPS (paper Section VII-A).

    Byte-identical to the stream ``ReplaySchedule.open_loop(qps, seed)``
    has always produced: the substream is keyed on the float-normalized
    rate, and the times are the cumulative sum of exponential gaps.
    """

    qps: float
    seed: int = 0

    def __post_init__(self):
        if self.qps <= 0:
            raise ValueError("Poisson arrivals require qps > 0")
        object.__setattr__(self, "qps", float(self.qps))

    def arrival_times(self, count: int) -> np.ndarray:
        count = self._checked_count(count)
        rng = substream(self.seed, "arrivals", self.qps)
        gaps = rng.exponential(1.0 / self.qps, size=count)
        return np.cumsum(gaps)

    def peak_rate(self) -> float:
        return self.qps

    def mean_rate(self) -> float:
        return self.qps


@dataclass(frozen=True)
class ConstantRateArrivals(ArrivalProcess):
    """Deterministic fixed-gap arrivals: request ``i`` lands at ``(i+1)/qps``.

    The zero-variance open-loop baseline; no seed, no randomness.
    """

    qps: float

    def __post_init__(self):
        if self.qps <= 0:
            raise ValueError("constant-rate arrivals require qps > 0")
        object.__setattr__(self, "qps", float(self.qps))

    def arrival_times(self, count: int) -> np.ndarray:
        count = self._checked_count(count)
        return np.arange(1, count + 1, dtype=np.float64) / self.qps

    def peak_rate(self) -> float:
        return self.qps

    def mean_rate(self) -> float:
        return self.qps


@dataclass(frozen=True)
class PiecewiseRateArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals over a piecewise-constant rate curve.

    ``rates[j]`` is the QPS during ``[j, j+1) * interval_seconds``; the
    curve repeats periodically, so any request count can be drawn from a
    finite curve (a two-day replay of a 24-hour curve just wraps).

    Sampling uses exact time rescaling: unit-rate exponential gaps are
    accumulated into targets on the integrated-rate axis and mapped back
    through the piecewise-linear inverse of the cumulative rate
    ``Lambda(t)``, which is the textbook inversion for a non-homogeneous
    Poisson process -- no thinning, no rejected draws, fully vectorized.
    """

    rates: tuple[float, ...]
    interval_seconds: float = _HOUR_SECONDS
    seed: int = 0

    def __post_init__(self):
        rates = tuple(float(rate) for rate in np.asarray(self.rates).ravel())
        if not rates or min(rates) <= 0:
            raise ValueError("piecewise arrivals require a non-empty, positive rate curve")
        object.__setattr__(self, "rates", rates)
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        object.__setattr__(self, "interval_seconds", float(self.interval_seconds))

    @classmethod
    def diurnal(
        cls,
        peak_qps: float,
        trough_fraction: float = 0.35,
        hours: int = 24,
        samples_per_hour: int = 4,
        seed: int = 0,
    ) -> "PiecewiseRateArrivals":
        """Diurnal QPS replay: the sinusoidal day of :func:`diurnal_qps_curve`
        sampled at ``samples_per_hour`` steps, driving Poisson arrivals."""
        samples_per_hour = operator.index(samples_per_hour)
        if samples_per_hour < 1:
            raise ValueError("samples_per_hour must be >= 1")
        hours = operator.index(hours)
        curve = diurnal_qps_curve(
            float(peak_qps), float(trough_fraction),
            hours=hours, samples=hours * samples_per_hour,
        )
        return cls(
            rates=tuple(float(rate) for rate in curve),
            interval_seconds=_HOUR_SECONDS / samples_per_hour,
            seed=seed,
        )

    @property
    def period_seconds(self) -> float:
        return len(self.rates) * self.interval_seconds

    def peak_rate(self) -> float:
        return max(self.rates)

    def mean_rate(self) -> float:
        # Segments are equal-length, so the time-weighted mean is the
        # arithmetic mean of the curve.
        return sum(self.rates) / len(self.rates)

    def arrival_times(self, count: int) -> np.ndarray:
        count = self._checked_count(count)
        rng = substream(self.seed, "arrivals-piecewise", self.rates, self.interval_seconds)
        targets = np.cumsum(rng.exponential(1.0, size=count))
        # Cumulative expected arrivals at segment boundaries (one period).
        rates = np.asarray(self.rates)
        boundaries = np.concatenate(
            [[0.0], np.cumsum(rates) * self.interval_seconds]
        )
        per_period = boundaries[-1]
        periods = np.floor(targets / per_period)
        remainder = targets - periods * per_period
        # Float roundoff can push a remainder to exactly per_period; fold
        # it into the next period rather than indexing past the curve.
        overflow = remainder >= per_period
        periods = periods + overflow
        remainder = np.where(overflow, remainder - per_period, remainder)
        segment = np.clip(
            np.searchsorted(boundaries, remainder, side="right") - 1,
            0, len(self.rates) - 1,
        )
        within = np.maximum(0.0, remainder - boundaries[segment]) / rates[segment]
        return (
            periods * self.period_seconds
            + segment * self.interval_seconds
            + within
        )


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Markov-modulated Poisson arrivals: bursty open-loop traffic.

    The process cycles through ``rates`` (e.g. a calm state and a burst
    state); each visit dwells for an exponential time with mean
    ``mean_dwell_seconds``, and arrivals within a dwell follow a Poisson
    process at that state's rate (realized as a Poisson count with
    sorted-uniform placement, the standard conditional construction).
    """

    rates: tuple[float, ...] = (10.0, 100.0)
    mean_dwell_seconds: float = 60.0
    seed: int = 0

    def __post_init__(self):
        rates = tuple(float(rate) for rate in np.asarray(self.rates).ravel())
        if len(rates) < 2 or min(rates) <= 0:
            raise ValueError("MMPP arrivals require >= 2 positive state rates")
        object.__setattr__(self, "rates", rates)
        if self.mean_dwell_seconds <= 0:
            raise ValueError("mean_dwell_seconds must be positive")
        object.__setattr__(self, "mean_dwell_seconds", float(self.mean_dwell_seconds))

    def peak_rate(self) -> float:
        return max(self.rates)

    def mean_rate(self) -> float:
        # States are visited cyclically with identical mean dwell times,
        # so each contributes equal expected time.
        return sum(self.rates) / len(self.rates)

    def arrival_times(self, count: int) -> np.ndarray:
        count = self._checked_count(count)
        if count == 0:
            return np.empty(0, dtype=np.float64)
        rng = substream(self.seed, "arrivals-mmpp", self.rates, self.mean_dwell_seconds)
        chunks: list[np.ndarray] = []
        collected = 0
        start = 0.0
        state = 0
        while collected < count:
            dwell = float(rng.exponential(self.mean_dwell_seconds))
            arrivals = int(rng.poisson(self.rates[state] * dwell))
            if arrivals:
                chunks.append(start + np.sort(rng.uniform(0.0, dwell, size=arrivals)))
                collected += arrivals
            start += dwell
            state = (state + 1) % len(self.rates)
        return np.concatenate(chunks)[:count]

"""Request replay schedules.

The paper evaluates two request regimes:

* **serial blocking** (Section VI): each request is sent only after the
  previous response returns, isolating per-request overheads;
* **open loop at a fixed QPS** (Section VII-A): requests arrive following
  a Poisson process at 25 QPS, representative of production load, which
  exposes queueing effects that improve distributed P99 over singular.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.rng import substream


class ReplayMode(enum.Enum):
    SERIAL = "serial"
    OPEN_LOOP = "open-loop"


@dataclass(frozen=True)
class ReplaySchedule:
    """How requests are injected into the serving cluster."""

    mode: ReplayMode = ReplayMode.SERIAL
    qps: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.mode is ReplayMode.OPEN_LOOP and self.qps <= 0:
            raise ValueError("open-loop replay requires qps > 0")
        # Normalize so open_loop(25), open_loop(25.0), and numpy scalars
        # are the same schedule: the arrival substream is keyed on qps,
        # and equal rates must replay identical arrival processes.
        object.__setattr__(self, "qps", float(self.qps))

    @classmethod
    def serial(cls) -> "ReplaySchedule":
        return cls(mode=ReplayMode.SERIAL)

    @classmethod
    def open_loop(cls, qps: float, seed: int = 0) -> "ReplaySchedule":
        return cls(mode=ReplayMode.OPEN_LOOP, qps=qps, seed=seed)

    def arrival_times(self, count: int) -> np.ndarray | None:
        """Poisson arrival times for open-loop replay; None for serial.

        Serial replay has no precomputable arrivals -- each send waits for
        the previous response -- so the cluster drives it directly.
        """
        if self.mode is ReplayMode.SERIAL:
            return None
        # qps is normalized to a Python float in __post_init__, so the
        # substream key is canonical (shortest-roundtrip float repr) no
        # matter how the rate was spelled at the call site.
        rng = substream(self.seed, "arrivals", self.qps)
        gaps = rng.exponential(1.0 / self.qps, size=count)
        return np.cumsum(gaps)

"""Request replay schedules: a thin facade over the workload subsystem.

The paper evaluates two request regimes:

* **serial blocking** (Section VI): each request is sent only after the
  previous response returns, isolating per-request overheads;
* **open loop at a fixed QPS** (Section VII-A): requests arrive following
  a Poisson process at 25 QPS, representative of production load, which
  exposes queueing effects that improve distributed P99 over singular.

:class:`ReplaySchedule` keeps those two spellings (and their historical,
byte-identical arrival streams) as a frozen facade over
:mod:`repro.workloads.arrivals`, where the arrival-time axis now lives as
composable processes (Poisson, constant-rate, piecewise/diurnal, MMPP).
Any open-loop :class:`~repro.workloads.arrivals.ArrivalProcess` can be
wrapped into a schedule with :meth:`ReplaySchedule.from_arrivals`, which
is how diurnal or bursty arrivals thread through the existing
``run_configuration`` / ``run_suite`` machinery unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.workloads.arrivals import ArrivalProcess, PoissonArrivals, SerialArrivals


class ReplayMode(enum.Enum):
    SERIAL = "serial"
    OPEN_LOOP = "open-loop"


@dataclass(frozen=True)
class ReplaySchedule:
    """How requests are injected into the serving cluster."""

    mode: ReplayMode = ReplayMode.SERIAL
    qps: float = 0.0
    seed: int = 0
    process: ArrivalProcess | None = None
    """Custom open-loop arrival process; ``None`` keeps the classic
    spellings (serial, fixed-QPS Poisson)."""

    def __post_init__(self):
        if self.process is not None and self.mode is ReplayMode.SERIAL:
            raise ValueError("a custom arrival process requires open-loop mode")
        if self.process is None and self.mode is ReplayMode.OPEN_LOOP and self.qps <= 0:
            raise ValueError("open-loop replay requires qps > 0")
        # Normalize so open_loop(25), open_loop(25.0), and numpy scalars
        # are the same schedule: the arrival substream is keyed on qps,
        # and equal rates must replay identical arrival processes.
        object.__setattr__(self, "qps", float(self.qps))

    @classmethod
    def serial(cls) -> "ReplaySchedule":
        return cls(mode=ReplayMode.SERIAL)

    @classmethod
    def open_loop(cls, qps: float, seed: int = 0) -> "ReplaySchedule":
        return cls(mode=ReplayMode.OPEN_LOOP, qps=qps, seed=seed)

    @classmethod
    def from_arrivals(cls, process: ArrivalProcess) -> "ReplaySchedule":
        """Wrap any arrival process into a schedule.

        ``SerialArrivals`` maps to the serial schedule; everything else
        becomes an open-loop schedule driven by the process.  ``qps`` and
        ``seed`` mirror the process's fields when it has them, so the
        facade stays inspectable.
        """
        if isinstance(process, SerialArrivals):
            return cls.serial()
        return cls(
            mode=ReplayMode.OPEN_LOOP,
            qps=float(getattr(process, "qps", 0.0)),
            seed=int(getattr(process, "seed", 0)),
            process=process,
        )

    def arrival_process(self) -> ArrivalProcess:
        """The process this schedule is a facade over."""
        if self.process is not None:
            return self.process
        if self.mode is ReplayMode.SERIAL:
            return SerialArrivals()
        return PoissonArrivals(self.qps, self.seed)

    def arrival_times(self, count: int) -> np.ndarray | None:
        """First ``count`` arrival times; None for serial replay.

        ``count`` must be an integer ``>= 0`` (negative counts raise a
        clear ``ValueError`` instead of surfacing garbage-shaped numpy
        output); ``count == 0`` returns an **empty array** for open-loop
        schedules.  Serial replay has no precomputable arrivals -- each
        send waits for the previous response -- so the cluster drives it
        directly and this returns ``None`` for any valid count.

        Open-loop streams are byte-identical to the historical
        implementation: the facade delegates to
        :class:`~repro.workloads.arrivals.PoissonArrivals`, whose
        substream is keyed on the float-normalized qps.  Count validation
        happens in the process (every ``ArrivalProcess.arrival_times``
        checks, serial included).
        """
        return self.arrival_process().arrival_times(count)

"""Request substrate: synthetic generation, payload sizing, replay schedules."""

from repro.requests.access_trace import (
    AccessTrace,
    CorrelatedStream,
    collect_access_trace,
    collect_correlated_trace,
)
from repro.requests.generator import (
    Request,
    RequestGenerator,
    SparseFeatureDraw,
    materialize_numeric,
    request_payload_bytes,
)
from repro.requests.replayer import ReplayMode, ReplaySchedule

__all__ = [
    "AccessTrace",
    "CorrelatedStream",
    "ReplayMode",
    "collect_access_trace",
    "collect_correlated_trace",
    "ReplaySchedule",
    "Request",
    "RequestGenerator",
    "SparseFeatureDraw",
    "materialize_numeric",
    "request_payload_bytes",
]

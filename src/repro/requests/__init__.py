"""Request substrate: synthetic generation, payload sizing, replay schedules."""

from repro.requests.access_trace import AccessTrace, collect_access_trace
from repro.requests.generator import (
    Request,
    RequestGenerator,
    SparseFeatureDraw,
    materialize_numeric,
    request_payload_bytes,
)
from repro.requests.replayer import ReplayMode, ReplaySchedule

__all__ = [
    "AccessTrace",
    "ReplayMode",
    "collect_access_trace",
    "ReplaySchedule",
    "Request",
    "RequestGenerator",
    "SparseFeatureDraw",
    "materialize_numeric",
    "request_payload_bytes",
]

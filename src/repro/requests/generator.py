"""Synthetic ranking-request generation.

Substitutes the paper's de-identified production request replay
(Section V-B): requests were sampled evenly across a five-day window to
capture diurnal behavior, then replayed against the serving tier.  Here a
seeded generator draws, per request:

* a timestamp within the sampling window, with a diurnal size modulation;
* a long-tailed candidate-item count (the batching unit);
* per-table sparse-feature draws -- presence and id counts -- following
  each table's :class:`~repro.models.TableConfig` sparsity parameters.

Requests carry *counts* (what the serving simulator and the pooling-factor
estimator need); :func:`materialize_numeric` expands a request into actual
raw ids for the numeric correctness path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dlrm import NumericRequest, SparseInput
from repro.core.rng import substream
from repro.models.config import FeatureScope, ModelConfig

_DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class SparseFeatureDraw:
    """Lookup counts for one table in one request.

    ``per_item_counts`` is None for USER-scoped features (the count applies
    to the whole request and repeats for every batch); for ITEM-scoped
    features it holds the id count of each candidate item.
    """

    table_name: str
    total_ids: int
    per_item_counts: np.ndarray | None = None

    def ids_in_slice(self, start: int, stop: int) -> int:
        """Ids this feature contributes to a batch covering items [start, stop)."""
        if self.per_item_counts is None:
            return self.total_ids
        return int(self.per_item_counts[start:stop].sum())


@dataclass
class Request:
    """One ranking request at the granularity the simulator consumes."""

    request_id: int
    timestamp: float
    num_items: int
    draws: dict[str, SparseFeatureDraw] = field(default_factory=dict)

    def total_ids_for_net(self, model: ModelConfig, net_name: str) -> int:
        return sum(
            draw.total_ids
            for draw in self.draws.values()
            if model.table(draw.table_name).net == net_name
        )

    @property
    def total_ids(self) -> int:
        return sum(draw.total_ids for draw in self.draws.values())


class RequestGenerator:
    """Seeded request sampler for one model."""

    def __init__(self, model: ModelConfig, seed: int = 0, diurnal_amplitude: float = 0.15):
        self.model = model
        self.seed = seed
        self.diurnal_amplitude = diurnal_amplitude
        self._rng = substream(seed, "requests", model.name)

    def _diurnal_factor(self, timestamp: float) -> float:
        phase = 2.0 * np.pi * (timestamp % _DAY_SECONDS) / _DAY_SECONDS
        return 1.0 + self.diurnal_amplitude * float(np.sin(phase))

    def generate(self, request_id: int, timestamp: float = 0.0) -> Request:
        rng = self._rng
        profile = self.model.profile
        base_items = profile.sample_items(rng)
        num_items = max(
            profile.min_items, int(round(base_items * self._diurnal_factor(timestamp)))
        )

        draws: dict[str, SparseFeatureDraw] = {}
        for table in self.model.tables:
            if table.scope is FeatureScope.USER:
                if rng.random() >= table.activation_prob:
                    continue
                if table.deterministic_ids:
                    count = max(1, int(round(table.mean_ids)))
                else:
                    count = int(rng.poisson(table.mean_ids))
                if count == 0:
                    continue
                draws[table.name] = SparseFeatureDraw(table.name, count)
            else:
                rate = table.activation_prob * table.mean_ids
                per_item = rng.poisson(rate, size=num_items).astype(np.int32)
                total = int(per_item.sum())
                if total == 0:
                    continue
                draws[table.name] = SparseFeatureDraw(table.name, total, per_item)
        return Request(request_id, timestamp, num_items, draws)

    def generate_many(self, count: int, window_days: float = 5.0) -> list[Request]:
        """Sample ``count`` requests evenly across the sampling window."""
        timestamps = np.linspace(0.0, window_days * _DAY_SECONDS, count, endpoint=False)
        return [self.generate(i, float(t)) for i, t in enumerate(timestamps)]


def request_payload_bytes(model: ModelConfig, request: Request) -> float:
    """Serialized size of the inbound ranking request.

    Dense features per item plus 8-byte sparse ids plus per-feature framing.
    """
    ids_bytes = 8.0 * request.total_ids
    framing = 24.0 * len(request.draws)
    dense = model.profile.dense_feature_bytes * request.num_items
    return 256.0 + dense + ids_bytes + framing


def materialize_numeric(
    model: ModelConfig, request: Request, seed: int = 0, id_space: int = 2**48
) -> NumericRequest:
    """Expand a count-level request into raw ids and dense features."""
    rng = substream(seed, "numeric", model.name, request.request_id)
    user_dense = rng.normal(0, 1, size=16).astype(np.float32)
    item_dense = rng.normal(0, 1, size=(request.num_items, 16)).astype(np.float32)
    sparse: dict[str, SparseInput] = {}
    for table in model.tables:
        draw = request.draws.get(table.name)
        if draw is None:
            continue
        values = rng.integers(0, id_space, size=draw.total_ids, dtype=np.int64)
        if table.scope is FeatureScope.USER:
            lengths = np.array([draw.total_ids], dtype=np.int64)
        else:
            lengths = draw.per_item_counts.astype(np.int64)
        sparse[table.name] = SparseInput(values, lengths)
    return NumericRequest(
        request_id=request.request_id,
        num_items=request.num_items,
        user_dense=user_dense,
        item_dense=item_dense,
        sparse=sparse,
    )

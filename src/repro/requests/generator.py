"""Synthetic ranking-request generation.

Substitutes the paper's de-identified production request replay
(Section V-B): requests were sampled evenly across a five-day window to
capture diurnal behavior, then replayed against the serving tier.  Here a
seeded generator draws, per request:

* a timestamp within the sampling window, with a diurnal size modulation;
* a long-tailed candidate-item count (the batching unit);
* per-table sparse-feature draws -- presence and id counts -- following
  each table's :class:`~repro.models.TableConfig` sparsity parameters.

Requests carry *counts* (what the serving simulator and the pooling-factor
estimator need); :func:`materialize_numeric` expands a request into actual
raw ids for the numeric correctness path.

Draw scheme
-----------

Every stochastic component owns an independent named substream:

* ``(seed, "requests", model, "items")`` -- one normal draw per request
  for the lognormal item count;
* ``(seed, "requests", model, table, "activation")`` -- one uniform per
  request for USER-scoped presence;
* ``(seed, "requests", model, table, "counts")`` -- one Poisson per
  request for USER-scoped id counts;
* ``(seed, "requests", model, table, "per-item")`` -- one Poisson per
  candidate item for ITEM-scoped id counts.

Because each stream is consumed in request order with a fixed number of
draws per request, a bulk array draw of ``N`` requests consumes each
stream identically to ``N`` sequential scalar draws.  That is what makes
the vectorized :meth:`RequestGenerator.generate_many` byte-identical to
the scalar :meth:`RequestGenerator.generate` reference path (regression
tested), while doing one RNG call per *table* instead of one per
(request, table).

The same bulk-draw-equals-scalar-draws property is what the
``vectorized`` replay kernel leans on one layer up: a sweep generates
its request sample once (``suite_requests``), and the columnar plan
builder (:mod:`repro.serving.columnar`) transposes those cached
requests into per-chunk numpy columns -- generation draws and replay
draws never interleave, so kernels can vectorize each independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dlrm import NumericRequest, SparseInput
from repro.core.rng import substream
from repro.models.config import FeatureScope, ModelConfig

_DAY_SECONDS = 86_400.0


@dataclass(frozen=True, slots=True)
class SparseFeatureDraw:
    """Lookup counts for one table in one request.

    ``per_item_counts`` is None for USER-scoped features (the count applies
    to the whole request and repeats for every batch); for ITEM-scoped
    features it holds the id count of each candidate item.
    """

    table_name: str
    total_ids: int
    per_item_counts: np.ndarray | None = None

    def ids_in_slice(self, start: int, stop: int) -> int:
        """Ids this feature contributes to a batch covering items [start, stop)."""
        if self.per_item_counts is None:
            return self.total_ids
        return int(self.per_item_counts[start:stop].sum())


@dataclass(slots=True)
class Request:
    """One ranking request at the granularity the simulator consumes."""

    request_id: int
    timestamp: float
    num_items: int
    draws: dict[str, SparseFeatureDraw] = field(default_factory=dict)
    slice_count_cache: dict = field(
        default_factory=dict, repr=False, compare=False
    )
    """Memoized per-batch id counts, keyed ``(batch_size, max_batches) ->
    {table: [count per batch]}``.  A sweep replays the same request sample
    against every configuration with the same batching policy, so the
    counts are computed once and shared across all plans (pure integer
    data; identical whichever configuration fills it first)."""

    def total_ids_for_net(self, model: ModelConfig, net_name: str) -> int:
        return sum(
            draw.total_ids
            for draw in self.draws.values()
            if model.table(draw.table_name).net == net_name
        )

    @property
    def total_ids(self) -> int:
        return sum(draw.total_ids for draw in self.draws.values())


class RequestGenerator:
    """Seeded request sampler for one model.

    The generator is stateful: each component substream advances as
    requests are drawn, so mixing :meth:`generate` and
    :meth:`generate_many` on one instance continues the same sample
    sequence either way.
    """

    def __init__(self, model: ModelConfig, seed: int = 0, diurnal_amplitude: float = 0.15):
        self.model = model
        self.seed = seed
        self.diurnal_amplitude = diurnal_amplitude
        self._items_rng = substream(seed, "requests", model.name, "items")
        self._table_rngs: dict[tuple[str, str], np.random.Generator] = {}

    def _rng(self, table_name: str, component: str) -> np.random.Generator:
        key = (table_name, component)
        rng = self._table_rngs.get(key)
        if rng is None:
            rng = substream(self.seed, "requests", self.model.name, table_name, component)
            self._table_rngs[key] = rng
        return rng

    def _diurnal_factor(self, timestamp: float) -> float:
        phase = 2.0 * np.pi * (timestamp % _DAY_SECONDS) / _DAY_SECONDS
        return 1.0 + self.diurnal_amplitude * float(np.sin(phase))

    # -- scalar reference path --------------------------------------------
    def generate(self, request_id: int, timestamp: float = 0.0) -> Request:
        """Draw one request (scalar reference path).

        Consumes exactly the same per-component draws as the vectorized
        path, so ``[g.generate(i, t) for i, t in ...]`` equals
        ``g.generate_many(...)`` for the same fresh seed.
        """
        profile = self.model.profile
        base_items = profile.sample_items(self._items_rng)
        num_items = max(
            profile.min_items, int(round(base_items * self._diurnal_factor(timestamp)))
        )

        draws: dict[str, SparseFeatureDraw] = {}
        for table in self.model.tables:
            if table.scope is FeatureScope.USER:
                # Activation and count are drawn unconditionally to keep
                # the streams aligned with the bulk path.
                activated = self._rng(table.name, "activation").random() < table.activation_prob
                if table.deterministic_ids:
                    count = max(1, int(round(table.mean_ids)))
                else:
                    count = int(self._rng(table.name, "counts").poisson(table.mean_ids))
                if not activated or count == 0:
                    continue
                draws[table.name] = SparseFeatureDraw(table.name, count)
            else:
                rate = table.activation_prob * table.mean_ids
                per_item = self._rng(table.name, "per-item").poisson(
                    rate, size=num_items
                )
                total = int(per_item.sum())
                if total == 0:
                    continue
                draws[table.name] = SparseFeatureDraw(table.name, total, per_item)
        return Request(request_id, timestamp, num_items, draws)

    # -- vectorized bulk path ---------------------------------------------
    def _bulk_items(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorized item counts for one timestamp per request."""
        profile = self.model.profile
        base = profile.sample_items_bulk(self._items_rng, len(timestamps))
        phase = 2.0 * np.pi * (timestamps % _DAY_SECONDS) / _DAY_SECONDS
        factor = 1.0 + self.diurnal_amplitude * np.sin(phase)
        return np.maximum(profile.min_items, np.round(base * factor)).astype(np.int64)

    def generate_batch(self, timestamps: np.ndarray) -> list[Request]:
        """Draw one request per timestamp with bulk per-table RNG calls.

        The per-request assembly below deliberately iterates over plain
        Python lists (``.tolist()``): models carry hundreds of tables, so
        element-wise numpy indexing would dominate the bulk-draw win.
        """
        timestamps = np.asarray(timestamps, dtype=np.float64)
        count = len(timestamps)
        if count == 0:
            return []
        num_items = self._bulk_items(timestamps)
        ts_list = timestamps.tolist()
        requests = [
            Request(i, ts_list[i], items, {})
            for i, items in enumerate(num_items.tolist())
        ]

        total_items = int(num_items.sum())
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(num_items, out=offsets[1:])
        offset_list = offsets.tolist()

        for table in self.model.tables:
            name = table.name
            if table.scope is FeatureScope.USER:
                activated = (
                    self._rng(name, "activation").random(size=count)
                    < table.activation_prob
                )
                if table.deterministic_ids:
                    fixed = max(1, int(round(table.mean_ids)))
                    for i in np.nonzero(activated)[0].tolist():
                        requests[i].draws[name] = SparseFeatureDraw(name, fixed)
                else:
                    counts = self._rng(name, "counts").poisson(
                        table.mean_ids, size=count
                    )
                    present = activated & (counts > 0)
                    chosen = counts[present].tolist()
                    for i, total in zip(np.nonzero(present)[0].tolist(), chosen):
                        requests[i].draws[name] = SparseFeatureDraw(name, total)
            else:
                rate = table.activation_prob * table.mean_ids
                flat = self._rng(name, "per-item").poisson(rate, size=total_items)
                totals = np.add.reduceat(flat, offsets[:-1])
                present = totals > 0
                for i, total in zip(
                    np.nonzero(present)[0].tolist(), totals[present].tolist()
                ):
                    # Copy, don't view: a view would pin each table's whole
                    # scratch buffer, ballooning memory and defeating the
                    # allocator's buffer reuse across tables.
                    requests[i].draws[name] = SparseFeatureDraw(
                        name, total, flat[offset_list[i] : offset_list[i + 1]].copy()
                    )
        return requests

    def generate_many(self, count: int, window_days: float = 5.0) -> list[Request]:
        """Sample ``count`` requests evenly across the sampling window."""
        timestamps = np.linspace(0.0, window_days * _DAY_SECONDS, count, endpoint=False)
        return self.generate_batch(timestamps)

    def access_trace(self, requests: list[Request], id_stream=None):
        """Row-access trace for ``requests``: i.i.d. Zipf by default, or a
        temporally-correlated (popularity + recency) stream when
        ``id_stream`` is a
        :class:`~repro.requests.access_trace.CorrelatedStream`.  The
        returned :class:`~repro.requests.access_trace.AccessTrace` feeds
        :mod:`repro.analysis.caching` directly.
        """
        # Imported lazily: access_trace imports Request from this module.
        from repro.requests.access_trace import (
            collect_access_trace,
            collect_correlated_trace,
        )

        if id_stream is None:
            return collect_access_trace(self.model, requests, seed=self.seed)
        return collect_correlated_trace(self.model, requests, id_stream)

    def table_totals(self, count: int, window_days: float = 5.0) -> dict[str, float]:
        """Aggregate id counts per table over ``count`` requests.

        Equivalent to summing ``draw.total_ids`` over
        :meth:`generate_many`'s output, without materializing any
        :class:`Request` -- the fast path for pooling-factor estimation.
        """
        timestamps = np.linspace(0.0, window_days * _DAY_SECONDS, count, endpoint=False)
        num_items = self._bulk_items(timestamps)
        totals: dict[str, float] = {}
        for table in self.model.tables:
            name = table.name
            if table.scope is FeatureScope.USER:
                activated = (
                    self._rng(name, "activation").random(size=count)
                    < table.activation_prob
                )
                if table.deterministic_ids:
                    fixed = max(1, int(round(table.mean_ids)))
                    totals[name] = float(fixed * int(activated.sum()))
                else:
                    counts = self._rng(name, "counts").poisson(table.mean_ids, size=count)
                    totals[name] = float(counts[activated].sum())
            else:
                rate = table.activation_prob * table.mean_ids
                flat = self._rng(name, "per-item").poisson(rate, size=int(num_items.sum()))
                totals[name] = float(flat.sum())
        return totals


def request_payload_bytes(model: ModelConfig, request: Request) -> float:
    """Serialized size of the inbound ranking request.

    Dense features per item plus 8-byte sparse ids plus per-feature framing.
    """
    ids_bytes = 8.0 * request.total_ids
    framing = 24.0 * len(request.draws)
    dense = model.profile.dense_feature_bytes * request.num_items
    return 256.0 + dense + ids_bytes + framing


def materialize_numeric(
    model: ModelConfig, request: Request, seed: int = 0, id_space: int = 2**48
) -> NumericRequest:
    """Expand a count-level request into raw ids and dense features."""
    rng = substream(seed, "numeric", model.name, request.request_id)
    user_dense = rng.normal(0, 1, size=16).astype(np.float32)
    item_dense = rng.normal(0, 1, size=(request.num_items, 16)).astype(np.float32)
    sparse: dict[str, SparseInput] = {}
    for table in model.tables:
        draw = request.draws.get(table.name)
        if draw is None:
            continue
        values = rng.integers(0, id_space, size=draw.total_ids, dtype=np.int64)
        if table.scope is FeatureScope.USER:
            lengths = np.array([draw.total_ids], dtype=np.int64)
        else:
            lengths = draw.per_item_counts.astype(np.int64)
        sparse[table.name] = SparseInput(values, lengths)
    return NumericRequest(
        request_id=request.request_id,
        num_items=request.num_items,
        user_dense=user_dense,
        item_dense=item_dense,
        sparse=sparse,
    )

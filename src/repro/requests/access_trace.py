"""Embedding-table access traces (paper Section IX).

The paper highlights trace-driven experimentation as the academic-friendly
methodology for this domain: "Bandana used embedding table access traces
-- which can be collected offline -- to reduce effective DRAM
requirements.  Because embedding table behavior is the dominating design
factor in large models, explorations [of] table placement and
frequency-based caching are also valuable directions enabled with
trace-based analyses."

This module collects such traces from the request generator.  Row-access
popularity follows a bounded Zipf(~1) distribution -- production embedding
accesses are heavily skewed toward hot entities -- realized by sampling
log-uniform ranks and scattering them over the table with a mixing
permutation (hot rows are not physically adjacent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import substream
from repro.models.config import ModelConfig
from repro.requests.generator import Request

_MIX_MULTIPLIER = np.int64(0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF)


@dataclass
class AccessTrace:
    """Ordered row accesses per table, plus table row counts."""

    model_name: str
    num_requests: int
    accesses: dict[str, np.ndarray] = field(default_factory=dict)
    num_rows: dict[str, int] = field(default_factory=dict)

    def total_accesses(self) -> int:
        return sum(len(rows) for rows in self.accesses.values())

    def tables(self) -> list[str]:
        return sorted(self.accesses)


_SKEW_EXPONENT = 2.0
"""Popularity skew: rank CDF is (ln r / ln N) ** (1/exponent).  At 2.0,
~10% of a trace's working set captures ~2/3 of its accesses, matching the
skew production embedding traces exhibit (Bandana-class workloads)."""


def _zipf_rows(rng: np.random.Generator, count: int, num_rows: int) -> np.ndarray:
    """Sample ``count`` row ids with Zipf-like popularity.

    Ranks are drawn log-uniform with an extra skew exponent (density
    steeper than 1/rank near the head), then scattered across the
    physical row space with a fixed odd-multiplier permutation.
    """
    if num_rows <= 1:
        return np.zeros(count, dtype=np.int64)
    u = rng.uniform(0.0, 1.0, size=count) ** _SKEW_EXPONENT
    ranks = np.floor(np.exp(u * np.log(num_rows))).astype(np.int64)
    ranks = np.minimum(ranks, num_rows - 1)
    return (ranks * _MIX_MULTIPLIER) % num_rows


def collect_access_trace(
    model: ModelConfig, requests: list[Request], seed: int = 0
) -> AccessTrace:
    """Expand count-level requests into per-table row-access streams."""
    trace = AccessTrace(model_name=model.name, num_requests=len(requests))
    buffers: dict[str, list[np.ndarray]] = {}
    for request in requests:
        for draw in request.draws.values():
            table = model.table(draw.table_name)
            rng = substream(seed, "access", draw.table_name, request.request_id)
            buffers.setdefault(draw.table_name, []).append(
                _zipf_rows(rng, draw.total_ids, table.num_rows)
            )
    for name, chunks in buffers.items():
        trace.accesses[name] = np.concatenate(chunks)
        trace.num_rows[name] = model.table(name).num_rows
    return trace

"""Embedding-table access traces (paper Section IX).

The paper highlights trace-driven experimentation as the academic-friendly
methodology for this domain: "Bandana used embedding table access traces
-- which can be collected offline -- to reduce effective DRAM
requirements.  Because embedding table behavior is the dominating design
factor in large models, explorations [of] table placement and
frequency-based caching are also valuable directions enabled with
trace-based analyses."

This module collects such traces from the request generator.  Row-access
popularity follows a bounded Zipf(~1) distribution -- production embedding
accesses are heavily skewed toward hot entities -- realized by sampling
log-uniform ranks and scattering them over the table with a mixing
permutation (hot rows are not physically adjacent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import substream
from repro.models.config import ModelConfig
from repro.requests.generator import Request

_MIX_MULTIPLIER = np.int64(0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF)


@dataclass
class AccessTrace:
    """Ordered row accesses per table, plus table row counts."""

    model_name: str
    num_requests: int
    accesses: dict[str, np.ndarray] = field(default_factory=dict)
    num_rows: dict[str, int] = field(default_factory=dict)

    def total_accesses(self) -> int:
        return sum(len(rows) for rows in self.accesses.values())

    def tables(self) -> list[str]:
        return sorted(self.accesses)


_SKEW_EXPONENT = 2.0
"""Popularity skew: rank CDF is (ln r / ln N) ** (1/exponent).  At 2.0,
~10% of a trace's working set captures ~2/3 of its accesses, matching the
skew production embedding traces exhibit (Bandana-class workloads)."""


def _zipf_rows(rng: np.random.Generator, count: int, num_rows: int) -> np.ndarray:
    """Sample ``count`` row ids with Zipf-like popularity.

    Ranks are drawn log-uniform with an extra skew exponent (density
    steeper than 1/rank near the head), then scattered across the
    physical row space with a fixed odd-multiplier permutation.
    """
    if num_rows <= 1:
        return np.zeros(count, dtype=np.int64)
    u = rng.uniform(0.0, 1.0, size=count) ** _SKEW_EXPONENT
    ranks = np.floor(np.exp(u * np.log(num_rows))).astype(np.int64)
    ranks = np.minimum(ranks, num_rows - 1)
    return (ranks * _MIX_MULTIPLIER) % num_rows


def collect_access_trace(
    model: ModelConfig, requests: list[Request], seed: int = 0
) -> AccessTrace:
    """Expand count-level requests into per-table row-access streams."""
    trace = AccessTrace(model_name=model.name, num_requests=len(requests))
    buffers: dict[str, list[np.ndarray]] = {}
    for request in requests:
        # Sorted draw order (DET004): each draw has its own
        # (table, request) substream, so ordering by table name is
        # byte-identical to insertion order -- but provably so.
        for draw in sorted(request.draws.values(), key=lambda d: d.table_name):
            table = model.table(draw.table_name)
            rng = substream(seed, "access", draw.table_name, request.request_id)
            buffers.setdefault(draw.table_name, []).append(
                _zipf_rows(rng, draw.total_ids, table.num_rows)
            )
    for name, chunks in buffers.items():
        trace.accesses[name] = np.concatenate(chunks)
        trace.num_rows[name] = model.table(name).num_rows
    return trace


@dataclass(frozen=True)
class CorrelatedStream:
    """Temporally-correlated (popularity + recency) sparse-ID stream.

    :func:`collect_access_trace` draws every access i.i.d. from the Zipf
    popularity law, which understates what an online cache captures:
    production embedding accesses also exhibit *recency* -- entities
    active right now are re-referenced far above their stationary
    popularity (session locality).  Under this stream each access is,
    with probability ``recency_weight``, a re-reference of one of the
    last ``window`` rows touched on that table; otherwise it is a fresh
    popularity draw.  The emitted :class:`AccessTrace` feeds
    :mod:`repro.analysis.caching` directly, closing the cache-aware loop
    from the request stream to the DRAM-reduction study.
    """

    recency_weight: float = 0.3
    window: int = 2048
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.recency_weight < 1.0:
            raise ValueError("recency_weight must be in [0, 1)")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        object.__setattr__(self, "recency_weight", float(self.recency_weight))
        object.__setattr__(self, "window", int(self.window))


def collect_correlated_trace(
    model: ModelConfig, requests: list[Request], stream: CorrelatedStream
) -> AccessTrace:
    """Expand requests into recency-correlated per-table access streams.

    Requests are consumed in list order (arrival order for a sampled
    workload stream), one substream per table advancing with them -- the
    trace is a pure function of ``(model, requests, stream)``.
    """
    trace = AccessTrace(model_name=model.name, num_requests=len(requests))
    buffers: dict[str, list[np.ndarray]] = {}
    recent: dict[str, np.ndarray] = {}
    rngs: dict[str, np.random.Generator] = {}
    for request in requests:
        # Sorted draw order (DET004): every stream below (rng, recency
        # window, buffers) is keyed per table, so each table's draw
        # sequence depends only on the *request* order, never on the
        # intra-request table order -- sorting changes no bytes.
        for draw in sorted(request.draws.values(), key=lambda d: d.table_name):
            name = draw.table_name
            rng = rngs.get(name)
            if rng is None:
                rng = substream(stream.seed, "correlated-access", name)
                rngs[name] = rng
            num_rows = model.table(name).num_rows
            rows = _zipf_rows(rng, draw.total_ids, num_rows)
            window = recent.get(name)
            if window is not None and stream.recency_weight > 0.0:
                rehit = rng.uniform(0.0, 1.0, size=rows.size) < stream.recency_weight
                picks = rng.integers(0, window.size, size=rows.size)
                rows = np.where(rehit, window[picks], rows)
            buffers.setdefault(name, []).append(rows)
            tail = (
                rows if window is None else np.concatenate([window, rows])
            )[-stream.window :]
            recent[name] = tail
    for name, chunks in buffers.items():
        trace.accesses[name] = np.concatenate(chunks)
        trace.num_rows[name] = model.table(name).num_rows
    return trace

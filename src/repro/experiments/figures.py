"""Generators for every table and figure in the paper's evaluation.

Each function consumes :class:`~repro.experiments.runner.RunResult` maps
(and/or model configs) and produces a :class:`FigureArtifact`: a printable
text rendering plus the structured data the benchmark suite asserts on.
The EXPERIMENTS.md index maps each function to its paper artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.quantiles import (
    QUANTILES,
    median_window_mean_columns,
    overhead_vs_baseline,
)
from repro.analysis.report import format_stack_bars, format_table
from repro.compression.pipeline import CompressionReport
from repro.core.types import GIB, OpCategory
from repro.models.config import ModelConfig
from repro.models.growth import growth_factor, growth_series
from repro.experiments.runner import RunResult
from repro.sharding.plan import SINGULAR, ShardingPlan
from repro.sharding.pooling import pooling_by_shard
from repro.tracing.attribution import (
    CPU_BUCKETS,
    E2E_BUCKETS,
    EMBEDDED_BUCKETS,
)


@dataclass
class FigureArtifact:
    """One regenerated paper artifact."""

    name: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.title} ==\n{self.text}"


def _singular(results: dict[str, RunResult]) -> RunResult:
    try:
        return results[SINGULAR]
    except KeyError:
        raise KeyError("results must include the singular baseline") from None


# -- Figure 1 -------------------------------------------------------------------
def fig1_model_growth() -> FigureArtifact:
    """Historical model growth: features and capacity, ~10x in 3 years."""
    points = growth_series()
    features_x, capacity_x = growth_factor(points)
    rows = [
        (p.quarter, p.num_sparse_features, p.embedding_bytes / GIB) for p in points
    ]
    text = format_table(
        ["quarter", "sparse features", "embedding GiB"], rows,
        title="Figure 1: production recommendation model growth",
    )
    text += f"\n=> growth over {points[-1].years_since_start:.1f} years: "
    text += f"features {features_x:.1f}x, capacity {capacity_x:.1f}x"
    return FigureArtifact(
        "fig1", "Model growth", text,
        {"features_x": features_x, "capacity_x": capacity_x, "points": points},
    )


# -- Figure 4 -------------------------------------------------------------------
def fig4_operator_attribution(
    singular_results: dict[str, RunResult], models: dict[str, ModelConfig]
) -> FigureArtifact:
    """Normalized operator-compute attribution per model (singular runs).

    Sparse share is measured from simulated operator CPU; the non-sparse
    remainder is split across categories by each model's op mix.
    """
    shares: dict[str, dict[str, float]] = {}
    for name, result in singular_results.items():
        sparse = sum(a.sparse_op_cpu for a in result.attributions)
        dense = sum(a.dense_op_cpu for a in result.attributions)
        total = sparse + dense
        mix = models[name].nets[0].op_mix
        model_shares = {"Sparse": sparse / total}
        for category, fraction in mix.items():
            model_shares[category.value] = fraction * dense / total
        shares[name] = model_shares
    categories = [OpCategory.SPARSE.value] + [
        c.value for c in next(iter(models.values())).nets[0].op_mix
    ]
    categories = ["Sparse"] + [c for c in categories if c != "Sparse"]
    rows = [
        [name] + [round(shares[name].get(c, 0.0), 4) for c in categories]
        for name in shares
    ]
    text = format_table(
        ["model"] + categories, rows,
        title="Figure 4: operator compute attribution (fraction of op time)",
    )
    return FigureArtifact("fig4", "Operator attribution", text, {"shares": shares})


# -- Figure 5 -------------------------------------------------------------------
def fig5_table_size_distribution(models: dict[str, ModelConfig]) -> FigureArtifact:
    """Embedding-table size distributions (count, total, largest, tail)."""
    rows = []
    data = {}
    for name, model in models.items():
        sizes = np.array(sorted((t.nbytes for t in model.tables), reverse=True))
        dominant_share = sizes[0] / sizes.sum()
        rows.append(
            (
                name,
                len(sizes),
                sizes.sum() / GIB,
                sizes[0] / GIB,
                float(np.median(sizes)) / GIB,
                round(dominant_share, 3),
            )
        )
        data[name] = {
            "count": len(sizes),
            "total_gib": sizes.sum() / GIB,
            "largest_gib": sizes[0] / GIB,
            "dominant_share": dominant_share,
        }
    text = format_table(
        ["model", "tables", "total GiB", "largest GiB", "median GiB", "largest/total"],
        rows,
        title="Figure 5: embedding table size distribution",
    )
    return FigureArtifact("fig5", "Table size distribution", text, data)


# -- Table II -------------------------------------------------------------------
def table2_sharding_results(
    model: ModelConfig,
    plans: dict[str, ShardingPlan],
    pooling: dict[str, float],
) -> FigureArtifact:
    """Static sharding attributes: capacity / tables / pooling per shard."""
    rows = []
    data: dict[str, dict[str, list[float]]] = {}
    for label, plan in plans.items():
        capacities = [c / GIB for c in plan.capacity_by_shard(model)]
        table_counts = [len(shard.assignments) for shard in plan.shards]
        loads = pooling_by_shard(plan.shards, pooling)
        data[label] = {
            "capacity_gib": capacities,
            "tables": table_counts,
            "pooling": loads,
        }
        for shard_index in range(plan.num_shards):
            rows.append(
                (
                    label if shard_index == 0 else "",
                    shard_index + 1,
                    round(capacities[shard_index], 2),
                    table_counts[shard_index],
                    round(loads[shard_index], 1),
                )
            )
    text = format_table(
        ["configuration", "shard", "capacity GiB", "tables", "est. pooling factor"],
        rows,
        title=f"Table II: sharding results for {model.name}",
    )
    return FigureArtifact("table2", "Sharding results", text, data)


# -- Figures 6 / 7 / 16 -----------------------------------------------------------
def overhead_figure(
    results: dict[str, RunResult], name: str, title: str
) -> FigureArtifact:
    """P50/P90/P99 latency & compute overheads vs singular."""
    baseline = _singular(results)
    rows = []
    data: dict[str, dict[int, dict[str, float]]] = {}
    for label, result in results.items():
        if label == SINGULAR:
            continue
        per_quantile = {}
        for q in QUANTILES:
            latency = overhead_vs_baseline(result.e2e, baseline.e2e, q)
            compute = overhead_vs_baseline(result.cpu, baseline.cpu, q)
            per_quantile[q] = {"latency": latency, "compute": compute}
            rows.append((label, f"P{q}", round(latency, 4), round(compute, 4)))
        data[label] = per_quantile
    text = format_table(
        ["configuration", "quantile", "latency overhead", "compute overhead"],
        rows,
        title=title,
    )
    return FigureArtifact(name, title, text, data)


def fig6_overheads(results: dict[str, RunResult], model_name: str) -> FigureArtifact:
    return overhead_figure(
        results, f"fig6_{model_name.lower()}",
        f"Figure 6 ({model_name}): latency & compute overheads vs singular (serial)",
    )


def fig7_overheads_drm3(results: dict[str, RunResult]) -> FigureArtifact:
    return overhead_figure(
        results, "fig7", "Figure 7 (DRM3): latency & compute overheads vs singular"
    )


def fig16_qps_overheads(results: dict[str, RunResult]) -> FigureArtifact:
    return overhead_figure(
        results, "fig16", "Figure 16 (DRM1 @ 25 QPS): overheads vs singular"
    )


# -- Figures 8 / 9 -----------------------------------------------------------------
_STACK_KEYS = {
    "latency": lambda result: result.e2e,
    "embedded": lambda result: result.embedded_totals,
    "cpu": lambda result: result.cpu,
}


def _p50_stacks(
    results: dict[str, RunResult], kind: str
) -> dict[str, dict[str, float]]:
    """Median-window mean stacks straight from each result's columns."""
    key_getter = _STACK_KEYS[kind]
    return {
        label: median_window_mean_columns(
            result.stack_columns(kind), key_getter(result)
        )
        for label, result in results.items()
    }


def fig8a_e2e_latency_stacks(results: dict[str, RunResult]) -> FigureArtifact:
    stacks = _p50_stacks(results, "latency")
    text = format_stack_bars(
        stacks, E2E_BUCKETS,
        title="Figure 8a: P50 E2E latency stacks (normalized to tallest config)",
    )
    return FigureArtifact("fig8a", "E2E latency stacks", text, {"stacks": stacks})


def fig8b_embedded_stacks(results: dict[str, RunResult]) -> FigureArtifact:
    stacks = _p50_stacks(results, "embedded")
    text = format_stack_bars(
        stacks, EMBEDDED_BUCKETS,
        title="Figure 8b: P50 embedded-portion stacks (bounding shard)",
    )
    return FigureArtifact("fig8b", "Embedded-portion stacks", text, {"stacks": stacks})


def fig9_cpu_stacks(results: dict[str, RunResult]) -> FigureArtifact:
    stacks = _p50_stacks(results, "cpu")
    text = format_stack_bars(
        stacks, CPU_BUCKETS,
        title="Figure 9: P50 aggregate CPU-time stacks (all shards)",
    )
    return FigureArtifact("fig9", "CPU-time stacks", text, {"stacks": stacks})


# -- Figures 10 / 11 / 12 / 15 -----------------------------------------------------
def per_shard_figure(
    results: dict[str, RunResult], name: str, title: str, by_net: bool = False
) -> FigureArtifact:
    """Per-shard mean operator latencies, normalized to the global max."""
    data: dict[str, dict] = {}
    peak = 0.0
    for label, result in results.items():
        per_shard = (
            result.mean_per_shard_net_op_time() if by_net
            else result.mean_per_shard_op_time()
        )
        data[label] = per_shard
        if per_shard:
            peak = max(peak, max(per_shard.values()))
    rows = []
    for label, per_shard in data.items():
        for key, value in per_shard.items():
            if by_net:
                shard, net = key
                rows.append((label, shard + 1, net, round(value / peak, 3)))
            else:
                rows.append((label, key + 1, "-", round(value / peak, 3)))
    text = format_table(
        ["configuration", "shard", "net", "normalized op latency"], rows, title=title
    )
    return FigureArtifact(name, title, text, {"per_shard": data, "peak": peak})


def fig10_per_shard_by_net(results: dict[str, RunResult]) -> FigureArtifact:
    """DRM1 per-shard operator latencies by net: load-bal vs NSBP, 8 shards."""
    wanted = {k: v for k, v in results.items() if k in ("load-bal 8 shards", "NSBP 8 shards")}
    return per_shard_figure(
        wanted, "fig10",
        "Figure 10: DRM1 per-shard operator latencies by net (8 shards)",
        by_net=True,
    )


def fig11_drm3_per_shard(results: dict[str, RunResult]) -> FigureArtifact:
    """DRM3: NSBP per-shard op latencies + embedded stacks by config."""
    nsbp8 = {k: v for k, v in results.items() if k == "NSBP 8 shards"}
    shard_fig = per_shard_figure(
        nsbp8, "fig11a", "Figure 11a: DRM3 per-shard operator latencies (NSBP 8)"
    )
    stacks = _p50_stacks(results, "embedded")
    text = shard_fig.text + "\n\n" + format_stack_bars(
        stacks, EMBEDDED_BUCKETS,
        title="Figure 11b: DRM3 embedded-portion stacks",
    )
    return FigureArtifact(
        "fig11", "DRM3 per-shard latencies", text,
        {"per_shard": shard_fig.data["per_shard"], "stacks": stacks},
    )


def fig12_per_shard_by_strategy(results: dict[str, RunResult]) -> FigureArtifact:
    wanted = {
        k: v
        for k, v in results.items()
        if k in ("load-bal 8 shards", "cap-bal 8 shards", "NSBP 8 shards")
    }
    return per_shard_figure(
        wanted, "fig12",
        "Figure 12: DRM1 per-shard operator latencies by strategy (8 shards)",
    )


def fig15_platforms(
    result_large: RunResult, result_small: RunResult
) -> FigureArtifact:
    results = {"SC-Large": result_large, "SC-Small": result_small}
    artifact = per_shard_figure(
        results, "fig15",
        "Figure 15: DRM1 per-shard operator latencies by server platform",
    )
    large = result_large.mean_per_shard_op_time()
    small = result_small.mean_per_shard_op_time()
    ratios = [small[s] / large[s] for s in large]
    artifact.data["mean_ratio_small_over_large"] = float(np.mean(ratios))
    artifact.text += (
        f"\n=> mean SC-Small/SC-Large per-shard op latency ratio: "
        f"{artifact.data['mean_ratio_small_over_large']:.3f}"
    )
    return artifact


# -- Figures 13 / 14 ---------------------------------------------------------------
def fig13_batching_latency(
    default_results: dict[str, dict[str, RunResult]],
    single_results: dict[str, dict[str, RunResult]],
) -> FigureArtifact:
    """E2E + embedded stacks, default vs single-batch (DRM1 & DRM2)."""
    stacks: dict[str, dict[str, float]] = {}
    overheads: dict[str, dict[str, float]] = {}
    for mode, result_map in (("default", default_results), ("single-batch", single_results)):
        for model_name, results in result_map.items():
            baseline = _singular(results)
            merged = _p50_stacks(results, "latency")
            for label, stack in merged.items():
                stacks[f"{model_name}/{mode}/{label}"] = stack
            overheads[f"{model_name}/{mode}"] = {
                label: overhead_vs_baseline(result.e2e, baseline.e2e, 50)
                for label, result in results.items()
                if label != SINGULAR
            }
    text = format_stack_bars(
        stacks, E2E_BUCKETS,
        title="Figure 13: P50 E2E latency stacks, default vs single batch",
        width=36,
    )
    return FigureArtifact(
        "fig13", "Batching latency stacks", text,
        {"stacks": stacks, "p50_overheads": overheads},
    )


def fig14_batching_cpu(
    default_results: dict[str, dict[str, RunResult]],
    single_results: dict[str, dict[str, RunResult]],
) -> FigureArtifact:
    stacks: dict[str, dict[str, float]] = {}
    overheads: dict[str, dict[str, float]] = {}
    for mode, result_map in (("default", default_results), ("single-batch", single_results)):
        for model_name, results in result_map.items():
            baseline = _singular(results)
            merged = _p50_stacks(results, "cpu")
            for label, stack in merged.items():
                stacks[f"{model_name}/{mode}/{label}"] = stack
            overheads[f"{model_name}/{mode}"] = {
                label: overhead_vs_baseline(result.cpu, baseline.cpu, 50)
                for label, result in results.items()
                if label != SINGULAR
            }
    text = format_stack_bars(
        stacks, CPU_BUCKETS,
        title="Figure 14: P50 CPU-time stacks, default vs single batch",
        width=36,
    )
    return FigureArtifact(
        "fig14", "Batching CPU stacks", text,
        {"stacks": stacks, "p50_overheads": overheads},
    )


# -- Table III -----------------------------------------------------------------------
def table3_compression(
    uncompressed: RunResult,
    compressed: RunResult,
    report: CompressionReport,
) -> FigureArtifact:
    """Size + CPU/latency quantiles, normalized to uncompressed P50."""
    rows = [
        ("Total size (GB)", report.uncompressed_bytes / 1e9, report.compressed_bytes / 1e9),
    ]
    data = {
        "ratio": report.ratio,
        "size_gb": (report.uncompressed_bytes / 1e9, report.compressed_bytes / 1e9),
    }
    cpu_base = np.percentile(uncompressed.cpu, 50)
    e2e_base = np.percentile(uncompressed.e2e, 50)
    for metric, base_values, comp_values, base in (
        ("CPU Time", uncompressed.cpu, compressed.cpu, cpu_base),
        ("E2E Latency", uncompressed.e2e, compressed.e2e, e2e_base),
    ):
        for q in QUANTILES:
            u = np.percentile(base_values, q) / base
            c = np.percentile(comp_values, q) / base
            rows.append((f"{metric} P{q} (x P50 uncompressed)", round(u, 3), round(c, 3)))
            data[f"{metric}-P{q}"] = (float(u), float(c))
    text = format_table(
        ["metric", "uncompressed", "quantized and pruned"],
        rows,
        title=f"Table III: effect of quantization and pruning on {uncompressed.model_name} "
        f"(compression ratio {report.ratio:.2f}x)",
    )
    return FigureArtifact("table3", "Compression effects", text, data)

"""The paper's sharding-configuration matrix (Table I / Section V-A).

DRM1 and DRM2 are evaluated under ten configurations: singular, one sparse
shard, and {2, 4, 8} shards for each of load-balanced, capacity-balanced
and NSBP.  DRM3 "is only sharded with NSBP ... due to existing technical
challenges of sharding huge tables", so its matrix is singular, 1-shard,
and NSBP {4, 8}.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.sharding.plan import SINGULAR, ShardingPlan, singular_plan
from repro.sharding.strategies import STRATEGIES

PAPER_SHARD_COUNTS = (2, 4, 8)


@dataclass(frozen=True)
class ShardingConfiguration:
    """One point of the evaluation matrix."""

    strategy: str
    num_shards: int = 0

    @property
    def label(self) -> str:
        if self.strategy == SINGULAR:
            return SINGULAR
        if self.strategy == "1-shard":
            return "1 shard"
        return f"{self.strategy} {self.num_shards} shards"


def paper_configurations(model_name: str) -> tuple[ShardingConfiguration, ...]:
    """The configurations the paper evaluates for a given model."""
    configs = [
        ShardingConfiguration(SINGULAR),
        ShardingConfiguration("1-shard", 1),
    ]
    if model_name.upper() == "DRM3":
        configs.extend(
            ShardingConfiguration("NSBP", count) for count in (4, 8)
        )
        return tuple(configs)
    for strategy in ("load-bal", "cap-bal", "NSBP"):
        configs.extend(
            ShardingConfiguration(strategy, count) for count in PAPER_SHARD_COUNTS
        )
    return tuple(configs)


def mix_configurations(model_names) -> tuple[ShardingConfiguration, ...]:
    """Configurations valid for *every* named model, in matrix order.

    A co-located :class:`~repro.workloads.workload.WorkloadMix` sweep
    applies one configuration to all tenant models, so it can only sweep
    the intersection of their paper matrices (DRM3 shards with NSBP only,
    and only at 4/8 shards).
    """
    names = list(model_names)
    if not names:
        raise ValueError("mix_configurations needs at least one model name")
    ordered = paper_configurations(names[0])
    for name in names[1:]:
        allowed = set(paper_configurations(name))
        ordered = tuple(
            configuration for configuration in ordered if configuration in allowed
        )
    return ordered


def build_plan(
    model: ModelConfig,
    configuration: ShardingConfiguration,
    pooling: dict[str, float] | None = None,
) -> ShardingPlan:
    """Materialize one configuration into a validated sharding plan."""
    if configuration.strategy == SINGULAR:
        return singular_plan(model)
    strategy = STRATEGIES[configuration.strategy]
    return strategy.build_plan(model, configuration.num_shards, pooling)

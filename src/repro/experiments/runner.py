"""Experiment runner: simulate configurations, collect attributed results.

One :class:`RunResult` holds everything the figure generators need for one
(model, sharding configuration, serving configuration) cell: per-request
E2E latency, per-request aggregate CPU, and the full per-request
attributions.  Traces are attributed incrementally as requests complete
and raw spans are freed, so full sweeps stay memory-bounded.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.models.config import ModelConfig
from repro.requests.generator import Request, RequestGenerator
from repro.requests.replayer import ReplayMode, ReplaySchedule
from repro.serving.simulator import ClusterSimulation, ServingConfig
from repro.sharding.plan import ShardingPlan
from repro.sharding.pooling import estimate_pooling_factors
from repro.tracing.attribution import RequestAttribution, attribute_request
from repro.experiments.configs import (
    ShardingConfiguration,
    build_plan,
    paper_configurations,
)

#: Environment knob: request count per configuration in suites/benches.
REQUESTS_ENV = "REPRO_REQUESTS"
DEFAULT_REQUESTS = 200


def default_num_requests() -> int:
    return int(os.environ.get(REQUESTS_ENV, DEFAULT_REQUESTS))


@dataclass
class RunResult:
    """Attributed measurements for one simulated configuration."""

    model_name: str
    label: str
    plan: ShardingPlan
    attributions: list[RequestAttribution] = field(default_factory=list)

    @property
    def e2e(self) -> np.ndarray:
        return np.array([a.e2e for a in self.attributions])

    @property
    def cpu(self) -> np.ndarray:
        return np.array([a.cpu_total for a in self.attributions])

    def latency_stacks(self) -> list[dict[str, float]]:
        return [a.latency_stack for a in self.attributions]

    def embedded_stacks(self) -> list[dict[str, float]]:
        return [a.embedded_stack for a in self.attributions]

    def cpu_stacks(self) -> list[dict[str, float]]:
        return [a.cpu_stack for a in self.attributions]

    def mean_per_shard_op_time(self) -> dict[int, float]:
        totals: dict[int, float] = {}
        for attribution in self.attributions:
            for shard, value in attribution.per_shard_op_time.items():
                totals[shard] = totals.get(shard, 0.0) + value
        return {shard: v / len(self.attributions) for shard, v in sorted(totals.items())}

    def mean_per_shard_net_op_time(self) -> dict[tuple[int, str], float]:
        totals: dict[tuple[int, str], float] = {}
        for attribution in self.attributions:
            for key, value in attribution.per_shard_net_op_time.items():
                totals[key] = totals.get(key, 0.0) + value
        return {key: v / len(self.attributions) for key, v in sorted(totals.items())}


def run_configuration(
    model: ModelConfig,
    plan: ShardingPlan,
    requests: list[Request],
    serving: ServingConfig | None = None,
    schedule: ReplaySchedule | None = None,
) -> RunResult:
    """Simulate one configuration and attribute every request."""
    schedule = schedule or ReplaySchedule.serial()
    cluster = ClusterSimulation(model, plan, serving)
    result = RunResult(model_name=model.name, label=plan.label, plan=plan)

    def on_complete(request_id: int) -> None:
        spans = cluster.tracer.pop_request(request_id)
        result.attributions.append(attribute_request(spans))

    cluster.on_complete = on_complete
    if schedule.mode is ReplayMode.SERIAL:
        cluster.run_serial(requests)
    else:
        cluster.run_open_loop(requests, schedule)
    return result


@dataclass(frozen=True)
class SuiteSettings:
    """Shared settings for a paper-style sweep over configurations."""

    num_requests: int = 0  # 0 -> default_num_requests()
    request_seed: int = 3
    pooling_requests: int = 1000
    pooling_seed: int = 42
    serving: ServingConfig = field(default_factory=ServingConfig)
    schedule: ReplaySchedule = field(default_factory=ReplaySchedule.serial)

    def resolved_requests(self) -> int:
        return self.num_requests or default_num_requests()


def suite_requests(model: ModelConfig, settings: SuiteSettings) -> list[Request]:
    generator = RequestGenerator(model, seed=settings.request_seed)
    return generator.generate_many(settings.resolved_requests())


def run_suite(
    model: ModelConfig,
    settings: SuiteSettings | None = None,
    configurations: tuple[ShardingConfiguration, ...] | None = None,
) -> dict[str, RunResult]:
    """Run the paper's configuration matrix for one model.

    Every configuration replays the *same* request sample (the paper's
    replayer preprocesses and caches requests before sending).
    """
    settings = settings or SuiteSettings()
    configurations = configurations or paper_configurations(model.name)
    requests = suite_requests(model, settings)
    pooling = estimate_pooling_factors(
        model, num_requests=settings.pooling_requests, seed=settings.pooling_seed
    )
    results: dict[str, RunResult] = {}
    for configuration in configurations:
        plan = build_plan(model, configuration, pooling)
        results[plan.label] = run_configuration(
            model, plan, requests, settings.serving, settings.schedule
        )
    return results

"""Experiment runner: simulate configurations, collect attributed results.

One :class:`RunResult` holds everything the figure generators need for one
(model, sharding configuration, serving configuration) cell: per-request
E2E latency, per-request aggregate CPU, and the full per-request
attributions.  Traces are attributed incrementally as requests complete
and raw spans are freed, so full sweeps stay memory-bounded.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.models.config import ModelConfig
from repro.requests.generator import Request, RequestGenerator
from repro.requests.replayer import ReplayMode, ReplaySchedule
from repro.serving.simulator import ClusterSimulation, ServingConfig
from repro.sharding.plan import ShardingPlan
from repro.sharding.pooling import estimate_pooling_factors
from repro.tracing.aggregate import AggregatingTracer, TraceMode
from repro.tracing.attribution import (
    CPU_BUCKETS,
    E2E_BUCKETS,
    EMBEDDED_BUCKETS,
    RequestAttribution,
    attribute_request,
)
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.workload import MixedStream, WorkloadMix
from repro.experiments.configs import (
    ShardingConfiguration,
    build_plan,
    mix_configurations,
    paper_configurations,
)

#: Environment knob: request count per configuration in suites/benches.
REQUESTS_ENV = "REPRO_REQUESTS"
DEFAULT_REQUESTS = 200

#: Environment knob: vectorized-kernel chunk size (requests per columnar
#: batch).  The fast path materializes per-request cost arrays one chunk
#: at a time, so peak memory is O(chunk), not O(sweep) -- the default
#: keeps million-request sweeps flat while amortizing numpy dispatch.
CHUNK_ENV = "REPRO_CHUNK"
DEFAULT_CHUNK = 2048


def _env_positive_int(env: str, default: int) -> int:
    raw = os.environ.get(env)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{env} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{env} must be >= 1, got {raw!r}"
        )
    return value


def default_num_requests() -> int:
    """Request count per configuration: ``REPRO_REQUESTS`` if set.

    Malformed or non-positive values fail fast with a message naming the
    variable and the offending value, instead of a bare ``ValueError``
    surfacing from ``int()`` deep inside a sweep.
    """
    return _env_positive_int(REQUESTS_ENV, DEFAULT_REQUESTS)


def default_chunk_size() -> int:
    """Vectorized-kernel chunk size: ``REPRO_CHUNK`` if set.

    Validated exactly like ``REPRO_REQUESTS``.  Chunking changes only
    how many requests are columnarized per numpy pass, never the replay
    arithmetic, so any chunk size yields bit-identical results."""
    return _env_positive_int(CHUNK_ENV, DEFAULT_CHUNK)


class RunResult:
    """Attributed measurements for one simulated configuration.

    Storage is **columnar**: E2E latency, aggregate CPU, and the three
    per-request stacks live in preallocated numpy arrays that are filled
    incrementally as requests complete (grown by doubling).  Figure
    generation therefore reads ready-made arrays instead of rebuilding
    them from the list of :class:`RequestAttribution` dataclasses on
    every access.  Per-shard CPU-demand and sparse-op-time columns are
    filled in both trace modes; the full attributions are retained (FULL
    mode only) for the per-(shard, net) breakdown and ad-hoc inspection.
    """

    _COLUMN_BUCKETS = {
        "latency": E2E_BUCKETS,
        "embedded": EMBEDDED_BUCKETS,
        "cpu": CPU_BUCKETS,
    }

    def __init__(
        self,
        model_name: str,
        label: str,
        plan: ShardingPlan,
        expected_requests: int = 0,
        workload_labels: tuple[str, ...] | None = None,
        plans: list[ShardingPlan] | None = None,
    ):
        self.model_name = model_name
        self.label = label
        self.plan = plan
        #: One plan per co-located workload; ``[plan]`` for classic runs.
        self.plans = list(plans) if plans is not None else [plan]
        #: Display labels of the workloads sharing this run; classic
        #: single-model runs carry one label (the model name), and every
        #: request's ``workloads`` entry indexes into this tuple.
        self.workload_labels = (
            tuple(workload_labels) if workload_labels else (model_name,)
        )
        self.attributions: list[RequestAttribution] = []
        #: DES kernel that actually produced these columns ("reference",
        #: "batched", or "vectorized"); None until the runner sets it.
        self.kernel_used: str | None = None
        #: Why a ``kernel="vectorized"`` run fell back to the batched
        #: kernel (a stable reason string from
        #: :mod:`repro.serving.columnar`); None when no fallback happened.
        self.kernel_fallback: str | None = None
        #: Requests that never completed (an aborted or fault-saturated
        #: replay); ids only -- they have no row in the columns.
        self.incomplete_requests: tuple[int, ...] = ()
        #: Fault/heal transitions of the replay (``ChaosEvent`` tuples;
        #: empty for healthy runs).
        self.chaos_timeline: tuple = ()
        #: Replay-level resilience counters (attempts, hedges,
        #: budget_denied, deadline_exceeded, aborted_attempts); empty
        #: without an active :class:`~repro.resilience.ResiliencePolicy`.
        self.resilience_stats: dict[str, int] = {}
        #: In-flight RPC attempts aborted by mid-service crashes
        #: (0 on healthy runs).
        self.aborted_rpcs: int = 0
        capacity = max(int(expected_requests), 16)
        self._count = 0
        self._e2e = np.empty(capacity)
        self._cpu = np.empty(capacity)
        self._workload = np.zeros(capacity, dtype=np.int64)
        # Chaos columns (see the accessors below); all-zero statuses on
        # healthy runs, and the id column maps completion-order rows back
        # to arrival order.
        self._rid = np.empty(capacity, dtype=np.int64)
        self._status = np.zeros(capacity, dtype=np.int64)
        self._degraded = np.zeros(capacity, dtype=np.int64)
        self._retries = np.zeros(capacity, dtype=np.int64)
        # Resilience columns; all-zero without an active policy.
        self._attempts = np.zeros(capacity, dtype=np.int64)
        self._hedged = np.zeros(capacity, dtype=np.int64)
        self._deadline = np.zeros(capacity, dtype=np.int64)
        self._stack_cols: dict[tuple[str, str], np.ndarray] = {
            (kind, bucket): np.empty(capacity)
            for kind, buckets in self._COLUMN_BUCKETS.items()
            for bucket in buckets
        }
        # Per-shard demand columns, keyed by shard index (MAIN_SHARD = -1):
        # per-request CPU-seconds by shard, and per-request sparse-operator
        # time by sparse shard.  Lazily created, zero-filled (a request that
        # never touched a shard contributes exactly 0.0), populated in both
        # FULL and AGGREGATE trace modes -- the replication planner's
        # demand signal.
        self._shard_cpu_cols: dict[int, np.ndarray] = {}
        self._shard_op_cols: dict[int, np.ndarray] = {}

    def _grow(self, capacity: int) -> None:
        def grown(array: np.ndarray) -> np.ndarray:
            out = np.empty(capacity, dtype=array.dtype)
            out[: self._count] = array[: self._count]
            return out

        def grown_zeros(array: np.ndarray) -> np.ndarray:
            out = np.zeros(capacity, dtype=array.dtype)
            out[: self._count] = array[: self._count]
            return out

        self._e2e = grown(self._e2e)
        self._cpu = grown(self._cpu)
        self._workload = grown(self._workload)
        self._rid = grown(self._rid)
        self._status = grown_zeros(self._status)
        self._degraded = grown_zeros(self._degraded)
        self._retries = grown_zeros(self._retries)
        self._attempts = grown_zeros(self._attempts)
        self._hedged = grown_zeros(self._hedged)
        self._deadline = grown_zeros(self._deadline)
        self._stack_cols = {key: grown(col) for key, col in self._stack_cols.items()}
        self._shard_cpu_cols = {
            key: grown_zeros(col) for key, col in self._shard_cpu_cols.items()
        }
        self._shard_op_cols = {
            key: grown_zeros(col) for key, col in self._shard_op_cols.items()
        }

    def _shard_column(self, cols: dict[int, np.ndarray], shard: int) -> np.ndarray:
        col = cols.get(shard)
        if col is None:
            col = cols[shard] = np.zeros(len(self._e2e))
        return col

    def add(
        self,
        attribution: RequestAttribution,
        workload: int = 0,
        degraded: int = 0,
        retries: int = 0,
        attempts: int = 0,
        hedged: int = 0,
        deadline_exceeded: int = 0,
    ) -> None:
        """Append one completed request's attribution."""
        index = self._count
        if index == len(self._e2e):
            self._grow(2 * index)
        self.attributions.append(attribution)
        self._e2e[index] = attribution.e2e
        self._cpu[index] = attribution.cpu_total
        self._workload[index] = workload
        self._rid[index] = attribution.request_id
        if degraded or retries:
            self._status[index] = 1 if degraded else 0
            self._degraded[index] = degraded
            self._retries[index] = retries
        if attempts or hedged or deadline_exceeded:
            self._attempts[index] = attempts
            self._hedged[index] = hedged
            self._deadline[index] = deadline_exceeded
        cols = self._stack_cols
        for bucket, value in attribution.latency_stack.items():
            cols["latency", bucket][index] = value
        for bucket, value in attribution.embedded_stack.items():
            cols["embedded", bucket][index] = value
        for bucket, value in attribution.cpu_stack.items():
            cols["cpu", bucket][index] = value
        for shard, value in attribution.per_shard_cpu.items():
            self._shard_column(self._shard_cpu_cols, shard)[index] = value
        for shard, value in attribution.per_shard_op_time.items():
            self._shard_column(self._shard_op_cols, shard)[index] = value
        self._count = index + 1

    def __len__(self) -> int:
        return self._count

    # -- columnar accessors (no per-access rebuild) -----------------------
    @property
    def e2e(self) -> np.ndarray:
        return self._e2e[: self._count]

    @property
    def cpu(self) -> np.ndarray:
        return self._cpu[: self._count]

    # -- chaos columns (both trace modes) ----------------------------------
    @property
    def request_ids(self) -> np.ndarray:
        """Per-row request id, in completion order.  Under fault injection
        completion order diverges from arrival order, and this column is
        what maps a row back to its arrival time (availability timelines
        index ``arrival_times[request_ids]``)."""
        return self._rid[: self._count]

    @property
    def status(self) -> np.ndarray:
        """Per-request outcome: 0 = full response, 1 = degraded (at least
        one sparse RPC found no live replica and the request was served
        dense-only for that net).  All zeros on healthy runs."""
        return self._status[: self._count]

    @property
    def degraded(self) -> np.ndarray:
        """Per-request count of degraded (dense-only) sparse RPCs."""
        return self._degraded[: self._count]

    @property
    def retries(self) -> np.ndarray:
        """Per-request count of RPC failovers (dead host -> live replica),
        including mid-service aborts."""
        return self._retries[: self._count]

    # -- resilience columns (both trace modes) -----------------------------
    @property
    def attempts(self) -> np.ndarray:
        """Per-request count of policy-issued RPC attempts (first sends,
        hedges, and timeout retries).  All zeros without an active
        :class:`~repro.resilience.ResiliencePolicy`."""
        return self._attempts[: self._count]

    @property
    def hedged(self) -> np.ndarray:
        """Per-request count of hedged (speculative duplicate) attempts
        actually issued."""
        return self._hedged[: self._count]

    @property
    def deadline_exceeded(self) -> np.ndarray:
        """Per-request flag: 1 when the request completed past the
        policy's deadline."""
        return self._deadline[: self._count]

    def stack_columns(self, kind: str) -> dict[str, np.ndarray]:
        """One array per bucket for ``kind`` in {latency, embedded, cpu}."""
        return {
            bucket: self._stack_cols[kind, bucket][: self._count]
            for bucket in self._COLUMN_BUCKETS[kind]
        }

    # -- per-workload views ------------------------------------------------
    @property
    def workloads(self) -> np.ndarray:
        """Per-request workload index (into ``workload_labels``), in
        completion order -- all zeros for single-workload runs."""
        return self._workload[: self._count]

    def workload_mask(self, label: str) -> np.ndarray:
        """Boolean mask selecting one workload's requests."""
        return self.workloads == self.workload_labels.index(label)

    def split_by_workload(self, values: np.ndarray) -> dict[str, np.ndarray]:
        """Split any per-request column into ``{workload label: values}``."""
        workloads = self.workloads
        return {
            label: values[workloads == index]
            for index, label in enumerate(self.workload_labels)
        }

    def per_workload_e2e(self) -> dict[str, np.ndarray]:
        """E2E latency split by workload (the mix-figure accessor)."""
        return self.split_by_workload(self.e2e)

    @property
    def embedded_totals(self) -> np.ndarray:
        """Per-request embedded-portion totals (sum of embedded buckets)."""
        columns = self.stack_columns("embedded")
        total = np.zeros(self._count)
        for column in columns.values():
            total += column
        return total

    # -- row-oriented views (compatibility with pre-columnar callers) -----
    def _stacks(self, kind: str) -> list[dict[str, float]]:
        columns = self.stack_columns(kind)
        buckets = self._COLUMN_BUCKETS[kind]
        return [
            {bucket: float(columns[bucket][i]) for bucket in buckets}
            for i in range(self._count)
        ]

    def latency_stacks(self) -> list[dict[str, float]]:
        return self._stacks("latency")

    def embedded_stacks(self) -> list[dict[str, float]]:
        return self._stacks("embedded")

    def cpu_stacks(self) -> list[dict[str, float]]:
        return self._stacks("cpu")

    def adopt_aggregate(self, tracer: AggregatingTracer) -> None:
        """Take over an :class:`AggregatingTracer`'s columnar output.

        The tracer attributed every completed request straight into the
        same column layout this class preallocates, so adoption is a
        pointer handoff -- no per-request dataclasses were ever built.
        ``attributions`` stays empty; the per-shard demand columns are
        adopted too, so :meth:`mean_cpu_by_shard` and
        :meth:`mean_per_shard_op_time` work identically in both trace
        modes (only the per-(shard, net) breakdown still needs FULL).
        """
        (
            count, e2e, cpu, stack_cols, workload, shard_cpu, shard_op,
            rid, status, degraded, retries, attempts, hedged, deadline,
        ) = tracer.export_columns()
        if set(stack_cols) != set(self._stack_cols):
            raise ValueError("aggregate tracer columns do not match RunResult layout")
        self._count = count
        self._e2e = e2e
        self._cpu = cpu
        self._workload = workload
        self._stack_cols = stack_cols
        self._shard_cpu_cols = shard_cpu
        self._shard_op_cols = shard_op
        self._rid = rid
        self._status = status
        self._degraded = degraded
        self._retries = retries
        self._attempts = attempts
        self._hedged = hedged
        self._deadline = deadline

    # -- per-shard demand (both trace modes) -------------------------------
    def _mean_shard_columns(
        self, cols: dict[int, np.ndarray], workload: str | None
    ) -> dict[int, float]:
        """Per-shard column means over completed requests, sorted by shard.

        Sums are strictly sequential in completion order (``np.cumsum``),
        reproducing the historical per-attribution Python accumulation
        bit-for-bit; untouched requests contribute exact ``+0.0`` terms,
        which never perturb a float sum.
        """
        count = self._count
        if count == 0 or not cols:
            return {}
        if workload is None:
            return {
                shard: float(np.cumsum(cols[shard][:count])[-1]) / count
                for shard in sorted(cols)
            }
        mask = self.workload_mask(workload)
        selected = int(np.count_nonzero(mask))
        if selected == 0:
            return {}
        return {
            shard: float(np.cumsum(cols[shard][:count][mask])[-1]) / selected
            for shard in sorted(cols)
        }

    def mean_cpu_by_shard(self, workload: str | None = None) -> dict[int, float]:
        """Mean per-request CPU-seconds by shard (``MAIN_SHARD`` = -1).

        The replication planner's demand signal, available in FULL *and*
        AGGREGATE trace modes.  With ``workload`` set, only that tenant's
        requests (label column) are averaged -- the per-tenant demand of a
        co-located mix.  ``{}`` when no matching request completed.
        """
        return self._mean_shard_columns(self._shard_cpu_cols, workload)

    def mean_per_shard_op_time(self, workload: str | None = None) -> dict[int, float]:
        """Mean per-shard sparse-operator time (both trace modes); ``{}``
        when no matching request completed."""
        return self._mean_shard_columns(self._shard_op_cols, workload)

    def mean_per_shard_net_op_time(self) -> dict[tuple[int, str], float]:
        """Mean per-(shard, net) operator time; ``{}`` without attributions
        (zero completed requests, or AGGREGATE trace mode -- the one
        breakdown that still requires retained FULL attributions)."""
        if not self.attributions:
            return {}
        totals: dict[tuple[int, str], float] = {}
        for attribution in self.attributions:
            for key, value in attribution.per_shard_net_op_time.items():
                totals[key] = totals.get(key, 0.0) + value
        return {key: v / len(self.attributions) for key, v in sorted(totals.items())}


def run_configuration(
    model: ModelConfig,
    plan: ShardingPlan,
    requests: list[Request],
    serving: ServingConfig | None = None,
    schedule: ReplaySchedule | None = None,
) -> RunResult:
    """Simulate one configuration and attribute every request.

    In ``TraceMode.FULL`` every completed request's spans are popped and
    attributed into a retained :class:`RequestAttribution`; in
    ``TraceMode.AGGREGATE`` the tracer attributes bucket sums straight
    into the columnar arrays and the result adopts them wholesale --
    identical columns, no span or dataclass retention.

    ``serving.kernel == "vectorized"`` dispatches eligible runs (serial
    closed-loop, chaos-free, AGGREGATE) to the columnar replay engine
    (:func:`repro.serving.columnar.run_vectorized`) -- bit-identical
    columns, no event loop; ineligible runs fall back to the batched
    kernel with the reason recorded on ``RunResult.kernel_fallback``.
    """
    schedule = schedule or ReplaySchedule.serial()
    serving = serving or ServingConfig()
    kernel_fallback: str | None = None
    if serving.kernel == "vectorized":
        from repro.serving.columnar import run_vectorized, vectorized_ineligibility

        kernel_fallback = vectorized_ineligibility(serving, schedule)
        if kernel_fallback is None:
            collector, cluster = run_vectorized(
                model, plan, requests, serving, default_chunk_size()
            )
            result = RunResult(
                model_name=model.name,
                label=plan.label,
                plan=plan,
                expected_requests=0,
            )
            result.adopt_aggregate(collector)
            result.kernel_used = "vectorized"
            result.chaos_timeline = cluster.chaos_timeline
            return result
        serving = serving.with_kernel("batched")
    aggregate = serving.trace_mode is TraceMode.AGGREGATE
    cluster = ClusterSimulation(
        model, plan, serving,
        tracer=AggregatingTracer(expected_requests=len(requests)) if aggregate else None,
    )
    result = RunResult(
        model_name=model.name,
        label=plan.label,
        plan=plan,
        # In aggregate mode the tracer owns the (right-sized) columns and
        # the result adopts them, so don't preallocate a second set here.
        expected_requests=0 if aggregate else len(requests),
    )

    tracer = cluster.tracer
    chaos_flags = cluster.chaos_flags
    res_flags = cluster.resilience_flags
    if isinstance(tracer, AggregatingTracer):
        tracer.chaos_flags = chaos_flags
        tracer.resilience_flags = res_flags
        cluster.on_complete = tracer.finalize_request
    elif chaos_flags is None and res_flags is None:
        def on_complete(request_id: int) -> None:
            result.add(attribute_request(tracer.pop_request(request_id)))

        cluster.on_complete = on_complete
    else:
        def on_complete(request_id: int) -> None:
            flags = chaos_flags.get(request_id) if chaos_flags else None
            rflags = res_flags.get(request_id) if res_flags else None
            result.add(
                attribute_request(tracer.pop_request(request_id)),
                degraded=flags[0] if flags else 0,
                retries=flags[1] if flags else 0,
                attempts=rflags[0] if rflags else 0,
                hedged=rflags[1] if rflags else 0,
                deadline_exceeded=rflags[2] if rflags else 0,
            )

        cluster.on_complete = on_complete
    if schedule.mode is ReplayMode.SERIAL:
        cluster.run_serial(requests)
    else:
        cluster.run_open_loop(requests, schedule)
    if isinstance(tracer, AggregatingTracer):
        result.adopt_aggregate(tracer)
    result.kernel_used = serving.kernel
    result.kernel_fallback = kernel_fallback
    result.incomplete_requests = tuple(cluster.dropped_requests)
    result.chaos_timeline = cluster.chaos_timeline
    result.resilience_stats = cluster.resilience_stats
    result.aborted_rpcs = cluster.chaos_aborted
    return result


@dataclass(frozen=True)
class SuiteSettings:
    """Shared settings for a paper-style sweep over configurations."""

    num_requests: int = 0  # 0 -> default_num_requests()
    request_seed: int = 3
    pooling_requests: int = 1000
    pooling_seed: int = 42
    serving: ServingConfig = field(default_factory=ServingConfig)
    schedule: ReplaySchedule = field(default_factory=ReplaySchedule.serial)
    trace_mode: TraceMode | None = None
    """Overrides ``serving.trace_mode`` when set; None keeps it."""

    kernel: str | None = None
    """Overrides ``serving.kernel`` when set (one of
    :data:`repro.simulation.engine.KERNELS`); None keeps it.  Both
    kernels replay bit-identical results (see
    ``tests/test_kernel_equivalence.py``); ``"batched"`` trades the
    reference event loop for the deque-merged one."""

    arrivals: ArrivalProcess | None = None
    """Overrides ``schedule`` with any workload-subsystem arrival process
    (diurnal, MMPP, constant-rate, ...) when set; None keeps the
    schedule.  The classic serial / fixed-QPS spellings stay on
    ``schedule`` and replay byte-identical streams either way.  With a
    timed process set, request timestamps are the arrival times
    themselves (matching ``Workload.sample``), so the generator's
    diurnal request-size modulation tracks the arrival curve instead of
    the default 5-day linspace window."""

    def resolved_requests(self) -> int:
        return self.num_requests or default_num_requests()

    def resolved_serving(self) -> ServingConfig:
        """The serving config with the suite-level trace-mode and kernel
        overrides applied."""
        serving = self.serving
        if self.trace_mode is not None and self.trace_mode is not serving.trace_mode:
            serving = serving.with_trace_mode(self.trace_mode)
        if self.kernel is not None and self.kernel != serving.kernel:
            serving = serving.with_kernel(self.kernel)
        return serving

    def resolved_schedule(self) -> ReplaySchedule:
        """The replay schedule, with ``arrivals`` applied when set."""
        if self.arrivals is None:
            return self.schedule
        return ReplaySchedule.from_arrivals(self.arrivals)


def suite_requests(model: ModelConfig, settings: SuiteSettings) -> list[Request]:
    generator = RequestGenerator(model, seed=settings.request_seed)
    count = settings.resolved_requests()
    if settings.arrivals is not None:
        times = settings.arrivals.arrival_times(count)
        if times is not None:
            # Timed arrival process: timestamps are the arrival times, so
            # the diurnal size modulation tracks the arrival curve
            # (Workload.sample semantics).  Serial arrivals fall through
            # to the classic evenly-sampled window.
            return generator.generate_batch(np.asarray(times, dtype=np.float64))
    return generator.generate_many(count)


def run_suite(
    model: ModelConfig,
    settings: SuiteSettings | None = None,
    configurations: tuple[ShardingConfiguration, ...] | None = None,
) -> dict[str, RunResult]:
    """Run the paper's configuration matrix for one model.

    Every configuration replays the *same* request sample (the paper's
    replayer preprocesses and caches requests before sending).
    """
    settings = settings or SuiteSettings()
    configurations = configurations or paper_configurations(model.name)
    requests = suite_requests(model, settings)
    pooling = estimate_pooling_factors(
        model, num_requests=settings.pooling_requests, seed=settings.pooling_seed
    )
    serving = settings.resolved_serving()
    schedule = settings.resolved_schedule()
    results: dict[str, RunResult] = {}
    for configuration in configurations:
        plan = build_plan(model, configuration, pooling)
        results[plan.label] = run_configuration(
            model, plan, requests, serving, schedule
        )
    return results


# -- multi-model workload mixes ----------------------------------------------
def run_mix_configuration(
    mix: "WorkloadMix",
    plans: list[ShardingPlan],
    stream: "MixedStream",
    serving: ServingConfig | None = None,
    label: str | None = None,
) -> RunResult:
    """Simulate one co-located deployment of a workload mix.

    ``plans[w]`` shards workload ``w``'s model; all tenants share the
    simulated hosts (``ClusterSimulation.colocated``), so the mix's
    queueing contention is simulated.  The returned :class:`RunResult`
    carries a per-workload label column in completion order -- filled by
    the attribution hook in FULL mode and by the aggregating tracer in
    AGGREGATE mode, bit-identically (``stream.workload_ids`` is indexed
    by request id either way, since merged ids are stream positions).
    """
    if len(plans) != len(mix.workloads):
        raise ValueError(
            f"got {len(plans)} plans for {len(mix.workloads)} workloads"
        )
    serving = serving or ServingConfig()
    kernel_fallback: str | None = None
    if serving.kernel == "vectorized":
        # Co-located tenants share host queues, so per-request costs are
        # no longer closed-form -- the mix path always takes the batched
        # kernel and records why.
        from repro.serving.columnar import REASON_MIX

        kernel_fallback = REASON_MIX
        serving = serving.with_kernel("batched")
    aggregate = serving.trace_mode is TraceMode.AGGREGATE
    cluster = ClusterSimulation.colocated(
        [(workload.model, plan) for workload, plan in zip(mix.workloads, plans)],
        serving,
        tracer=AggregatingTracer(expected_requests=len(stream)) if aggregate else None,
    )
    result = RunResult(
        model_name="+".join(workload.model.name for workload in mix.workloads),
        label=label or " + ".join(plan.label for plan in plans),
        plan=plans[0],
        expected_requests=0 if aggregate else len(stream),
        workload_labels=mix.labels(),
        plans=plans,
    )
    workload_ids = stream.workload_ids
    tracer = cluster.tracer
    chaos_flags = cluster.chaos_flags
    res_flags = cluster.resilience_flags
    if isinstance(tracer, AggregatingTracer):
        tracer.workload_ids = workload_ids
        tracer.chaos_flags = chaos_flags
        tracer.resilience_flags = res_flags
        cluster.on_complete = tracer.finalize_request
    elif chaos_flags is None and res_flags is None:
        def on_complete(request_id: int) -> None:
            result.add(
                attribute_request(tracer.pop_request(request_id)),
                workload=int(workload_ids[request_id]),
            )

        cluster.on_complete = on_complete
    else:
        def on_complete(request_id: int) -> None:
            flags = chaos_flags.get(request_id) if chaos_flags else None
            rflags = res_flags.get(request_id) if res_flags else None
            result.add(
                attribute_request(tracer.pop_request(request_id)),
                workload=int(workload_ids[request_id]),
                degraded=flags[0] if flags else 0,
                retries=flags[1] if flags else 0,
                attempts=rflags[0] if rflags else 0,
                hedged=rflags[1] if rflags else 0,
                deadline_exceeded=rflags[2] if rflags else 0,
            )

        cluster.on_complete = on_complete
    cluster.run_stream(stream)
    if isinstance(tracer, AggregatingTracer):
        result.adopt_aggregate(tracer)
    result.kernel_used = serving.kernel
    result.kernel_fallback = kernel_fallback
    result.incomplete_requests = tuple(cluster.dropped_requests)
    result.chaos_timeline = cluster.chaos_timeline
    result.resilience_stats = cluster.resilience_stats
    result.aborted_rpcs = cluster.chaos_aborted
    return result


def mix_stream(mix: "WorkloadMix", settings: SuiteSettings) -> "MixedStream":
    """Sample a mix's merged request stream once per sweep (the mix-side
    analogue of :func:`suite_requests`)."""
    return mix.sample(settings.resolved_requests())


def _mix_sweep_context(
    mix: "WorkloadMix",
    settings: SuiteSettings | None,
    configurations: tuple[ShardingConfiguration, ...] | None,
):
    """Shared sweep preamble of the serial and parallel mix runners.

    One definition on purpose: the serial == parallel identity holds only
    while both runners default configurations, sample the stream, and
    estimate poolings identically.
    """
    settings = settings or SuiteSettings()
    configurations = configurations or mix_configurations(
        workload.model.name for workload in mix.workloads
    )
    stream = mix_stream(mix, settings)
    poolings = [
        estimate_pooling_factors(
            workload.model,
            num_requests=settings.pooling_requests,
            seed=settings.pooling_seed,
        )
        for workload in mix.workloads
    ]
    return configurations, stream, poolings, settings.resolved_serving()


def run_mix_suite(
    mix: "WorkloadMix",
    settings: SuiteSettings | None = None,
    configurations: tuple[ShardingConfiguration, ...] | None = None,
) -> dict[str, RunResult]:
    """Run a configuration sweep for a co-located workload mix.

    Each configuration is applied to *every* workload's model (so it must
    be valid for all of them); every configuration replays the same
    merged stream, mirroring :func:`run_suite`.  ``settings.num_requests``
    is the per-workload request count.
    """
    configurations, stream, poolings, serving = _mix_sweep_context(
        mix, settings, configurations
    )
    results: dict[str, RunResult] = {}
    for configuration in configurations:
        plans = [
            build_plan(workload.model, configuration, pooling)
            for workload, pooling in zip(mix.workloads, poolings)
        ]
        results[configuration.label] = run_mix_configuration(
            mix, plans, stream, serving, label=configuration.label
        )
    return results

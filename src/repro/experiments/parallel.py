"""Parallel configuration-sweep runner.

A paper-style suite is embarrassingly parallel across its sharding
configurations: every configuration replays the *same* cached request
sample against an independently seeded cluster, so the simulations share
no mutable state.  :func:`run_suite_parallel` fans the configuration
matrix out over a ``multiprocessing`` pool and merges the per-process
:class:`~repro.experiments.runner.RunResult` objects back into the same
``{label: RunResult}`` mapping :func:`~repro.experiments.runner.run_suite`
returns.

Determinism: requests are generated once in the parent from
``settings.request_seed``; every cluster substream is derived from
``(serving.seed, ..., model.name, plan.label)``, i.e. per-configuration
seeds are a pure function of the configuration, never of scheduling.  A
parallel sweep is therefore byte-identical to a serial one for the same
settings (regression-tested in ``tests/test_fastpath_determinism.py``).
The kernel selector composes: with ``settings.kernel = "vectorized"``
each worker process replays its configuration through the columnar
fast path (or its recorded fallback), so a parallel vectorized sweep is
bit-identical to the serial vectorized sweep -- and to the reference
kernel (``tests/test_kernel_equivalence.py``).

:func:`run_cluster_tasks` generalizes the fan-out from "one process per
sharding configuration" to "one process per simulated cluster": any mix
of independent replays -- a planner's candidate simulations, an
availability sweep's healthy baseline plus its per-replica-count faulted
replays -- can share a single pool, so multi-stage searches saturate a
big host instead of serializing between stages.
"""

from __future__ import annotations

import multiprocessing
import os
import sys

from repro.experiments.configs import (
    ShardingConfiguration,
    build_plan,
    paper_configurations,
)
from repro.experiments.runner import (
    RunResult,
    SuiteSettings,
    _mix_sweep_context,
    run_configuration,
    run_mix_configuration,
    suite_requests,
)
from repro.models.config import ModelConfig
from repro.sharding.pooling import estimate_pooling_factors
from repro.workloads.workload import WorkloadMix

#: Environment knob: worker-process cap for parallel sweeps.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def default_workers() -> int:
    """Worker count: ``REPRO_SWEEP_WORKERS`` if set, else the CPU count."""
    configured = os.environ.get(WORKERS_ENV)
    if configured is not None:
        return max(1, int(configured))
    return max(1, os.cpu_count() or 1)


#: Per-worker sweep context: the shared (model, pooling, requests, serving,
#: schedule) tuple is shipped once per worker via the pool initializer, so
#: per-task payloads are just the configuration -- not a re-pickle of the
#: whole request sample for every configuration.
_WORKER_CONTEXT: tuple | None = None


def _init_worker(context: tuple | None) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_one(configuration: ShardingConfiguration) -> tuple[str, RunResult]:
    """Worker body: build one plan and simulate it (also used in-process)."""
    assert _WORKER_CONTEXT is not None
    model, pooling, requests, serving, schedule = _WORKER_CONTEXT
    plan = build_plan(model, configuration, pooling)
    result = run_configuration(model, plan, requests, serving, schedule)
    return plan.label, result


def _run_one_mix(configuration: ShardingConfiguration) -> tuple[str, RunResult]:
    """Worker body for mix sweeps: shard every tenant, simulate co-located."""
    assert _WORKER_CONTEXT is not None
    mix, poolings, stream, serving = _WORKER_CONTEXT
    plans = [
        build_plan(workload.model, configuration, pooling)
        for workload, pooling in zip(mix.workloads, poolings)
    ]
    result = run_mix_configuration(
        mix, plans, stream, serving, label=configuration.label
    )
    return configuration.label, result


def run_suite_parallel(
    model: ModelConfig,
    settings: SuiteSettings | None = None,
    configurations: tuple[ShardingConfiguration, ...] | None = None,
    max_workers: int | None = None,
) -> dict[str, RunResult]:
    """Run the paper's configuration matrix across worker processes.

    Drop-in replacement for :func:`~repro.experiments.runner.run_suite`
    with identical output for identical settings.  With one usable core
    (or ``max_workers=1``) the sweep runs in-process, skipping pool
    setup and payload pickling entirely.
    """
    settings = settings or SuiteSettings()
    configurations = configurations or paper_configurations(model.name)
    requests = suite_requests(model, settings)
    pooling = estimate_pooling_factors(
        model, num_requests=settings.pooling_requests, seed=settings.pooling_seed
    )
    context = (
        model, pooling, requests,
        settings.resolved_serving(), settings.resolved_schedule(),
    )
    return _fan_out(_run_one, context, configurations, max_workers)


def run_mix_suite_parallel(
    mix: WorkloadMix,
    settings: SuiteSettings | None = None,
    configurations: tuple[ShardingConfiguration, ...] | None = None,
    max_workers: int | None = None,
) -> dict[str, RunResult]:
    """Parallel counterpart of :func:`~repro.experiments.runner.run_mix_suite`.

    The merged stream is sampled once in the parent and shipped to every
    worker; per-configuration cluster seeds are pure functions of the
    tenant list, so the parallel mix sweep is byte-identical to the
    serial one.
    """
    configurations, stream, poolings, serving = _mix_sweep_context(
        mix, settings, configurations
    )
    context = (mix, poolings, stream, serving)
    return _fan_out(_run_one_mix, context, configurations, max_workers)


def _run_task(task):
    """Pool dispatcher for heterogeneous tasks: ``(fn, item) -> fn(item)``."""
    fn, item = task
    return fn(item)


def run_cluster_tasks(
    tasks,
    context: tuple,
    max_workers: int | None = None,
) -> list:
    """Fan heterogeneous cluster replays out over one shared worker pool.

    ``tasks`` is a sequence of ``(fn, item)`` pairs; each ``fn`` must be
    a module-level worker body (pickled by reference) that reads the
    shared ``context`` from :data:`_WORKER_CONTEXT` and takes the small
    per-task ``item`` as its only argument.  Results come back in task
    order.  With one usable worker (or ``max_workers=1``) every task
    runs in-process with the context installed, so a serial run is the
    exact same code path minus the pool -- the byte-identity lever every
    sweep in this repo leans on.

    This is the shard-level parallelism primitive: one process per
    *simulated cluster*, not just per sharding configuration.  A
    capacity-planner search, an availability sweep's healthy baseline,
    and its per-replica-count faulted replays are all independent
    cluster simulations, so they can share one pool and saturate a big
    host together instead of serializing between the stages (see
    :func:`repro.chaos.experiment.availability_sweep`).
    """
    tasks = list(tasks)
    workers = min(
        max_workers if max_workers is not None else default_workers(),
        len(tasks),
    )
    if workers <= 1:
        _init_worker(context)
        try:
            return [fn(item) for fn, item in tasks]
        finally:
            _init_worker(None)
    # fork is the cheap path (workers inherit the context for free)
    # but is only reliably safe on Linux; macOS numpy backends can
    # deadlock in forked children, so use the platform default there.
    if sys.platform == "linux":
        mp_context = multiprocessing.get_context("fork")
    else:
        mp_context = multiprocessing.get_context()
    with mp_context.Pool(
        processes=workers, initializer=_init_worker, initargs=(context,)
    ) as pool:
        return pool.map(_run_task, tasks, chunksize=1)


def _fan_out(
    run_one,
    context: tuple,
    configurations: tuple[ShardingConfiguration, ...],
    max_workers: int | None,
) -> dict[str, RunResult]:
    """Map configurations over a worker pool (or in-process for one worker)."""
    pairs = run_cluster_tasks(
        [(run_one, configuration) for configuration in configurations],
        context,
        max_workers,
    )
    # dict() preserves configuration order: pool.map returns in input order.
    return dict(pairs)

"""Parallel configuration-sweep runner.

A paper-style suite is embarrassingly parallel across its sharding
configurations: every configuration replays the *same* cached request
sample against an independently seeded cluster, so the simulations share
no mutable state.  :func:`run_suite_parallel` fans the configuration
matrix out over a ``multiprocessing`` pool and merges the per-process
:class:`~repro.experiments.runner.RunResult` objects back into the same
``{label: RunResult}`` mapping :func:`~repro.experiments.runner.run_suite`
returns.

Determinism: requests are generated once in the parent from
``settings.request_seed``; every cluster substream is derived from
``(serving.seed, ..., model.name, plan.label)``, i.e. per-configuration
seeds are a pure function of the configuration, never of scheduling.  A
parallel sweep is therefore byte-identical to a serial one for the same
settings (regression-tested in ``tests/test_fastpath_determinism.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import sys

from repro.experiments.configs import (
    ShardingConfiguration,
    build_plan,
    paper_configurations,
)
from repro.experiments.runner import (
    RunResult,
    SuiteSettings,
    _mix_sweep_context,
    run_configuration,
    run_mix_configuration,
    suite_requests,
)
from repro.models.config import ModelConfig
from repro.sharding.pooling import estimate_pooling_factors
from repro.workloads.workload import WorkloadMix

#: Environment knob: worker-process cap for parallel sweeps.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def default_workers() -> int:
    """Worker count: ``REPRO_SWEEP_WORKERS`` if set, else the CPU count."""
    configured = os.environ.get(WORKERS_ENV)
    if configured is not None:
        return max(1, int(configured))
    return max(1, os.cpu_count() or 1)


#: Per-worker sweep context: the shared (model, pooling, requests, serving,
#: schedule) tuple is shipped once per worker via the pool initializer, so
#: per-task payloads are just the configuration -- not a re-pickle of the
#: whole request sample for every configuration.
_WORKER_CONTEXT: tuple | None = None


def _init_worker(context: tuple | None) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_one(configuration: ShardingConfiguration) -> tuple[str, RunResult]:
    """Worker body: build one plan and simulate it (also used in-process)."""
    model, pooling, requests, serving, schedule = _WORKER_CONTEXT
    plan = build_plan(model, configuration, pooling)
    result = run_configuration(model, plan, requests, serving, schedule)
    return plan.label, result


def _run_one_mix(configuration: ShardingConfiguration) -> tuple[str, RunResult]:
    """Worker body for mix sweeps: shard every tenant, simulate co-located."""
    mix, poolings, stream, serving = _WORKER_CONTEXT
    plans = [
        build_plan(workload.model, configuration, pooling)
        for workload, pooling in zip(mix.workloads, poolings)
    ]
    result = run_mix_configuration(
        mix, plans, stream, serving, label=configuration.label
    )
    return configuration.label, result


def run_suite_parallel(
    model: ModelConfig,
    settings: SuiteSettings | None = None,
    configurations: tuple[ShardingConfiguration, ...] | None = None,
    max_workers: int | None = None,
) -> dict[str, RunResult]:
    """Run the paper's configuration matrix across worker processes.

    Drop-in replacement for :func:`~repro.experiments.runner.run_suite`
    with identical output for identical settings.  With one usable core
    (or ``max_workers=1``) the sweep runs in-process, skipping pool
    setup and payload pickling entirely.
    """
    settings = settings or SuiteSettings()
    configurations = configurations or paper_configurations(model.name)
    requests = suite_requests(model, settings)
    pooling = estimate_pooling_factors(
        model, num_requests=settings.pooling_requests, seed=settings.pooling_seed
    )
    context = (
        model, pooling, requests,
        settings.resolved_serving(), settings.resolved_schedule(),
    )
    return _fan_out(_run_one, context, configurations, max_workers)


def run_mix_suite_parallel(
    mix: WorkloadMix,
    settings: SuiteSettings | None = None,
    configurations: tuple[ShardingConfiguration, ...] | None = None,
    max_workers: int | None = None,
) -> dict[str, RunResult]:
    """Parallel counterpart of :func:`~repro.experiments.runner.run_mix_suite`.

    The merged stream is sampled once in the parent and shipped to every
    worker; per-configuration cluster seeds are pure functions of the
    tenant list, so the parallel mix sweep is byte-identical to the
    serial one.
    """
    configurations, stream, poolings, serving = _mix_sweep_context(
        mix, settings, configurations
    )
    context = (mix, poolings, stream, serving)
    return _fan_out(_run_one_mix, context, configurations, max_workers)


def _fan_out(
    run_one,
    context: tuple,
    configurations: tuple[ShardingConfiguration, ...],
    max_workers: int | None,
) -> dict[str, RunResult]:
    """Map configurations over a worker pool (or in-process for one worker)."""
    workers = min(
        max_workers if max_workers is not None else default_workers(),
        len(configurations),
    )
    if workers <= 1:
        _init_worker(context)
        try:
            pairs = [run_one(configuration) for configuration in configurations]
        finally:
            _init_worker(None)
    else:
        # fork is the cheap path (workers inherit the context for free)
        # but is only reliably safe on Linux; macOS numpy backends can
        # deadlock in forked children, so use the platform default there.
        if sys.platform == "linux":
            mp_context = multiprocessing.get_context("fork")
        else:
            mp_context = multiprocessing.get_context()
        with mp_context.Pool(
            processes=workers, initializer=_init_worker, initargs=(context,)
        ) as pool:
            pairs = pool.map(run_one, configurations, chunksize=1)
    # dict() preserves configuration order: pool.map returns in input order.
    return dict(pairs)

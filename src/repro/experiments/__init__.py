"""Experiment harness: configuration matrix, runner, figure generators.

Sizing and throughput knobs
---------------------------

* ``REPRO_REQUESTS`` -- request count per configuration in suites and
  benchmarks (default 200 for suites, 150 in ``benchmarks/``).  The
  paper's tail quantiles (P99 overheads, Section VI-B4) need large
  samples to stabilize; the simulation fast path (vectorized request
  generation, the DES plain-delay yield, columnar ``RunResult`` storage)
  exists so raising this knob is cheap.
* ``REPRO_SWEEP_WORKERS`` -- worker processes for
  :func:`~repro.experiments.parallel.run_suite_parallel`, which fans the
  configuration matrix out over ``multiprocessing`` and is byte-identical
  to the serial :func:`~repro.experiments.runner.run_suite`.
* ``SuiteSettings.trace_mode`` / ``ServingConfig.trace_mode`` --
  :class:`~repro.tracing.aggregate.TraceMode.AGGREGATE` runs sweeps with
  the span-free tracer: identical e2e/cpu/stack *and per-shard demand*
  columns, no retained per-request attributions (only the per-(shard,
  net) breakdown of Figure 10 still needs FULL), and markedly faster
  large sweeps.  The CLI exposes it as ``--trace-mode``.
* ``results/BENCH_throughput.json`` -- simulated-requests-per-second
  trajectory (full + aggregate trace modes, plus the co-located diurnal
  ``mix_sweep`` entry), rewritten by
  ``benchmarks/test_perf_throughput.py`` via
  :func:`repro.analysis.bench.record_benchmark`.
* ``SuiteSettings.arrivals`` / ``repro.workloads`` -- any
  :class:`~repro.workloads.arrivals.ArrivalProcess` (diurnal, MMPP,
  constant-rate) can drive a classic suite; multi-model co-location runs
  through :func:`run_mix_suite` / :func:`run_mix_suite_parallel` over a
  :class:`~repro.workloads.workload.WorkloadMix`, producing
  per-workload-labeled :class:`RunResult` columns in both trace modes.
"""

from repro.experiments.configs import (
    PAPER_SHARD_COUNTS,
    ShardingConfiguration,
    build_plan,
    mix_configurations,
    paper_configurations,
)
from repro.experiments.parallel import (
    default_workers,
    run_cluster_tasks,
    run_mix_suite_parallel,
    run_suite_parallel,
)
from repro.experiments.runner import (
    RunResult,
    SuiteSettings,
    default_num_requests,
    mix_stream,
    run_configuration,
    run_mix_configuration,
    run_mix_suite,
    run_suite,
    suite_requests,
)
from repro.experiments import figures
from repro.tracing.aggregate import TraceMode

__all__ = [
    "PAPER_SHARD_COUNTS",
    "RunResult",
    "ShardingConfiguration",
    "SuiteSettings",
    "TraceMode",
    "build_plan",
    "default_num_requests",
    "default_workers",
    "figures",
    "mix_configurations",
    "mix_stream",
    "paper_configurations",
    "run_configuration",
    "run_mix_configuration",
    "run_mix_suite",
    "run_cluster_tasks",
    "run_mix_suite_parallel",
    "run_suite",
    "run_suite_parallel",
    "suite_requests",
]

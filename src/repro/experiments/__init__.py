"""Experiment harness: configuration matrix, runner, figure generators."""

from repro.experiments.configs import (
    PAPER_SHARD_COUNTS,
    ShardingConfiguration,
    build_plan,
    paper_configurations,
)
from repro.experiments.runner import (
    RunResult,
    SuiteSettings,
    default_num_requests,
    run_configuration,
    run_suite,
    suite_requests,
)
from repro.experiments import figures

__all__ = [
    "PAPER_SHARD_COUNTS",
    "RunResult",
    "ShardingConfiguration",
    "SuiteSettings",
    "build_plan",
    "default_num_requests",
    "figures",
    "paper_configurations",
    "run_configuration",
    "run_suite",
    "suite_requests",
]

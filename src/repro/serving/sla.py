"""Deprecated location -- SLA accounting moved to :mod:`repro.planning.sla`.

This shim keeps the historical ``repro.serving.sla`` import path working:
every name re-exported here *is* the object defined in the planning
package (identity-tested), so isinstance checks and equality across the
two spellings keep holding.  Import from :mod:`repro.planning` in new
code.
"""

from repro.planning.sla import SlaPolicy, SlaReport, evaluate_sla, sla_sweep

__all__ = ["SlaPolicy", "SlaReport", "evaluate_sla", "sla_sweep"]

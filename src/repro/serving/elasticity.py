"""Deprecated location -- elasticity analysis moved to
:mod:`repro.planning.elasticity`.

This shim keeps the historical ``repro.serving.elasticity`` import path
working: every name re-exported here *is* the object defined in the
planning package (identity-tested), including the
:func:`~repro.workloads.arrivals.diurnal_qps_curve` re-export that
predates the planning package.  Import from :mod:`repro.planning` in new
code.
"""

from repro.planning.elasticity import (
    ElasticityReport,
    assess_elasticity,
    diurnal_qps_curve,
    dram_hours_saved,
)

__all__ = [
    "ElasticityReport",
    "assess_elasticity",
    "diurnal_qps_curve",
    "dram_hours_saved",
]

"""Diurnal elasticity of serving deployments (paper Section I).

The paper motivates homogeneous-infrastructure serving with elasticity:
"clusters with specialized configurations cannot easily expand resources
during periods of high activity or efficiently shrink resources during
periods of low activity.  This is particularly true of workloads affected
by diurnal traffic patterns."

This module quantifies that argument: given a diurnal QPS curve, size the
deployment hour by hour with the replication planner and compare the
resource-hours (servers, DRAM) of singular versus distributed serving.
Because a singular replica pins the whole model, scaling it with traffic
is memory-expensive; distributed serving scales dense main-shard replicas
elastically while the sparse tier stays nearly constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.models.config import ModelConfig
from repro.serving.replication import ReplicationDemand, plan_replication

# Deprecated alias: the diurnal curve now lives (generalized) in the
# workload subsystem so elasticity sizing and diurnal arrival replay share
# one definition.  Import it from ``repro.workloads`` in new code; this
# re-export keeps the historical spelling working.
from repro.workloads.arrivals import diurnal_qps_curve  # noqa: F401

if TYPE_CHECKING:
    from repro.experiments.runner import RunResult


@dataclass
class ElasticityReport:
    """Resource-hours of one deployment across a diurnal day."""

    label: str
    server_hours: float
    dram_byte_hours: float
    peak_servers: int
    trough_servers: int
    hourly_servers: list[int] = field(default_factory=list)

    @property
    def elasticity_ratio(self) -> float:
        """Peak-to-trough server ratio -- how much the tier breathes."""
        return self.peak_servers / max(1, self.trough_servers)


def assess_elasticity(
    model: ModelConfig,
    result: "RunResult",
    qps_curve: np.ndarray,
    utilization_target: float = 0.6,
    workers_per_replica: int = 32,
) -> ElasticityReport:
    """Size ``result``'s configuration for every hour of the curve."""
    server_hours = 0.0
    dram_byte_hours = 0.0
    hourly = []
    for qps in qps_curve:
        demand = ReplicationDemand(
            qps=float(qps),
            utilization_target=utilization_target,
            workers_per_replica=workers_per_replica,
        )
        deployment = plan_replication(model, result, demand)
        hourly.append(deployment.total_servers)
        server_hours += deployment.total_servers
        dram_byte_hours += deployment.total_memory_bytes
    return ElasticityReport(
        label=result.label,
        server_hours=server_hours,
        dram_byte_hours=dram_byte_hours,
        peak_servers=max(hourly),
        trough_servers=min(hourly),
        hourly_servers=hourly,
    )


def dram_hours_saved(
    singular: ElasticityReport, distributed: ElasticityReport
) -> float:
    """Factor of DRAM-hours the distributed deployment saves over a day."""
    if distributed.dram_byte_hours <= 0:
        raise ValueError("distributed deployment has no DRAM accounted")
    return singular.dram_byte_hours / distributed.dram_byte_hours

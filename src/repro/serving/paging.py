"""Paging-from-disk as an alternative to distributed inference (§I, §X).

The paper lists on-demand paging of embedding tables from SSD as the other
single-server option for over-DRAM models ("this requires fast solid-state
drives to meet latency constraints") and names it as design-space future
work.  This model answers: with only a fraction of each table's *hot
working set* resident in DRAM (frequency-provisioned from an offline
access trace, as in :mod:`repro.analysis.caching`), what does paging do to
the embedded portion of inference latency -- and when does distributed
inference win?

The comparison charges paging only where it differs from singular serving:
cache-miss lookups stall on SSD reads instead of DRAM.  Coverage is
expressed working-set-relative (see the caching module) because embedding
tables are sized for hash-collision avoidance; mapping a byte budget onto
coverage requires a traffic-volume estimate, which
:func:`coverage_for_budget` makes explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.caching import frequency_hit_rate, working_set_rows
from repro.core.types import US
from repro.models.config import ModelConfig
from repro.requests.access_trace import AccessTrace


@dataclass(frozen=True)
class SsdSpec:
    """NVMe read characteristics for the paging tier."""

    read_latency: float = 85 * US
    """Per-read latency for a 4K-class random read on the latency-critical
    path (low queue depth)."""

    reads_per_row: float = 1.0
    """Embedding rows fit one read apiece at typical dims."""


@dataclass
class PagingAssessment:
    """Expected paging behaviour of one model at a working-set coverage."""

    model_name: str
    resident_coverage: float
    hit_rate: float
    expected_misses_per_request: float
    expected_stall_per_request: float

    def meets_budget(self, stall_budget: float) -> bool:
        return self.expected_stall_per_request <= stall_budget


def assess_paging(
    model: ModelConfig,
    trace: AccessTrace,
    resident_coverage: float,
    ssd: SsdSpec | None = None,
) -> PagingAssessment:
    """Evaluate single-server paging with ``resident_coverage`` of each
    table's hot working set in DRAM.

    Every table pins the hottest ``resident_coverage`` fraction of its
    observed working set; remaining accesses stall on SSD reads.  Misses
    on the latency-critical path stall serially (singular execution runs
    SLS ops sequentially), so the expected stall per request is
    ``misses x read latency``.
    """
    ssd = ssd or SsdSpec()
    if not 0.0 < resident_coverage <= 1.0:
        raise ValueError("resident_coverage must be in (0, 1]")
    total_accesses = trace.total_accesses()
    if total_accesses == 0:
        raise ValueError("access trace is empty")

    hits = 0.0
    for name, accesses in trace.accesses.items():
        hits += frequency_hit_rate(
            accesses, trace.num_rows[name], resident_coverage
        ) * len(accesses)
    hit_rate = hits / total_accesses
    misses_per_request = (1.0 - hit_rate) * total_accesses / trace.num_requests
    stall = misses_per_request * ssd.reads_per_row * ssd.read_latency
    return PagingAssessment(
        model_name=model.name,
        resident_coverage=resident_coverage,
        hit_rate=hit_rate,
        expected_misses_per_request=misses_per_request,
        expected_stall_per_request=stall,
    )


def coverage_for_budget(
    model: ModelConfig,
    trace: AccessTrace,
    dram_budget: float,
    traffic_scale: float = 1.0,
) -> float:
    """Working-set coverage a DRAM budget buys.

    ``traffic_scale`` extrapolates the sampled trace to production volume:
    a day of traffic touches ``traffic_scale`` times the distinct rows this
    sample does.  The budget is spread across tables proportionally to
    their (scaled) working-set bytes.
    """
    if dram_budget <= 0 or traffic_scale <= 0:
        raise ValueError("dram_budget and traffic_scale must be positive")
    working_bytes = 0.0
    for name, accesses in trace.accesses.items():
        table = model.table(name)
        rows = min(working_set_rows(accesses) * traffic_scale, table.num_rows)
        working_bytes += rows * table.dtype.row_bytes(table.dim)
    if working_bytes == 0:
        raise ValueError("access trace is empty")
    return min(1.0, dram_budget / working_bytes)


def paging_vs_distributed_stall(
    paging: PagingAssessment, distributed_embedded_added: float
) -> float:
    """How much slower paging's embedded stall is than distribution's.

    ``distributed_embedded_added`` is the measured increase of the
    embedded portion under the distributed configuration (its network +
    shard cost over local SLS).  Values > 1 mean distribution wins.
    """
    if distributed_embedded_added <= 0:
        raise ValueError("distributed_embedded_added must be positive")
    return paging.expected_stall_per_request / distributed_embedded_added

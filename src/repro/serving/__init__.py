"""Serving substrate: simulated servers, services, and replay.

The planners that historically lived here (SLA accounting, replication
sizing, elasticity) moved to :mod:`repro.planning`; their old
``repro.serving.*`` paths and the names below keep working as
deprecation re-exports of the identical objects.
"""

from repro.serving.replication import (
    ReplicationDemand,
    ReplicationPlan,
    memory_efficiency_vs_singular,
    plan_replication,
)
from repro.serving.paging import (
    PagingAssessment,
    SsdSpec,
    assess_paging,
    coverage_for_budget,
    paging_vs_distributed_stall,
)
from repro.serving.simulator import ClusterSimulation, ServingConfig, SimServer
from repro.serving.sla import SlaPolicy, SlaReport, evaluate_sla, sla_sweep
from repro.tracing.aggregate import TraceMode

__all__ = [
    "ClusterSimulation",
    "PagingAssessment",
    "SsdSpec",
    "assess_paging",
    "coverage_for_budget",
    "paging_vs_distributed_stall",
    "ReplicationDemand",
    "ReplicationPlan",
    "ServingConfig",
    "SimServer",
    "SlaPolicy",
    "SlaReport",
    "TraceMode",
    "evaluate_sla",
    "memory_efficiency_vs_singular",
    "plan_replication",
    "sla_sweep",
]

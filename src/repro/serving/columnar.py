"""Columnar plan builder and driver for the ``vectorized`` replay kernel.

This module is the serving-side half of the vectorized fast path (the
evaluator half lives in :mod:`repro.simulation.vectorized`): it decides
*whether* a run is eligible for columnar replay
(:func:`vectorized_ineligibility`), transposes per-request execution
plans into per-chunk numpy columns (:func:`build_chunk_plans`), and
drives whole request lists through the evaluator
(:func:`run_vectorized`).

Bit-exactness
=============

:func:`build_chunk_plans` produces, for every (request, net, batch,
shard-slot), the *same float64 bits* as
:meth:`ClusterSimulation._request_plans
<repro.serving.simulator.ClusterSimulation._request_plans>`: every numpy
expression below keeps the exact left-associated operation order of the
scalar code it mirrors, integer accumulators stay integers until the
same int->float points, and zero-count terms contribute exact ``+0.0``
no-ops precisely where the scalar code *skips* them (adding ``+0.0`` to
a non-negative float accumulator never changes its bits).  Plans with
row-partitioned tables (``TableAssignment.num_parts > 1``) fall back to
calling the scalar plan builder per request -- the partition-split
multinomials are keyed per-(request, table) substreams, so the scalar
path is already vectorization-agnostic -- and only the transposition is
columnar.

Memory flatness
===============

Chunking bounds peak memory at O(chunk_size), not O(num_requests): no
per-request state outlives its chunk, the integer count matrices are
kept in a small bounded LRU (so a multi-configuration sweep over one
request sample reuses them across configurations without holding every
chunk), and -- unlike the scalar builder -- nothing is memoized *on*
the request objects.  Finished cost columns are likewise held in a
bounded LRU (``_PLANS_CACHE``) so repeated replays of the same
(requests, plan, config) triple -- benchmark iterations, figure
regeneration -- skip the build pass; both caches evict oldest-first and
their entry sizes are bounded by ``REPRO_CHUNK``.
"""

from __future__ import annotations

from collections import OrderedDict, deque

import numpy as np

from repro.core.types import US
from repro.models.config import FeatureScope, ModelConfig
from repro.requests.generator import Request, request_payload_bytes
from repro.requests.replayer import ReplayMode, ReplaySchedule
from repro.serving.simulator import ClusterSimulation, ServingConfig, _Tenant
from repro.sharding.plan import ShardingPlan
from repro.simulation.costmodel import ranking_response_bytes
from repro.simulation.vectorized import (
    ChunkPlans,
    NetColumns,
    SweepEvaluator,
    TargetColumns,
    VectorizedColumns,
)
from repro.tracing.aggregate import TraceMode

__all__ = [
    "build_chunk_plans",
    "run_vectorized",
    "vectorized_ineligibility",
]

#: Stable fallback-reason strings, asserted by the gating tests.
REASON_OPEN_LOOP = "open-loop replay (queueing contention)"
REASON_CHAOS = "chaos fault schedule"
REASON_RESILIENCE = "resilience policy active"
REASON_FULL_TRACE = "FULL trace mode (span retention)"
REASON_SHALLOW_MAIN = "main worker pool shallower than max_batches"
REASON_SHALLOW_SPARSE = "sparse worker pool shallower than max_batches"
REASON_MIX = "co-located workload mix"


def vectorized_ineligibility(
    serving: ServingConfig, schedule: ReplaySchedule
) -> str | None:
    """Why this run cannot take the columnar path (``None`` = eligible).

    The vectorized evaluator assumes the serial closed-loop regime the
    paper's figures are produced in: exactly one request in flight (so
    worker pools never queue as long as they are at least
    ``max_batches`` deep), no fault injection, and AGGREGATE tracing
    (the evaluator folds straight into aggregate columns; FULL span
    retention has no columnar equivalent).  Everything here is a pure
    function of the *configuration* -- never of the request sample --
    so the same sweep always takes the same path.
    """
    if schedule.mode is not ReplayMode.SERIAL:
        return REASON_OPEN_LOOP
    if serving.chaos is not None:
        return REASON_CHAOS
    if serving.resilience is not None and not serving.resilience.is_empty:
        # A live policy supervises per-attempt timers on the event loop;
        # an *empty* policy installs no runtime and stays eligible.
        return REASON_RESILIENCE
    if serving.trace_mode is not TraceMode.AGGREGATE:
        return REASON_FULL_TRACE
    if min(serving.service_workers, serving.main_platform.cores) < serving.max_batches:
        return REASON_SHALLOW_MAIN
    if min(serving.service_workers, serving.sparse_platform.cores) < serving.max_batches:
        return REASON_SHALLOW_SPARSE
    return None


# -- chunk-level integer bundles (config-independent, LRU-memoized) -----------
class _ChunkBundle:
    """Per-chunk integer data shared by every configuration of a sweep.

    Everything here is a pure function of (requests, batch policy):
    per-request item counts, per-table per-batch id-count matrices, and
    the batch-count grouping.  Cost columns (which depend on the
    sharding plan and platforms) are rebuilt per configuration from
    these exact integers.
    """

    __slots__ = ("first", "model", "items", "total_ids", "ndraws", "groups")

    def __init__(self, requests: list[Request], model: ModelConfig,
                 size: int, max_batches: int) -> None:
        self.first = requests[0]
        self.model = model
        count = len(requests)
        self.items = np.fromiter(
            (request.num_items for request in requests), np.int64, count
        )
        self.total_ids = np.fromiter(
            (request.total_ids for request in requests), np.int64, count
        )
        self.ndraws = np.fromiter(
            (len(request.draws) for request in requests), np.int64, count
        )
        nb = np.minimum(-(-self.items // size), max_batches)
        by_count: dict[int, list[int]] = {}
        for position, batches in enumerate(nb.tolist()):
            by_count.setdefault(batches, []).append(position)
        #: One entry per distinct batch count B, ascending:
        #: (positions, items_g, edges (Rg, B+1), items_pb (Rg, B),
        #:  counts {table -> (Rg, B) int64; absent tables omitted}).
        self.groups = [
            self._build_group(requests, batches, positions)
            for batches, positions in sorted(by_count.items())
        ]

    def _build_group(
        self, requests: list[Request], batches: int, positions: list[int]
    ):
        group_requests = [requests[position] for position in positions]
        items_g = self.items[np.array(positions, dtype=np.int64)]
        # Batch edges: round(index * num_items / B) is int-exact in
        # float64 (the dividend is far below 2**53) and np.round is the
        # same round-half-even as builtin round().
        index = np.arange(batches, dtype=np.int64)
        left = np.round((items_g[:, None] * index[None, :]) / batches).astype(np.int64)
        edges = np.concatenate([left, items_g[:, None]], axis=1)
        items_pb = edges[:, 1:] - edges[:, :-1]

        # Per-table count matrices, one pass over the chunk's draws.
        # USER-scoped draws broadcast their total over every batch;
        # ITEM-scoped draws slice a per-item cumsum at the batch edges
        # (identical integers to ClusterSimulation._slice_counts).
        user_totals: dict[str, np.ndarray] = {}
        item_rows: dict[str, list[int]] = {}
        item_counts: dict[str, list[np.ndarray]] = {}
        for row, request in enumerate(group_requests):
            for name, draw in request.draws.items():
                if draw.per_item_counts is None:
                    column = user_totals.get(name)
                    if column is None:
                        column = user_totals[name] = np.zeros(
                            len(group_requests), np.int64
                        )
                    column[row] = draw.total_ids
                else:
                    item_rows.setdefault(name, []).append(row)
                    item_counts.setdefault(name, []).append(draw.per_item_counts)
        counts: dict[str, np.ndarray] = {}
        for name, column in user_totals.items():
            counts[name] = np.repeat(column[:, None], batches, axis=1)
        for name, rows in item_rows.items():
            matrix = counts.get(name)
            if matrix is None:
                matrix = counts[name] = np.zeros(
                    (len(group_requests), batches), np.int64
                )
            row_index = np.array(rows, dtype=np.int64)
            lengths = items_g[row_index]
            offsets = np.zeros(len(rows) + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            flat = np.concatenate(
                [np.asarray(c, dtype=np.int64) for c in item_counts[name]]
            )
            prefix = np.zeros(int(offsets[-1]) + 1, dtype=np.int64)
            np.cumsum(flat, out=prefix[1:])
            at_edges = prefix[offsets[:-1, None] + edges[row_index]]
            matrix[row_index] = at_edges[:, 1:] - at_edges[:, :-1]
        return positions, items_g, edges, items_pb, counts


_BUNDLE_CACHE: OrderedDict[tuple, _ChunkBundle] = OrderedDict()
#: Small on purpose: one bundle is O(chunk tables); the cache exists so
#: a multi-configuration sweep reuses the current chunk's integers, not
#: to retain a whole sweep.
_BUNDLE_CACHE_MAX = 4


def _chunk_bundle(
    requests: list[Request], model: ModelConfig, size: int, max_batches: int
) -> _ChunkBundle:
    key = (
        requests[0].request_id, requests[-1].request_id, len(requests),
        model.name, size, max_batches,
    )
    bundle = _BUNDLE_CACHE.get(key)
    # Identity re-check: request ids are only unique per sample, so two
    # sweeps over different samples must not share bundles.
    if bundle is not None and bundle.first is requests[0] and bundle.model is model:
        _BUNDLE_CACHE.move_to_end(key)
        return bundle
    bundle = _ChunkBundle(requests, model, size, max_batches)
    _BUNDLE_CACHE[key] = bundle
    while len(_BUNDLE_CACHE) > _BUNDLE_CACHE_MAX:
        _BUNDLE_CACHE.popitem(last=False)
    return bundle


# -- built-plan cache ---------------------------------------------------------
#: Finished ChunkPlans, keyed per (chunk, model, plan label) with deep
#: verification on hit: the cost columns are a pure function of
#: (requests, plan, serving config), so repeated sweeps over one request
#: sample -- the figures pipeline re-running configurations, benchmark
#: iterations -- skip the columnarization pass entirely.  Entries are
#: evicted LRU; worst-case retention is _PLANS_CACHE_MAX chunks of cost
#: columns (~60 MB each at the default 2048-request chunk on the largest
#: paper configuration), and ``REPRO_CHUNK`` bounds the per-entry size.
_PLANS_CACHE: OrderedDict[tuple, tuple] = OrderedDict()
#: One full paper sweep (11 configurations) plus headroom.
_PLANS_CACHE_MAX = 12


def _cached_chunk_plans(
    sim: ClusterSimulation, tenant: _Tenant, requests: list[Request], build
) -> ChunkPlans:
    key = (
        requests[0].request_id, requests[-1].request_id, len(requests),
        tenant.model.name, tenant.plan.label,
    )
    hit = _PLANS_CACHE.get(key)
    if hit is not None:
        first, plan, config, plans = hit
        # Identity + deep equality: request ids are only unique per
        # sample, plan labels only per sweep, and the cost columns
        # depend on the full serving config -- dataclass equality
        # verifies all of it exactly.
        if (
            first is requests[0]
            and (plan is tenant.plan or plan == tenant.plan)
            and (config is sim.config or config == sim.config)
        ):
            _PLANS_CACHE.move_to_end(key)
            return plans
    plans = build(sim, tenant, requests)
    _PLANS_CACHE[key] = (requests[0], tenant.plan, sim.config, plans)
    while len(_PLANS_CACHE) > _PLANS_CACHE_MAX:
        _PLANS_CACHE.popitem(last=False)
    return plans


# -- columnar plan building ---------------------------------------------------
def _scatter(destination: list, positions: list[int], rows: list) -> None:
    # C-level scatter: map(__setitem__) avoids a Python-level loop over
    # thousands of chunk positions per (slot, field).
    _consume(map(destination.__setitem__, positions, rows))


_consume = deque(maxlen=0).extend


def build_chunk_plans(
    sim: ClusterSimulation, tenant: _Tenant, requests: list[Request]
) -> ChunkPlans:
    """Transpose one chunk's execution plans into evaluator columns.

    Bit-for-bit equal to calling ``sim._request_plans`` per request (see
    the module docstring); requests are grouped by batch count so every
    numpy expression runs over rectangular (request, batch) matrices.
    """
    config = sim.config
    model = tenant.model
    cm = config.cost_model
    size = config.batch_size or model.profile.batch_size
    bundle = _chunk_bundle(requests, model, size, config.max_batches)
    count = len(requests)

    rc_main = config.main_platform.relative_clock
    denom_main = sim._serde_denom_main
    denom_sparse = sim._serde_denom_sparse
    items_f = bundle.items.astype(np.float64)
    payload = (
        256.0
        + model.profile.dense_feature_bytes * items_f
        + 8.0 * bundle.total_ids.astype(np.float64)
        + 24.0 * bundle.ndraws.astype(np.float64)
    )
    head = (
        cm.serde_fixed
        + (cm.serde_per_table * bundle.ndraws.astype(np.float64)) / rc_main
        + payload / denom_main
    )
    # serde_time(tables=0): the per-table term is an exact +0.0 no-op.
    tail = cm.serde_fixed + (64.0 + 8.0 * items_f) / denom_main

    singular = tenant.plan.is_singular
    nb_list = [0] * count
    nets = [NetColumns() for _ in model.nets]
    if not singular:
        for net_index, net_cfg in enumerate(model.nets):
            nets[net_index].targets = [
                TargetColumns(shard.index)
                for shard, _ in tenant.net_routing[net_cfg.name]
            ]
    placeholder: list = [None] * count
    for net_columns in nets:
        # Every position is scattered exactly once (the groups partition
        # the chunk), so plain placeholders beat per-request empties.
        net_columns.overhead = placeholder.copy()
        net_columns.dense = placeholder.copy()
        net_columns.local = placeholder.copy()
        for target in net_columns.targets:
            target.rows = placeholder.copy()

    serde_fixed = cm.serde_fixed
    dispatch_fixed = cm.rpc_dispatch_fixed
    sls_dispatch = cm.sls_dispatch_per_table
    tbl_client = np.asarray(tenant.serde_tbl_client, dtype=np.float64)
    tbl_server = np.asarray(tenant.serde_tbl_server, dtype=np.float64)
    per_id_main = tenant.per_id_main
    per_id_sparse = tenant.per_id_sparse

    for positions, _items_g, _edges, items_pb, counts in bundle.groups:
        batches = items_pb.shape[1]
        for position in positions:
            nb_list[position] = batches
        items_pb_f = items_pb.astype(np.float64)
        for net_index, net_cfg in enumerate(model.nets):
            net_columns = nets[net_index]
            net_tables = model.tables_for_net(net_cfg.name)
            n_net = len(net_tables)
            micros = net_cfg.dense_us_fixed + net_cfg.dense_us_per_item * items_pb_f
            dense = micros * US / rc_main
            _scatter(net_columns.dense, positions, dense.tolist())

            if singular:
                net_columns.singular_overhead = cm.net_overhead(n_net + 12)
                gather = np.zeros(items_pb.shape)
                # Tables outer, batches inner -- the scalar builder's
                # transposed accumulation order; absent tables are
                # skipped identically, zero counts add exact +0.0.
                for table in net_tables:
                    table_counts = counts.get(table.name)
                    if table_counts is None:
                        continue
                    gather += table_counts * per_id_main[table.name]
                local = sls_dispatch * n_net + gather
                _scatter(net_columns.local, positions, local.tolist())
                continue

            n_names = np.zeros(items_pb.shape, np.int64)
            for table in net_tables:
                table_counts = counts.get(table.name)
                if table_counts is None:
                    continue
                n_names += table_counts > 0
            active_targets = np.zeros(items_pb.shape, np.int64)
            for slot, (_shard, pairs) in enumerate(tenant.net_routing[net_cfg.name]):
                ids = np.zeros(items_pb.shape, np.int64)
                ntab = np.zeros(items_pb.shape, np.int64)
                resp_extra = np.zeros(items_pb.shape, np.int64)
                gather = np.zeros(items_pb.shape)
                has_item = np.zeros(items_pb.shape, bool)
                for table, _assignment in pairs:
                    table_counts = counts.get(table.name)
                    if table_counts is None:
                        continue
                    mask = table_counts > 0
                    ids += table_counts
                    ntab += mask
                    gather += table_counts * per_id_sparse[table.name]
                    dim4 = table.dim * 4
                    if table.scope is FeatureScope.ITEM:
                        has_item |= mask
                        resp_extra += mask * (24 + items_pb * dim4)
                    else:
                        resp_extra += mask * (24 + dim4)
                active = ntab > 0
                segments = np.where(has_item, items_pb, 1)
                req_bytes = 64.0 + ids * 8.0 + ntab * (segments * 4.0 + 24.0)
                resp_bytes = 64.0 + resp_extra
                client_tbl = tbl_client[ntab]
                server_tbl = tbl_server[ntab]
                cst = serde_fixed + client_tbl + req_bytes / denom_main + dispatch_fixed
                sdes = serde_fixed + server_tbl + req_bytes / denom_sparse
                sov = cm.net_overhead_fixed + cm.net_overhead_per_op * (ntab + 2)
                slw = sls_dispatch * ntab + gather
                srs = serde_fixed + server_tbl + resp_bytes / denom_sparse
                crd = serde_fixed + client_tbl + resp_bytes / denom_main
                active_targets += active
                target = net_columns.targets[slot]
                # One prebuilt evaluator row per request: stack the nine
                # per-batch cost planes request-major (axis=1 keeps the
                # result C-contiguous) and let a single tolist emit
                # every request's (9, batches) nested list.  The active
                # plane becomes float 0.0/1.0 -- the evaluator only
                # tests its truthiness.
                stacked = np.stack((
                    active, cst, sdes, sov, slw, srs, crd,
                    req_bytes, resp_bytes,
                ), axis=1)
                _scatter(target.rows, positions, stacked.tolist())
            overhead = cm.net_overhead_fixed + cm.net_overhead_per_op * (
                n_net + 12 + active_targets
            )
            overhead = overhead + cm.fill_per_table * (n_net - n_names)
            _scatter(net_columns.overhead, positions, overhead.tolist())

    return ChunkPlans(
        singular,
        [request.request_id for request in requests],
        nb_list,
        head.tolist(),
        tail.tolist(),
        nets,
    )


_COST_FIELDS = ("cst", "sdes", "sov", "slw", "srs", "crd", "reqb", "respb")
_PLAN_FIELDS = (
    "client_ser_total", "server_deser", "server_overhead", "sls_work",
    "server_resp_ser", "client_resp_deser", "req_bytes", "resp_bytes",
)


def _scalar_chunk_plans(
    sim: ClusterSimulation, tenant: _Tenant, requests: list[Request]
) -> ChunkPlans:
    """Per-request scalar fallback for plans with row-partitioned tables.

    The partition-split multinomials are keyed per (request, table)
    substreams inside ``_request_plans``, so building plans one request
    at a time is exactly the reference computation; only the
    transposition into evaluator columns is new.  (Not memory-flat to
    the same degree: ``_request_plans`` memoizes slice counts on the
    request objects, like every scalar-kernel sweep does.)
    """
    model = tenant.model
    cm = sim.config.cost_model
    main_platform = sim.config.main_platform
    names = [net_cfg.name for net_cfg in model.nets]
    singular = tenant.plan.is_singular
    nets = [NetColumns() for _ in names]
    slot_of: list[dict[int, int]] = []
    if not singular:
        for net_index, name in enumerate(names):
            routing = tenant.net_routing[name]
            nets[net_index].targets = [
                TargetColumns(shard.index) for shard, _ in routing
            ]
            slot_of.append(
                {shard.index: slot for slot, (shard, _) in enumerate(routing)}
            )
    rids: list[int] = []
    nb_list: list[int] = []
    heads: list[float] = []
    tails: list[float] = []
    for request in requests:
        batches = sim._batches(tenant, request)
        plans = sim._request_plans(tenant, request, batches)
        num_batches = len(batches)
        rids.append(request.request_id)
        nb_list.append(num_batches)
        heads.append(
            cm.serde_time(
                request_payload_bytes(model, request),
                main_platform,
                tables=len(request.draws),
            )
        )
        tails.append(
            cm.serde_time(ranking_response_bytes(request.num_items), main_platform)
        )
        for net_index, name in enumerate(names):
            net_columns = nets[net_index]
            per_batch = plans[name]
            net_columns.dense.append([plan.dense_total for plan in per_batch])
            if singular:
                net_columns.singular_overhead = per_batch[0].overhead
                net_columns.local.append([plan.local_work for plan in per_batch])
                continue
            net_columns.overhead.append([plan.overhead for plan in per_batch])
            slots = len(net_columns.targets)
            active = [[False] * num_batches for _ in range(slots)]
            columns = {
                field: [[0.0] * num_batches for _ in range(slots)]
                for field in _COST_FIELDS
            }
            for batch_index, plan in enumerate(per_batch):
                for lookup in plan.targets:
                    slot = slot_of[net_index][lookup.shard.index]
                    active[slot][batch_index] = True
                    for field, attr in zip(_COST_FIELDS, _PLAN_FIELDS):
                        columns[field][slot][batch_index] = getattr(lookup, attr)
            for slot in range(slots):
                target = net_columns.targets[slot]
                target.rows.append(
                    (active[slot],)
                    + tuple(columns[field][slot] for field in _COST_FIELDS)
                )
    return ChunkPlans(singular, rids, nb_list, heads, tails, nets)


def _has_partitions(plan: ShardingPlan) -> bool:
    if plan.is_singular:
        return False
    return any(
        assignment.num_parts > 1
        for shard in plan.shards
        for assignment in shard.assignments
    )


# -- driver -------------------------------------------------------------------
def run_vectorized(
    model: ModelConfig,
    plan: ShardingPlan,
    requests: list[Request],
    serving: ServingConfig,
    chunk_size: int,
) -> tuple[VectorizedColumns, ClusterSimulation]:
    """Replay ``requests`` serially through the columnar evaluator.

    Constructs the same :class:`ClusterSimulation` a DES run would (so
    every substream -- clock skews, fabric jitter -- is primed
    identically), then replays chunk by chunk.  The returned collector
    holds the finished aggregate columns (``RunResult.adopt_aggregate``
    consumes it); the cluster is returned for its timeline accessors.
    """
    collector = VectorizedColumns(expected_requests=len(requests))
    cluster = ClusterSimulation(model, plan, serving, tracer=collector)
    tenant = cluster.tenants[0]
    evaluator = SweepEvaluator(
        cluster.fabric,
        cluster.config.main_platform,
        cluster.config.sparse_platform,
        cluster.config.cost_model,
        cluster.main.clock_skew,
        [server.clock_skew for server in cluster.sparse_servers],
        collector,
    )
    build = _scalar_chunk_plans if _has_partitions(plan) else build_chunk_plans
    now = 0.0
    for start in range(0, len(requests), chunk_size):
        chunk = requests[start : start + chunk_size]
        plans = _cached_chunk_plans(cluster, tenant, chunk, build)
        now = evaluator.replay_chunk(plans, now)
    return collector, cluster

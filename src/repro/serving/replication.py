"""Deprecated location -- replication planning moved to
:mod:`repro.planning.replication`.

This shim keeps the historical ``repro.serving.replication`` import path
working: every name re-exported here *is* the object defined in the
planning package (identity-tested).  Import from :mod:`repro.planning`
in new code.
"""

from repro.planning.replication import (
    PerShardDemandError,
    ReplicationDemand,
    ReplicationPlan,
    memory_efficiency_vs_singular,
    plan_replication,
)

__all__ = [
    "PerShardDemandError",
    "ReplicationDemand",
    "ReplicationPlan",
    "memory_efficiency_vs_singular",
    "plan_replication",
]

"""Discrete-event simulation of the distributed inference serving stack.

Faithfully models the serving pipeline of paper Section III on top of the
DES kernel:

* every shard (main + sparse) is a **server** with a Thrift-like service:
  a worker-thread pool (cores resource), an egress NIC serialized at link
  bandwidth, and a skewed wall clock;
* a ranking request arrives at the main shard, is deserialized, split into
  **batches** (Section VI-F), and each batch executes the model's nets
  sequentially: bottom dense ops, then the sparse portion -- local SLS in
  the singular configuration, or asynchronous RPC fan-out to the sparse
  shards of the plan -- then interaction/top dense ops;
* each RPC pays serialization, network (propagation + wire + jitter),
  shard-side service/framework/operator time, and response handling; RPCs
  with no active lookups are skipped entirely, which is why DRM3 touches
  only two shards per request regardless of shard count (Section VI-E1);
* the cross-layer tracer records every instrumented interval, exactly
  like the paper's instrumentation hooks.  ``TraceMode.FULL`` materializes
  spans; ``TraceMode.AGGREGATE`` folds intervals into columnar bucket sums
  span-free (bit-identical results, much cheaper sweeps).

The simulator consumes *count-level* requests (no real ids): all costs are
functions of id counts, table metadata, and bytes.

Multi-model co-location (ROADMAP workload axes): a cluster can host
several (model, plan) *tenants* on shared simulated hosts --
:meth:`ClusterSimulation.colocated` -- with per-tenant execution plans and
shard sets; a merged :class:`~repro.workloads.workload.MixedStream`
replays through :meth:`ClusterSimulation.run_stream`, so cross-model
queueing contention (worker pools, egress NICs) is simulated rather than
post-processed.  Single-tenant construction keeps every historical RNG
substream key and is byte-identical to the pre-tenant implementation.

Fast path: every cost a request will be charged is a pure function of
(request, plan, cost model) -- none depends on simulation time -- so the
per-(batch, net) RPC fan-outs, payload sizes, serde times, and SLS times
are precomputed once per request (:meth:`ClusterSimulation._request_plans`)
instead of being rediscovered inside the DES hot loop.  Precomputation
reproduces the original per-span float-operation order exactly, so the
refactor is byte-identical to the per-batch path it replaced.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

from repro.core.rng import substream
from repro.core.types import OpCategory
from repro.models.config import FeatureScope, ModelConfig, TableConfig
from repro.requests.generator import Request, request_payload_bytes
from repro.requests.replayer import ReplayMode, ReplaySchedule
from repro.sharding.plan import ShardingPlan, ShardSpec
from repro.simulation.costmodel import CostModel, ranking_response_bytes
from repro.simulation.engine import KERNELS, At, BatchedEngine, Engine, Event, make_engine
from repro.simulation.network import Fabric, FabricSpec
from repro.simulation.platform import SC_LARGE, Platform
from repro.tracing.aggregate import AggregatingTracer, TraceMode
from repro.tracing.span import MAIN_SHARD, Layer, Tracer

if TYPE_CHECKING:
    from repro.chaos.faults import FaultSchedule
    from repro.resilience.policy import ResiliencePolicy

_SERDE = Layer.SERDE
_OPERATOR = Layer.OPERATOR
_NET_OVERHEAD = Layer.NET_OVERHEAD
_RPC_CLIENT = Layer.RPC_CLIENT
_EMBEDDED = Layer.EMBEDDED
_BATCH = Layer.BATCH
_SERVICE = Layer.SERVICE
_DENSE = OpCategory.DENSE
_SPARSE = OpCategory.SPARSE


@dataclass(frozen=True)
class ServingConfig:
    """Cluster-level configuration for one simulated experiment."""

    main_platform: Platform = SC_LARGE
    sparse_platform: Platform = SC_LARGE
    cost_model: CostModel = field(default_factory=CostModel)
    fabric_spec: FabricSpec = field(default_factory=FabricSpec)
    seed: int = 0
    service_workers: int = 32
    """Worker threads of one serving instance (a service instance does not
    own the whole machine); batches queue for these workers, which is what
    couples request size to tail latency."""

    batch_size: int | None = None
    """Overrides the model's default batch size; None keeps the default.
    ``with_batch_size(10**9)`` reproduces the paper's one-batch-per-request
    mode (Section VI-F)."""

    max_batches: int = 8
    """Production batching cap: huge requests grow their batch size rather
    than fan out unboundedly, so tail-sized requests are dense-dominated
    (the paper's explanation for P99 overheads being more favorable than
    P50, Section VI-B4)."""

    clock_skew_sigma: float = 0.0
    """Stddev (seconds) of per-server wall-clock skew; trace timestamps are
    stamped with it, and attribution must stay skew-invariant."""

    trace_mode: TraceMode = TraceMode.FULL
    """FULL materializes spans (per-shard breakdowns available);
    AGGREGATE accumulates columnar bucket sums span-free -- identical
    e2e/cpu/stack columns, no retained attributions."""

    chaos: "FaultSchedule | None" = None
    """Optional fault-injection schedule (see :mod:`repro.chaos.faults`).
    ``None`` (the default) runs the healthy path with zero overhead; an
    *empty* schedule exercises the chaos code path but injects nothing
    and replays byte-identical to ``None``."""

    resilience: "ResiliencePolicy | None" = None
    """Optional tail-resilience policy (see :mod:`repro.resilience`):
    per-attempt RPC timeouts, bounded retries with backoff, hedged
    requests, deadlines, and a token-bucket retry budget.  ``None``
    (the default) keeps the historical single-attempt RPC path; an
    *empty* policy installs no runtime and replays byte-identical to
    ``None``."""

    kernel: str = "reference"
    """DES kernel selector (see :data:`repro.simulation.engine.KERNELS`).
    ``"reference"`` is the bit-exact historical event loop; ``"batched"``
    batches same-timestamp scheduling through a FIFO now-queue, grants
    free resources synchronously, and (chaos off) drives the fused
    serving generators; ``"vectorized"`` replays eligible runs (serial
    closed-loop, chaos-free, AGGREGATE tracing) as columnar numpy
    programs with no event loop (:mod:`repro.serving.columnar`) and
    falls back to ``"batched"`` otherwise, recording the reason on
    ``RunResult.kernel_fallback`` -- results are regression-pinned
    bit-identical to the reference kernel on every paper configuration
    (``tests/test_kernel_equivalence.py``)."""

    def __post_init__(self):
        if self.service_workers < 1:
            raise ValueError(
                f"service_workers must be >= 1, got {self.service_workers!r}"
            )
        if self.max_batches < 1:
            raise ValueError(
                f"max_batches must be >= 1, got {self.max_batches!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1 (or None), got {self.batch_size!r}"
            )
        if not float(self.clock_skew_sigma) >= 0.0:  # also rejects NaN
            raise ValueError(
                f"clock_skew_sigma must be non-negative, got "
                f"{self.clock_skew_sigma!r}"
            )
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )

    def with_batch_size(self, batch_size: int | None) -> "ServingConfig":
        return dataclasses.replace(self, batch_size=batch_size)

    def with_trace_mode(self, trace_mode: TraceMode) -> "ServingConfig":
        return dataclasses.replace(self, trace_mode=trace_mode)

    def with_chaos(self, chaos: "FaultSchedule | None") -> "ServingConfig":
        return dataclasses.replace(self, chaos=chaos)

    def with_kernel(self, kernel: str) -> "ServingConfig":
        return dataclasses.replace(self, kernel=kernel)

    def with_resilience(
        self, resilience: "ResiliencePolicy | None"
    ) -> "ServingConfig":
        return dataclasses.replace(self, resilience=resilience)


class SimServer:
    """One server: worker pool, egress link, skewed wall clock."""

    def __init__(
        self,
        name: str,
        platform: Platform,
        engine: Engine,
        workers: int,
        clock_skew: float = 0.0,
        io_threads: int = 4,
    ):
        if workers < 1:
            raise ValueError(
                f"server {name!r}: workers must be >= 1, got {workers!r}"
            )
        if io_threads < 1:
            raise ValueError(
                f"server {name!r}: io_threads must be >= 1, got {io_threads!r}"
            )
        self.name = name
        self.platform = platform
        self.engine = engine
        self.workers = engine.resource(min(workers, platform.cores))
        self.io_threads = engine.resource(io_threads)
        self.clock_skew = clock_skew
        self._egress_free = 0.0

    def wall(self, engine_time: float | None = None) -> float:
        """This server's wall clock (engine time + skew)."""
        at = self.engine.now if engine_time is None else engine_time
        return at + self.clock_skew

    def egress_delay(self, nbytes: float) -> float:
        """Reserve the egress NIC for a message; returns total delay until
        the last byte leaves (queueing behind in-flight messages + wire)."""
        wire = nbytes / self.platform.nic_bandwidth
        start = max(self.engine.now, self._egress_free)
        self._egress_free = start + wire
        return (start - self.engine.now) + wire


@dataclass(frozen=True, slots=True)
class _Batch:
    index: int
    start_item: int
    stop_item: int

    @property
    def items(self) -> int:
        return self.stop_item - self.start_item


class _ShardLookups:
    """One active (batch, net, shard) RPC with all its precomputed costs."""

    __slots__ = (
        "shard",
        "req_bytes",
        "resp_bytes",
        "client_ser_total",
        "server_deser",
        "server_overhead",
        "sls_work",
        "server_resp_ser",
        "client_resp_deser",
    )

    def __init__(self, shard: ShardSpec):
        self.shard = shard


class _NetBatchPlan:
    """Precomputed execution plan for one (request, net, batch)."""

    __slots__ = ("overhead", "dense_total", "targets", "local_work")

    def __init__(self, overhead: float, dense_total: float, targets, local_work: float):
        self.overhead = overhead
        self.dense_total = dense_total
        self.targets = targets
        self.local_work = local_work


class _Tenant:
    """One co-located model's execution context on the shared cluster.

    Holds everything that is a pure function of (model, plan, cost model):
    the per-net RPC routing and the hoisted per-table cost constants.  A
    single-model simulation is simply a cluster with one tenant; the
    shared-host contention of multi-model co-location falls out of the
    servers being owned by the cluster, not the tenant.
    """

    __slots__ = (
        "index",
        "model",
        "plan",
        "net_routing",
        "per_id_main",
        "per_id_sparse",
        "serde_tbl_client",
        "serde_tbl_server",
    )

    def __init__(self, index: int, model: ModelConfig, plan: ShardingPlan, config: ServingConfig):
        self.index = index
        self.model = model
        self.plan = plan

        # Precomputed RPC routing: for each net, the shards holding at
        # least one of its tables, with that net's (table, assignment)
        # pairs.  The per-request plan builder walks this once per request
        # and must not rediscover the placement every time.
        self.net_routing: dict[str, list[tuple[ShardSpec, list]]] = {}
        if not plan.is_singular:
            for net_cfg in model.nets:
                routing = []
                for shard in plan.shards:
                    pairs = [
                        (table, assignment)
                        for assignment in shard.assignments
                        if (table := model.table(assignment.table_name)).net
                        == net_cfg.name
                    ]
                    if pairs:
                        routing.append((shard, pairs))
                self.net_routing[net_cfg.name] = routing

        # Pure per-table / per-message cost constants, hoisted out of the
        # hot loop.  All reproduce the exact float expressions of
        # CostModel.serde_time / sls_time (same association order), so the
        # precomputed plans are bit-identical to computing costs in-line.
        cm = config.cost_model
        main_platform = config.main_platform
        sparse_platform = config.sparse_platform
        self.per_id_main = {
            table.name: cm.sls_per_id(table, main_platform) for table in model.tables
        }
        self.per_id_sparse = {
            table.name: cm.sls_per_id(table, sparse_platform) for table in model.tables
        }
        max_tables = max(
            (len(model.tables_for_net(net.name)) for net in model.nets), default=0
        )
        self.serde_tbl_client = [
            (cm.client_serde_per_table * n) / main_platform.relative_clock
            for n in range(max_tables + 1)
        ]
        self.serde_tbl_server = [
            (cm.serde_per_table * n) / sparse_platform.relative_clock
            for n in range(max_tables + 1)
        ]


class ClusterSimulation:
    """Simulates one deployment: (model+, plan+, serving-config).

    The classic constructor simulates one (model, plan) pair, exactly as
    the paper does.  :meth:`colocated` places several models on the same
    simulated hosts -- one shared main server, and sparse hosts shared by
    shard index across tenants -- so multi-model co-location contention
    (worker queueing, NIC serialization) is *simulated*, not
    post-processed.  Single-tenant behavior, including every RNG
    substream key, is byte-identical to the pre-tenant implementation.
    """

    def __init__(
        self,
        model: ModelConfig,
        plan: ShardingPlan,
        config: ServingConfig | None = None,
        tracer: Tracer | AggregatingTracer | None = None,
    ):
        self._setup([(model, plan)], config, tracer)

    @classmethod
    def colocated(
        cls,
        tenants: Iterable[tuple[ModelConfig, ShardingPlan]],
        config: ServingConfig | None = None,
        tracer: Tracer | AggregatingTracer | None = None,
    ) -> "ClusterSimulation":
        """Build a cluster serving several (model, plan) tenants at once.

        Tenant ``t``'s sparse shard ``i`` is served by shared host
        ``sparse-{i}``; the main (dense) tier is one shared server.  Use
        ``submit(request, tenant=t)`` / :meth:`run_stream` to drive it.
        """
        cluster = cls.__new__(cls)
        cluster._setup(list(tenants), config, tracer)
        return cluster

    def _setup(
        self,
        tenants: list[tuple[ModelConfig, ShardingPlan]],
        config: ServingConfig | None,
        tracer: Tracer | AggregatingTracer | None,
    ) -> None:
        if not tenants:
            raise ValueError("a cluster needs at least one (model, plan) tenant")
        for model, plan in tenants:
            plan.validate(model)
        #: Primary tenant, kept as attributes for the single-model API.
        self.model, self.plan = tenants[0]
        self.config = config or ServingConfig()
        if tracer is not None:
            self.tracer = tracer
        elif self.config.trace_mode is TraceMode.AGGREGATE:
            self.tracer = AggregatingTracer()
        else:
            self.tracer = Tracer()
        #: The single hot-path recording entry point; both tracers share
        #: the ``record_interval`` signature (engine times + server).
        self._record = self.tracer.record_interval
        self.engine = make_engine(self.config.kernel)
        # The fused serving generators require the batched kernel (At
        # yields are cheap there, grants are synchronous) and no chaos:
        # ChaosRuntime.scale_service reads straggler state *at call time*,
        # so fusing a service segment would move mid-segment straggler
        # transitions -- chaos replays use the reference generators on
        # whichever kernel is selected (identical events either way).
        policy = self.config.resilience
        self._fast = (
            self.config.chaos is None
            and (policy is None or policy.is_empty)
            and isinstance(self.engine, BatchedEngine)
        )
        self._rpc_ids = itertools.count()
        # Single-tenant keys are the historical (model, label) pair --
        # streams must stay byte-identical; co-located clusters key on the
        # full tenant list so distinct mixes never share streams.
        if len(tenants) == 1:
            cluster_key: tuple = (self.model.name, self.plan.label)
        else:
            cluster_key = ("colocated",) + tuple(
                f"{model.name}/{plan.label}" for model, plan in tenants
            )
        self._rng = substream(self.config.seed, "cluster", *cluster_key)
        skew_rng = substream(self.config.seed, "clock-skew", *cluster_key)

        def skew() -> float:
            if self.config.clock_skew_sigma == 0.0:
                return 0.0
            return float(skew_rng.normal(0.0, self.config.clock_skew_sigma))

        self.fabric = Fabric(self.config.fabric_spec, seed=self.config.seed)
        io_threads = self.config.cost_model.io_threads
        self.main = SimServer(
            "main", self.config.main_platform, self.engine,
            self.config.service_workers, skew(), io_threads,
        )
        num_hosts = max(plan.num_shards for _, plan in tenants)
        self.sparse_servers = [
            SimServer(
                f"sparse-{index}", self.config.sparse_platform, self.engine,
                self.config.service_workers, skew(), io_threads,
            )
            for index in range(num_hosts)
        ]
        self.completed: dict[int, float] = {}
        self.on_complete: Callable[[int], None] | None = None
        self.dropped_requests: list[int] = []
        # Chaos layer: replica routing, fault injection, self-healing.
        # Lazily imported so serving never depends on chaos unless a
        # schedule is configured; every chaos RNG draw (replica clock
        # skews, spike jitter) comes from dedicated "chaos" substreams,
        # so the healthy streams above are never perturbed.
        self._chaos = None
        if self.config.chaos is not None:
            from repro.chaos.runtime import ChaosRuntime

            chaos_skew_rng = substream(
                self.config.seed, "chaos", "clock-skew", *cluster_key
            )

            def make_server(name: str) -> SimServer:
                extra_skew = 0.0
                if self.config.clock_skew_sigma != 0.0:
                    extra_skew = float(
                        chaos_skew_rng.normal(
                            0.0, self.config.clock_skew_sigma
                        )
                    )
                return SimServer(
                    name, self.config.sparse_platform, self.engine,
                    self.config.service_workers, extra_skew, io_threads,
                )

            self._chaos = ChaosRuntime(
                self.config.chaos,
                self.engine,
                self.sparse_servers,
                make_server,
                spike_rng=substream(
                    self.config.seed, "chaos", "network", *cluster_key
                ),
                corr_rng=substream(
                    self.config.seed, "chaos", "correlated", *cluster_key
                ),
            )
            # Injection processes spawn before any replay driver process,
            # so same-timestamp fault transitions order before arrivals.
            self._chaos.start()
        # Tail-resilience layer: retries, hedging, deadlines, budget.
        # Empty policies install no runtime at all -- the replay stays on
        # the historical single-attempt RPC path, byte-identical to
        # ``resilience=None``; backoff jitter draws from the dedicated
        # "resilience" substream so healthy streams are never consumed.
        self._resilience = None
        if policy is not None and not policy.is_empty:
            from repro.resilience.runtime import ResilienceRuntime

            self._resilience = ResilienceRuntime(
                policy,
                self.engine,
                substream(self.config.seed, "resilience", *cluster_key),
            )
        #: RPC spawn override for _run_batch: ``None`` keeps the default
        #: :meth:`_rpc` (byte-identical historical path).
        self._rpc_spawn = (
            self._rpc_resilient if self._resilience is not None else None
        )
        self.tenants = [
            _Tenant(index, model, plan, self.config)
            for index, (model, plan) in enumerate(tenants)
        ]
        # Per-message serde denominators depend only on the cost model and
        # platforms, which every tenant shares.
        cm = self.config.cost_model
        self._serde_denom_main = (
            cm.serde_bytes_per_sec * self.config.main_platform.relative_clock
        )
        self._serde_denom_sparse = (
            cm.serde_bytes_per_sec * self.config.sparse_platform.relative_clock
        )

    # -- batching ------------------------------------------------------------
    def _batches(self, tenant: _Tenant, request: Request) -> list[_Batch]:
        size = self.config.batch_size or tenant.model.profile.batch_size
        count = min(-(-request.num_items // size), self.config.max_batches)
        edges = [
            round(index * request.num_items / count) for index in range(count)
        ] + [request.num_items]
        return [
            _Batch(i, edges[i], edges[i + 1]) for i in range(count)
        ]

    # -- lookup routing --------------------------------------------------------
    def _partition_split(self, request: Request, table: TableConfig, count: int, parts: int) -> np.ndarray:
        """Split a row-partitioned table's ids across partitions (id % P)."""
        rng = substream(
            self.config.seed, "part-split", request.request_id, table.name, parts
        )
        return rng.multinomial(count, [1.0 / parts] * parts)

    def _slice_counts(self, draw, batches: list[_Batch]) -> list[int]:
        """Per-batch id counts for one feature draw (cumsum, int-exact)."""
        if draw.per_item_counts is None:
            total = draw.total_ids
            return [total] * len(batches)
        cumulative = np.cumsum(draw.per_item_counts)
        counts = []
        for batch in batches:
            hi = int(cumulative[batch.stop_item - 1]) if batch.stop_item > 0 else 0
            lo = int(cumulative[batch.start_item - 1]) if batch.start_item > 0 else 0
            counts.append(hi - lo)
        return counts

    def _cached_slice_counts(
        self, tenant: _Tenant, request: Request, batches: list[_Batch]
    ) -> dict[str, list[int]]:
        """Per-table per-batch id counts, memoized on the request.

        The batching policy is a sweep-wide constant, so every
        configuration slices each request identically; the integer counts
        are computed by the first configuration and reused by the rest.
        """
        key = (
            self.config.batch_size or tenant.model.profile.batch_size,
            self.config.max_batches,
        )
        counts = request.slice_count_cache.get(key)
        if counts is None:
            counts = {
                name: self._slice_counts(draw, batches)
                for name, draw in request.draws.items()
            }
            request.slice_count_cache[key] = counts
        return counts

    def _request_plans(
        self, tenant: _Tenant, request: Request, batches: list[_Batch]
    ) -> dict[str, list[_NetBatchPlan]]:
        """Precompute every (net, batch) execution plan for one request.

        Pure function of (request, plan, cost model): RPC fan-outs, payload
        sizes, serde/SLS/overhead times.  The partition-split substreams
        are keyed (stateless), so drawing them here consumes no shared RNG
        state and yields exactly the values the per-batch path drew.
        """
        cm = self.config.cost_model
        singular = tenant.plan.is_singular
        serde_fixed = cm.serde_fixed
        dispatch_fixed = cm.rpc_dispatch_fixed
        sls_dispatch = cm.sls_dispatch_per_table
        tbl_client = tenant.serde_tbl_client
        tbl_server = tenant.serde_tbl_server
        denom_main = self._serde_denom_main
        denom_sparse = self._serde_denom_sparse
        per_id_main = tenant.per_id_main
        per_id_sparse = tenant.per_id_sparse
        main_platform = self.config.main_platform
        all_counts = self._cached_slice_counts(tenant, request, batches)
        nb = len(batches)
        batch_range = range(nb)
        items_per_batch = [batch.items for batch in batches]

        plans: dict[str, list[_NetBatchPlan]] = {}
        for net_cfg in tenant.model.nets:
            net_name = net_cfg.name
            net_tables = tenant.model.tables_for_net(net_name)
            n_net_tables = len(net_tables)

            if singular:
                # Transposed accumulation (tables outer, batches inner)
                # preserves the per-batch SLS gather order: each batch's
                # sum still adds tables in tables_for_net order.
                gather = [0.0] * nb
                for table in net_tables:
                    counts = all_counts.get(table.name)
                    if counts is None:
                        continue
                    per_id = per_id_main[table.name]
                    for b in batch_range:
                        count = counts[b]
                        if count > 0:
                            gather[b] += count * per_id
                overhead = cm.net_overhead(n_net_tables + 12)
                dispatch = sls_dispatch * n_net_tables
                plans[net_name] = [
                    _NetBatchPlan(
                        overhead,
                        cm.dense_time(net_cfg, items_per_batch[b], main_platform),
                        (),
                        dispatch + gather[b],
                    )
                    for b in batch_range
                ]
                continue

            routing = tenant.net_routing[net_name]
            splits: dict[tuple[str, int, int], np.ndarray] = {}
            batch_targets: list[list[_ShardLookups]] = [[] for _ in batch_range]
            # Distinct active tables per batch (for the zero-fill term):
            # a partitioned table with a nonzero slice count is active on
            # at least one shard (a multinomial of a positive count has a
            # positive part), so activity is per-table, not per-shard.
            n_names = [0] * nb
            for table in net_tables:
                counts = all_counts.get(table.name)
                if counts is None:
                    continue
                for b in batch_range:
                    if counts[b] > 0:
                        n_names[b] += 1
            for shard, pairs in routing:
                # Per-batch accumulators for this shard's RPC.  Integer
                # payload terms are exact in float64 whatever the
                # addition order; the float SLS gather keeps pair order
                # per batch, identical to the lookup-list order.
                ids = [0] * nb
                ntab = [0] * nb
                resp_extra = [0] * nb
                gather = [0.0] * nb
                has_item = [False] * nb
                for table, assignment in pairs:
                    counts = all_counts.get(table.name)
                    if counts is None:
                        continue
                    per_id = per_id_sparse[table.name]
                    is_item = table.scope is FeatureScope.ITEM
                    dim4 = table.dim * 4
                    if assignment.num_parts > 1:
                        part_index = assignment.part_index
                        num_parts = assignment.num_parts
                        table_name = table.name
                        for b in batch_range:
                            count = counts[b]
                            if count == 0:
                                continue
                            split_key = (table_name, num_parts, count)
                            split = splits.get(split_key)
                            if split is None:
                                split = self._partition_split(
                                    request, table, count, num_parts
                                )
                                splits[split_key] = split
                            count = int(split[part_index])
                            if count == 0:
                                continue
                            ids[b] += count
                            ntab[b] += 1
                            gather[b] += count * per_id
                            if is_item:
                                has_item[b] = True
                                resp_extra[b] += 24 + items_per_batch[b] * dim4
                            else:
                                resp_extra[b] += 24 + dim4
                    else:
                        for b in batch_range:
                            count = counts[b]
                            if count == 0:
                                continue
                            ids[b] += count
                            ntab[b] += 1
                            gather[b] += count * per_id
                            if is_item:
                                has_item[b] = True
                                resp_extra[b] += 24 + items_per_batch[b] * dim4
                            else:
                                resp_extra[b] += 24 + dim4
                for b in batch_range:
                    n_tables = ntab[b]
                    if n_tables == 0:
                        continue
                    items = items_per_batch[b]
                    segments = items if has_item[b] else 1
                    # rpc_request_bytes / rpc_response_bytes, fused into
                    # the accumulation above (integer-exact).
                    req_bytes = 64.0 + ids[b] * 8.0 + n_tables * (
                        segments * 4.0 + 24.0
                    )
                    resp_bytes = 64.0 + resp_extra[b]
                    target = _ShardLookups(shard)
                    target.req_bytes = req_bytes
                    target.resp_bytes = resp_bytes
                    target.client_ser_total = (
                        serde_fixed
                        + tbl_client[n_tables]
                        + req_bytes / denom_main
                        + dispatch_fixed
                    )
                    target.server_deser = (
                        serde_fixed + tbl_server[n_tables] + req_bytes / denom_sparse
                    )
                    target.server_overhead = cm.net_overhead(n_tables + 2)
                    target.sls_work = sls_dispatch * n_tables + gather[b]
                    target.server_resp_ser = (
                        serde_fixed + tbl_server[n_tables] + resp_bytes / denom_sparse
                    )
                    target.client_resp_deser = (
                        serde_fixed + tbl_client[n_tables] + resp_bytes / denom_main
                    )
                    batch_targets[b].append(target)
            per_batch = []
            for b in batch_range:
                targets = batch_targets[b]
                overhead = cm.net_overhead(n_net_tables + 12 + len(targets))
                overhead += cm.fill_per_table * (n_net_tables - n_names[b])
                dense_total = cm.dense_time(
                    net_cfg, items_per_batch[b], main_platform
                )
                per_batch.append(_NetBatchPlan(overhead, dense_total, targets, 0.0))
            plans[net_name] = per_batch
        return plans

    # -- request lifecycle -------------------------------------------------------
    def submit(self, request: Request, tenant: int = 0) -> Event:
        """Inject one request now (for ``tenant``); returns its completion
        event.  Request ids must be unique across all tenants of a run."""
        if self._fast:
            return self.engine.process(
                self._serve_request_fast(self.tenants[tenant], request)
            )
        return self.engine.process(
            self._serve_request(self.tenants[tenant], request)
        )

    def _serve_request(self, tenant: _Tenant, request: Request):
        engine, cm, main = self.engine, self.config.cost_model, self.main
        record = self._record
        rid = request.request_id
        t_start = engine.now
        res = self._resilience
        if res is not None:
            res.start_request(rid)

        yield main.workers.acquire()
        t0 = engine.now
        deser = cm.serde_time(
            request_payload_bytes(tenant.model, request),
            main.platform,
            tables=len(request.draws),
        )
        yield deser
        record(rid, MAIN_SHARD, main, _SERDE, "request_deser", t0, engine.now, deser)
        t0 = engine.now
        yield cm.request_handler_fixed
        handler_cpu = cm.request_handler_fixed
        main.workers.release()

        batches = self._batches(tenant, request)
        plans = self._request_plans(tenant, request, batches)
        rpc = self._rpc_spawn
        batch_events = [
            engine.process(self._run_batch(tenant, request, batch, plans, rpc))
            for batch in batches
        ]
        yield engine.all_of(batch_events)

        yield main.workers.acquire()
        t0 = engine.now
        ser = cm.serde_time(ranking_response_bytes(request.num_items), main.platform)
        yield ser
        record(rid, MAIN_SHARD, main, _SERDE, "response_ser", t0, engine.now, ser)
        yield cm.response_handler_fixed
        handler_cpu += cm.response_handler_fixed
        main.workers.release()

        record(
            rid, MAIN_SHARD, main, _SERVICE, "request_e2e",
            t_start, engine.now, handler_cpu,
        )
        if res is not None:
            # Stamp the deadline flag before on_complete folds this
            # request's flags into result columns.
            res.finish_request(rid, engine.now - t_start)
        self.completed[rid] = engine.now - t_start
        if self.on_complete is not None:
            self.on_complete(rid)

    def _serve_request_fast(self, tenant: _Tenant, request: Request):
        """Fused-yield variant of :meth:`_serve_request` (batched kernel,
        chaos off).

        The request-handling segments are single-unit windows -- no other
        span of this request can be recorded while they run -- so the
        deserialization+handler and serialization+handler pairs collapse
        into one :class:`At` yield each.  Intermediate times are computed
        with the exact sequential float additions the kernel would have
        performed, and every record keeps its reference (start, end, cpu)
        values and its per-request recording position, which is what the
        bit-identity regression in ``tests/test_kernel_equivalence.py``
        pins.  Fan-out reuses :meth:`_run_batch` (no fusable windows
        there: every yield boundary carries a record) with the chaos-free
        :meth:`_rpc_fast`.
        """
        engine, cm, main = self.engine, self.config.cost_model, self.main
        record = self._record
        rid = request.request_id
        t_start = engine.now

        yield main.workers.acquire()
        t0 = engine.now
        deser = cm.serde_time(
            request_payload_bytes(tenant.model, request),
            main.platform,
            tables=len(request.draws),
        )
        t1 = t0 + deser
        yield At(t1 + cm.request_handler_fixed)
        record(rid, MAIN_SHARD, main, _SERDE, "request_deser", t0, t1, deser)
        handler_cpu = cm.request_handler_fixed
        main.workers.release()

        batches = self._batches(tenant, request)
        plans = self._request_plans(tenant, request, batches)
        rpc = self._rpc_fast
        batch_events = [
            engine.process(self._run_batch(tenant, request, batch, plans, rpc))
            for batch in batches
        ]
        yield engine.all_of(batch_events)

        yield main.workers.acquire()
        t0 = engine.now
        ser = cm.serde_time(ranking_response_bytes(request.num_items), main.platform)
        t1 = t0 + ser
        yield At(t1 + cm.response_handler_fixed)
        record(rid, MAIN_SHARD, main, _SERDE, "response_ser", t0, t1, ser)
        handler_cpu += cm.response_handler_fixed
        main.workers.release()

        record(
            rid, MAIN_SHARD, main, _SERVICE, "request_e2e",
            t_start, engine.now, handler_cpu,
        )
        self.completed[rid] = engine.now - t_start
        if self.on_complete is not None:
            self.on_complete(rid)

    def _run_batch(
        self,
        tenant: _Tenant,
        request: Request,
        batch: _Batch,
        plans: dict[str, list[_NetBatchPlan]],
        rpc: Callable | None = None,
    ):
        engine, cm, main = self.engine, self.config.cost_model, self.main
        record = self._record
        rid = request.request_id
        bindex = batch.index
        singular = tenant.plan.is_singular
        pre_fraction = cm.dense_pre_fraction
        t_batch = engine.now
        yield main.workers.acquire()
        for net_cfg in tenant.model.nets:
            net_name = net_cfg.name
            plan = plans[net_name][bindex]

            t0 = engine.now
            overhead = plan.overhead
            yield overhead
            record(
                rid, MAIN_SHARD, main, _NET_OVERHEAD, "net_sched",
                t0, engine.now, overhead, None, net_name, bindex,
            )

            t0 = engine.now
            pre = plan.dense_total * pre_fraction
            yield pre
            record(
                rid, MAIN_SHARD, main, _OPERATOR, "dense_pre",
                t0, engine.now, pre, _DENSE, net_name, bindex,
            )

            if singular:
                yield from self._local_sparse(request, bindex, net_name, plan.local_work)
            else:
                yield from self._remote_sparse(
                    request, bindex, net_name, plan.targets, rpc
                )

            t0 = engine.now
            post = plan.dense_total - pre
            yield post
            record(
                rid, MAIN_SHARD, main, _OPERATOR, "dense_post",
                t0, engine.now, post, _DENSE, net_name, bindex,
            )
        main.workers.release()
        record(
            rid, MAIN_SHARD, main, _BATCH, f"batch_{bindex}",
            t_batch, engine.now, 0.0, None, None, bindex,
        )

    def _local_sparse(self, request: Request, bindex: int, net_name: str, work: float):
        """Singular configuration: SLS ops execute inline on the main shard."""
        engine, main = self.engine, self.main
        record = self._record
        rid = request.request_id
        t0 = engine.now
        yield work
        record(
            rid, MAIN_SHARD, main, _OPERATOR, "sls_local",
            t0, engine.now, work, _SPARSE, net_name, bindex,
        )
        record(
            rid, MAIN_SHARD, main, _EMBEDDED, "embedded",
            t0, engine.now, 0.0, None, net_name, bindex,
        )

    def _remote_sparse(
        self,
        request: Request,
        bindex: int,
        net_name: str,
        targets: list[_ShardLookups],
        rpc: Callable | None = None,
    ):
        """Distributed: serialize + issue async RPCs, wait, deserialize."""
        engine, main = self.engine, self.main
        record = self._record
        rid = request.request_id
        spawn = self._rpc if rpc is None else rpc
        t_embedded = engine.now
        responses = []
        for target in targets:
            t0 = engine.now
            ser_total = target.client_ser_total
            yield ser_total
            record(
                rid, MAIN_SHARD, main, _SERDE, "rpc_request_ser",
                t0, engine.now, ser_total, None, net_name, bindex,
            )
            responses.append(
                engine.process(spawn(request, bindex, net_name, target))
            )
        if not responses:
            # Every candidate shard was inactive for this batch; the RPC ops
            # short-circuit and downstream layers read zero-filled blobs.
            return
        main.workers.release()
        yield engine.all_of(responses)
        yield main.workers.acquire()
        record(
            rid, MAIN_SHARD, main, _EMBEDDED, "embedded",
            t_embedded, engine.now, 0.0, None, net_name, bindex,
        )

    def _rpc(
        self,
        request: Request,
        bindex: int,
        net_name: str,
        target: _ShardLookups,
    ):
        """One remote call: network out, shard service, network back.

        With a chaos runtime, the target host is chosen by replica-aware
        round-robin routing; a host found dead on arrival costs the
        failover timeout and the call retries the next live replica, or
        -- with no replica left -- degrades to a dense-only partial
        result (the request completes without this shard's embeddings,
        exactly like an inactive shard: downstream layers read
        zero-filled blobs).  A host that crashes *mid-service* aborts
        the in-flight attempt at the next segment boundary: the worker
        is released, the attempt's already-recorded spans stay orphaned
        (no ``rpc_outstanding`` span ever binds them, identically in
        both trace modes), and the client fails over like a DOA retry.
        Each attempt carries its own ``rpc_id`` so aborted spans can
        never be confused with the winning attempt's.  Without chaos,
        every step below is the historical healthy path, byte for byte.
        """
        engine, cm = self.engine, self.config.cost_model
        main = self.main
        record = self._record
        rid = request.request_id
        shard_index = target.shard.index
        chaos = self._chaos
        if chaos is None:
            server = self.sparse_servers[shard_index]
        else:
            server = chaos.route(shard_index)
        t_client = engine.now

        while True:
            if server is None:
                # No live replica at all: pay the connection timeout,
                # then serve this net dense-only (degraded).
                chaos.mark_degraded(rid)
                yield chaos.failover_timeout
                return
            rpc_id = next(self._rpc_ids)
            out_delay = main.egress_delay(target.req_bytes) + self.fabric.one_way_delay(
                main.platform, server.platform, 0.0
            )
            if chaos is not None:
                out_delay = chaos.network_delay(out_delay)
            yield out_delay
            if chaos is not None and not chaos.is_live(server):
                # The host died while the request was in flight: the
                # client times out and fails over to the next replica.
                chaos.count_retry(rid)
                yield chaos.failover_timeout
                server = chaos.route(shard_index)
                continue

            t_service = engine.now
            yield server.workers.acquire()
            t0 = engine.now
            deser = target.server_deser
            service_fixed = cm.rpc_service_fixed
            if chaos is not None:
                deser = chaos.scale_service(shard_index, deser, server)
            yield deser
            record(
                rid, shard_index, server, _SERDE, "rpc_deser",
                t0, engine.now, deser, None, net_name, bindex, rpc_id,
            )
            if chaos is not None and not chaos.is_live(server):
                server.workers.release()
                chaos.count_abort(rid)
                yield chaos.failover_timeout
                server = chaos.route(shard_index)
                continue
            if chaos is not None:
                service_fixed = chaos.scale_service(
                    shard_index, service_fixed, server
                )
            yield service_fixed

            t0 = engine.now
            overhead = target.server_overhead
            if chaos is not None:
                overhead = chaos.scale_service(shard_index, overhead, server)
            yield overhead
            record(
                rid, shard_index, server, _NET_OVERHEAD, "net_sched",
                t0, engine.now, overhead, None, net_name, bindex, rpc_id,
            )
            if chaos is not None and not chaos.is_live(server):
                server.workers.release()
                chaos.count_abort(rid)
                yield chaos.failover_timeout
                server = chaos.route(shard_index)
                continue

            t0 = engine.now
            work = target.sls_work
            if chaos is not None:
                work = chaos.scale_service(shard_index, work, server)
            yield work
            record(
                rid, shard_index, server, _OPERATOR, "sls_remote",
                t0, engine.now, work, _SPARSE, net_name, bindex, rpc_id,
            )
            if chaos is not None and not chaos.is_live(server):
                server.workers.release()
                chaos.count_abort(rid)
                yield chaos.failover_timeout
                server = chaos.route(shard_index)
                continue

            t0 = engine.now
            ser = target.server_resp_ser
            if chaos is not None:
                ser = chaos.scale_service(shard_index, ser, server)
            yield ser
            record(
                rid, shard_index, server, _SERDE, "rpc_resp_ser",
                t0, engine.now, ser, None, net_name, bindex, rpc_id,
            )
            # The response is serialized and on the wire: the work is
            # committed and delivers even if the host dies right after.
            server.workers.release()
            record(
                rid, shard_index, server, _SERVICE, "rpc_e2e",
                t_service, engine.now, service_fixed, None, net_name, bindex, rpc_id,
            )
            break

        back_delay = server.egress_delay(target.resp_bytes) + self.fabric.one_way_delay(
            server.platform, main.platform, 0.0
        )
        if chaos is not None:
            back_delay = chaos.network_delay(back_delay)
        yield back_delay
        record(
            rid, MAIN_SHARD, main, _RPC_CLIENT, "rpc_outstanding",
            t_client, engine.now, 0.0, None, net_name, bindex, rpc_id,
        )
        # Response tensors deserialize on the client's IO threads, off the
        # request workers, overlapping the waits for slower RPCs.
        yield main.io_threads.acquire()
        t0 = engine.now
        deser = target.client_resp_deser
        yield deser
        record(
            rid, MAIN_SHARD, main, _SERDE, "rpc_response_deser",
            t0, engine.now, deser, None, net_name, bindex, rpc_id,
        )
        main.io_threads.release()

    def _rpc_resilient(
        self,
        request: Request,
        bindex: int,
        net_name: str,
        target: _ShardLookups,
    ):
        """Policy-supervised remote call: retries, hedging, deadline.

        Replaces :meth:`_rpc` when a non-empty
        :class:`~repro.resilience.policy.ResiliencePolicy` is active.
        The first attempt is issued immediately; this orchestrator then
        supervises the outstanding attempts:

        * a **hedge** issues one speculative duplicate ``hedge_delay``
          seconds after the first send;
        * a **timeout retry** issues a replacement when the latest
          attempt has been outstanding ``rpc_timeout`` seconds (after
          exponential backoff with deterministic jitter);
        * attempts that die (dead-on-arrival or aborted mid-service by
          a crash) are retried as soon as they are observed dead;
        * every extra attempt respects ``max_attempts``, the request
          **deadline**, and the token-bucket **retry budget** -- denials
          are counted, never queued;
        * the **first response wins**; late responses are discarded
          before client-side deserialization, and a request whose every
          permitted attempt died degrades to a dense-only partial
          result exactly like the no-policy failover path.
        """
        engine = self.engine
        res = self._resilience
        policy = res.policy
        chaos = self._chaos
        rid = request.request_id
        shard_index = target.shard.index
        t_client = engine.now
        state: dict = {"winner": None, "delivered": False}
        pending: list[Event] = []
        attempts_made = 0

        def launch() -> bool:
            nonlocal attempts_made
            attempts_made += 1
            if chaos is None:
                server = self.sparse_servers[shard_index]
            else:
                server = chaos.route(shard_index)
            if server is None:
                return False
            res.count_attempt(rid)
            pending.append(
                engine.process(
                    self._rpc_attempt(
                        request, bindex, net_name, target, server,
                        t_client, state,
                    )
                )
            )
            return True

        if not launch():
            # No live replica at all: the historical degraded path.
            chaos.mark_degraded(rid)
            yield chaos.failover_timeout
            return
        last_issue = engine.now
        hedged = False
        timeouts_denied = False
        deadline_at = res.deadline_at(rid)

        while True:
            if state["delivered"]:
                return
            pending = [event for event in pending if not event.triggered]
            now = engine.now
            may_attempt = attempts_made < policy.max_attempts and (
                deadline_at is None or now <= deadline_at
            )

            if state["winner"] is None and not pending:
                # Every attempt so far died (DOA or aborted mid-service
                # by a crash): retry if the policy and budget allow,
                # else degrade to a dense-only partial result.
                if may_attempt and res.try_spend():
                    delay = res.backoff_delay(attempts_made)
                    if delay > 0.0:
                        yield delay
                        if state["winner"] is not None:
                            continue
                    if launch():
                        last_issue = engine.now
                        continue
                if chaos is not None:
                    chaos.mark_degraded(rid)
                    yield chaos.failover_timeout
                return

            if state["winner"] is not None:
                # A response won and is being delivered; just wait.
                yield engine.any_of(pending)
                continue

            # Arm whichever supervision timer fires first.
            timer_at = None
            timer_kind = None
            if policy.hedge_delay is not None and not hedged and may_attempt:
                timer_at = t_client + policy.hedge_delay
                timer_kind = "hedge"
            if (
                policy.rpc_timeout is not None
                and not timeouts_denied
                and may_attempt
            ):
                timeout_at = last_issue + policy.rpc_timeout
                if timer_at is None or timeout_at < timer_at:
                    timer_at = timeout_at
                    timer_kind = "timeout"
            if timer_at is None:
                yield engine.any_of(pending)
                continue
            if timer_at > now:
                index, _ = yield engine.any_of(
                    pending + [engine.timeout(timer_at - now)]
                )
                if index < len(pending):
                    continue  # an attempt finished first; reassess
            if deadline_at is not None and engine.now > deadline_at:
                continue  # the request ran past its deadline meanwhile
            if timer_kind == "hedge":
                # Hedge once per request, spent or denied; the flag set
                # unconditionally keeps a denied hedge from re-arming.
                hedged = True
                if res.try_spend():
                    res.count_hedge(rid)
                    if launch():
                        last_issue = engine.now
            elif res.try_spend():
                delay = res.backoff_delay(attempts_made)
                if delay > 0.0:
                    yield delay
                    if state["winner"] is not None:
                        continue
                if launch():
                    last_issue = engine.now
            else:
                # Budget exhausted: stop arming timeout timers entirely
                # (the anti-retry-storm valve); in-flight attempts keep
                # running and may still win.
                timeouts_denied = True

    def _rpc_attempt(
        self,
        request: Request,
        bindex: int,
        net_name: str,
        target: _ShardLookups,
        server: SimServer,
        t_client: float,
        state: dict,
    ):
        """One attempt body under :meth:`_rpc_resilient` supervision.

        Identical cost structure to one :meth:`_rpc` serving pass --
        same egress reservation, fabric draw, serde/service/SLS segments
        and record positions -- with failover decisions lifted out: a
        dead host (on arrival or mid-service) simply ends the attempt,
        and the orchestrator decides whether a replacement is issued.
        The first attempt to finish its network trip back wins the
        request; late responses are discarded before client-side
        deserialization (their server-side spans stay orphaned, which
        both trace modes drop identically).
        """
        engine, cm = self.engine, self.config.cost_model
        main = self.main
        res = self._resilience
        rid = request.request_id
        sim_record = self._record
        completed = self.completed

        def record(*args: Any) -> None:
            # A straggling attempt can outlive its request (late response,
            # or a mid-crash abort observed after the winner delivered):
            # spans recorded past finalize_request would re-open the
            # request's accumulator and stale-drain it as incomplete, so
            # post-completion spans are dropped -- identically in both
            # trace modes, because the gate sits above the recorder.
            if rid not in completed:
                sim_record(*args)

        shard_index = target.shard.index
        chaos = self._chaos
        rpc_id = next(self._rpc_ids)

        out_delay = main.egress_delay(target.req_bytes) + self.fabric.one_way_delay(
            main.platform, server.platform, 0.0
        )
        if chaos is not None:
            out_delay = chaos.network_delay(out_delay)
        yield out_delay
        if chaos is not None and not chaos.is_live(server):
            # Dead on arrival: the attempt is spent, nothing recorded.
            chaos.count_retry(rid)
            return

        t_service = engine.now
        yield server.workers.acquire()
        t0 = engine.now
        deser = target.server_deser
        service_fixed = cm.rpc_service_fixed
        if chaos is not None:
            deser = chaos.scale_service(shard_index, deser, server)
        yield deser
        record(
            rid, shard_index, server, _SERDE, "rpc_deser",
            t0, engine.now, deser, None, net_name, bindex, rpc_id,
        )
        if chaos is not None and not chaos.is_live(server):
            server.workers.release()
            chaos.count_abort(rid)
            res.count_abort()
            return
        if chaos is not None:
            service_fixed = chaos.scale_service(
                shard_index, service_fixed, server
            )
        yield service_fixed

        t0 = engine.now
        overhead = target.server_overhead
        if chaos is not None:
            overhead = chaos.scale_service(shard_index, overhead, server)
        yield overhead
        record(
            rid, shard_index, server, _NET_OVERHEAD, "net_sched",
            t0, engine.now, overhead, None, net_name, bindex, rpc_id,
        )
        if chaos is not None and not chaos.is_live(server):
            server.workers.release()
            chaos.count_abort(rid)
            res.count_abort()
            return

        t0 = engine.now
        work = target.sls_work
        if chaos is not None:
            work = chaos.scale_service(shard_index, work, server)
        yield work
        record(
            rid, shard_index, server, _OPERATOR, "sls_remote",
            t0, engine.now, work, _SPARSE, net_name, bindex, rpc_id,
        )
        if chaos is not None and not chaos.is_live(server):
            server.workers.release()
            chaos.count_abort(rid)
            res.count_abort()
            return

        t0 = engine.now
        ser = target.server_resp_ser
        if chaos is not None:
            ser = chaos.scale_service(shard_index, ser, server)
        yield ser
        record(
            rid, shard_index, server, _SERDE, "rpc_resp_ser",
            t0, engine.now, ser, None, net_name, bindex, rpc_id,
        )
        # Response on the wire: the shard-side work is committed even if
        # the host dies right after.
        server.workers.release()
        record(
            rid, shard_index, server, _SERVICE, "rpc_e2e",
            t_service, engine.now, service_fixed, None, net_name, bindex, rpc_id,
        )

        back_delay = server.egress_delay(target.resp_bytes) + self.fabric.one_way_delay(
            server.platform, main.platform, 0.0
        )
        if chaos is not None:
            back_delay = chaos.network_delay(back_delay)
        yield back_delay
        if state["winner"] is not None:
            # A sibling attempt already won; discard this response.
            return
        state["winner"] = rpc_id
        record(
            rid, MAIN_SHARD, main, _RPC_CLIENT, "rpc_outstanding",
            t_client, engine.now, 0.0, None, net_name, bindex, rpc_id,
        )
        yield main.io_threads.acquire()
        t0 = engine.now
        deser = target.client_resp_deser
        yield deser
        record(
            rid, MAIN_SHARD, main, _SERDE, "rpc_response_deser",
            t0, engine.now, deser, None, net_name, bindex, rpc_id,
        )
        main.io_threads.release()
        state["delivered"] = True

    def _rpc_fast(
        self,
        request: Request,
        bindex: int,
        net_name: str,
        target: _ShardLookups,
    ):
        """Chaos-free variant of :meth:`_rpc` (batched kernel).

        Structurally identical to the healthy path of the reference RPC --
        same egress reservation and fabric draw positions, same record
        values at the same per-request recording positions -- with the
        chaos branches dropped and the one record-free yield window
        (``rpc_service_fixed`` + framework overhead) fused into a single
        :class:`At` yield.
        """
        engine, cm = self.engine, self.config.cost_model
        main = self.main
        record = self._record
        rid = request.request_id
        shard_index = target.shard.index
        server = self.sparse_servers[shard_index]
        rpc_id = next(self._rpc_ids)
        t_client = engine.now

        out_delay = main.egress_delay(target.req_bytes) + self.fabric.one_way_delay(
            main.platform, server.platform, 0.0
        )
        yield out_delay

        t_service = engine.now
        yield server.workers.acquire()
        t0 = engine.now
        deser = target.server_deser
        yield deser
        record(
            rid, shard_index, server, _SERDE, "rpc_deser",
            t0, engine.now, deser, None, net_name, bindex, rpc_id,
        )
        service_fixed = cm.rpc_service_fixed
        t1 = engine.now + service_fixed
        overhead = target.server_overhead
        t2 = t1 + overhead
        yield At(t2)
        record(
            rid, shard_index, server, _NET_OVERHEAD, "net_sched",
            t1, t2, overhead, None, net_name, bindex, rpc_id,
        )

        t0 = engine.now
        work = target.sls_work
        yield work
        record(
            rid, shard_index, server, _OPERATOR, "sls_remote",
            t0, engine.now, work, _SPARSE, net_name, bindex, rpc_id,
        )

        t0 = engine.now
        ser = target.server_resp_ser
        yield ser
        record(
            rid, shard_index, server, _SERDE, "rpc_resp_ser",
            t0, engine.now, ser, None, net_name, bindex, rpc_id,
        )
        server.workers.release()
        record(
            rid, shard_index, server, _SERVICE, "rpc_e2e",
            t_service, engine.now, service_fixed, None, net_name, bindex, rpc_id,
        )

        back_delay = server.egress_delay(target.resp_bytes) + self.fabric.one_way_delay(
            server.platform, main.platform, 0.0
        )
        yield back_delay
        record(
            rid, MAIN_SHARD, main, _RPC_CLIENT, "rpc_outstanding",
            t_client, engine.now, 0.0, None, net_name, bindex, rpc_id,
        )
        yield main.io_threads.acquire()
        t0 = engine.now
        deser = target.client_resp_deser
        yield deser
        record(
            rid, MAIN_SHARD, main, _SERDE, "rpc_response_deser",
            t0, engine.now, deser, None, net_name, bindex, rpc_id,
        )
        main.io_threads.release()

    # -- chaos accessors --------------------------------------------------------
    @property
    def chaos_flags(self) -> dict[int, list[int]] | None:
        """Per-request ``[degraded, retries]`` counters, keyed by request
        id; ``None`` without a chaos runtime.  The tracing layer folds
        these into the ``status``/``degraded``/``retries`` columns."""
        return None if self._chaos is None else self._chaos.flags

    @property
    def chaos_timeline(self) -> tuple:
        """Fault/heal transitions in simulation-time order (empty without
        a chaos runtime)."""
        return () if self._chaos is None else tuple(self._chaos.timeline)

    @property
    def chaos_aborted(self) -> int:
        """In-flight RPC attempts aborted by mid-service crashes (0
        without a chaos runtime)."""
        return 0 if self._chaos is None else self._chaos.aborted

    # -- resilience accessors ---------------------------------------------------
    @property
    def resilience_flags(self) -> dict[int, list[int]] | None:
        """Per-request ``[attempts, hedged, deadline_exceeded]`` counters,
        keyed by request id; ``None`` without an active resilience
        runtime.  The tracing layer folds these into the
        ``attempts``/``hedged``/``deadline_exceeded`` columns."""
        return None if self._resilience is None else self._resilience.flags

    @property
    def resilience_stats(self) -> dict[str, int]:
        """Replay-level resilience counters (empty dict without an
        active runtime)."""
        return {} if self._resilience is None else self._resilience.stats()

    # -- replay drivers ---------------------------------------------------------
    def drain_incomplete(self) -> list[int]:
        """Free trace state of in-flight requests; returns (and records in
        ``dropped_requests``) their ids.

        The abort-safety valve: any exception that unwinds a replay mid-
        flight leaves the tracer holding the interrupted requests' state,
        which would otherwise leak for the rest of a sweep.  The replay
        drivers call this from a ``finally`` via :meth:`_finish_replay`;
        callers driving :meth:`submit` by hand can call it directly.
        """
        stale = self.tracer.drain_incomplete()
        self.dropped_requests.extend(stale)
        return stale

    def _finish_replay(self) -> None:
        """Free trace state of requests that never completed.

        Only applies when completions are consumed incrementally (an
        ``on_complete`` hook pops finished requests): whatever the tracer
        still holds belongs to requests that never finished -- on a clean
        end *and* on an abort, where the replay unwound mid-flight.
        Without a hook the caller owns the trace (e.g. the ``trace``
        CLI), so nothing is dropped.
        """
        if self.on_complete is not None:
            self.drain_incomplete()

    def run_serial(self, requests: Iterable[Request]) -> None:
        """Serial blocking replay: next request sent after the previous
        response returns (paper Section VI)."""

        def driver():
            for request in requests:
                yield self.submit(request)

        self.engine.process(driver())
        try:
            self.engine.run()
        finally:
            self._finish_replay()

    def run_open_loop(self, requests: list[Request], schedule: ReplaySchedule) -> None:
        """Open-loop replay at the schedule's QPS (paper Section VII-A)."""
        if schedule.mode is not ReplayMode.OPEN_LOOP:
            raise ValueError("use run_serial for serial schedules")
        arrivals = schedule.arrival_times(len(requests))

        def driver():
            previous = 0.0
            for request, at in zip(requests, arrivals):
                yield float(at - previous)
                previous = at
                self.submit(request)

        self.engine.process(driver())
        try:
            self.engine.run()
        finally:
            self._finish_replay()

    def run_stream(self, stream: Iterable[tuple[float, int, Request]]) -> None:
        """Mixed open-loop replay: inject ``(arrival_time, tenant, request)``
        triples in nondecreasing time order (a
        :class:`~repro.workloads.workload.MixedStream` iterates exactly
        this shape).  This is the multi-model co-location driver: every
        tenant's requests contend for the same simulated hosts."""

        def driver():
            previous = 0.0
            for at, tenant, request in stream:
                delay = float(at) - previous
                if delay < 0.0:
                    raise ValueError(
                        f"stream arrivals must be nondecreasing; "
                        f"{at} follows {previous}"
                    )
                yield delay
                previous = float(at)
                self.submit(request, int(tenant))

        self.engine.process(driver())
        try:
            self.engine.run()
        finally:
            self._finish_replay()

"""Discrete-event simulation of the distributed inference serving stack.

Faithfully models the serving pipeline of paper Section III on top of the
DES kernel:

* every shard (main + sparse) is a **server** with a Thrift-like service:
  a worker-thread pool (cores resource), an egress NIC serialized at link
  bandwidth, and a skewed wall clock;
* a ranking request arrives at the main shard, is deserialized, split into
  **batches** (Section VI-F), and each batch executes the model's nets
  sequentially: bottom dense ops, then the sparse portion -- local SLS in
  the singular configuration, or asynchronous RPC fan-out to the sparse
  shards of the plan -- then interaction/top dense ops;
* each RPC pays serialization, network (propagation + wire + jitter),
  shard-side service/framework/operator time, and response handling; RPCs
  with no active lookups are skipped entirely, which is why DRM3 touches
  only two shards per request regardless of shard count (Section VI-E1);
* the cross-layer tracer records a span for every instrumented interval,
  exactly like the paper's instrumentation hooks.

The simulator consumes *count-level* requests (no real ids): all costs are
functions of id counts, table metadata, and bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.rng import substream
from repro.core.types import OpCategory
from repro.models.config import FeatureScope, ModelConfig, TableConfig
from repro.requests.generator import Request, request_payload_bytes
from repro.requests.replayer import ReplayMode, ReplaySchedule
from repro.sharding.plan import ShardingPlan, ShardSpec
from repro.simulation.costmodel import (
    CostModel,
    ranking_response_bytes,
    rpc_request_bytes,
    rpc_response_bytes,
)
from repro.simulation.engine import Engine, Event
from repro.simulation.network import Fabric, FabricSpec
from repro.simulation.platform import SC_LARGE, Platform
from repro.tracing.span import MAIN_SHARD, Layer, Span, Tracer


@dataclass(frozen=True)
class ServingConfig:
    """Cluster-level configuration for one simulated experiment."""

    main_platform: Platform = SC_LARGE
    sparse_platform: Platform = SC_LARGE
    cost_model: CostModel = field(default_factory=CostModel)
    fabric_spec: FabricSpec = field(default_factory=FabricSpec)
    seed: int = 0
    service_workers: int = 32
    """Worker threads of one serving instance (a service instance does not
    own the whole machine); batches queue for these workers, which is what
    couples request size to tail latency."""

    batch_size: int | None = None
    """Overrides the model's default batch size; None keeps the default.
    ``with_batch_size(10**9)`` reproduces the paper's one-batch-per-request
    mode (Section VI-F)."""

    max_batches: int = 8
    """Production batching cap: huge requests grow their batch size rather
    than fan out unboundedly, so tail-sized requests are dense-dominated
    (the paper's explanation for P99 overheads being more favorable than
    P50, Section VI-B4)."""

    clock_skew_sigma: float = 0.0
    """Stddev (seconds) of per-server wall-clock skew; trace timestamps are
    stamped with it, and attribution must stay skew-invariant."""

    def with_batch_size(self, batch_size: int | None) -> "ServingConfig":
        return ServingConfig(
            main_platform=self.main_platform,
            sparse_platform=self.sparse_platform,
            cost_model=self.cost_model,
            fabric_spec=self.fabric_spec,
            seed=self.seed,
            service_workers=self.service_workers,
            batch_size=batch_size,
            max_batches=self.max_batches,
            clock_skew_sigma=self.clock_skew_sigma,
        )


class SimServer:
    """One server: worker pool, egress link, skewed wall clock."""

    def __init__(
        self,
        name: str,
        platform: Platform,
        engine: Engine,
        workers: int,
        clock_skew: float = 0.0,
        io_threads: int = 4,
    ):
        self.name = name
        self.platform = platform
        self.engine = engine
        self.workers = engine.resource(min(workers, platform.cores))
        self.io_threads = engine.resource(io_threads)
        self.clock_skew = clock_skew
        self._egress_free = 0.0

    def wall(self, engine_time: float | None = None) -> float:
        """This server's wall clock (engine time + skew)."""
        at = self.engine.now if engine_time is None else engine_time
        return at + self.clock_skew

    def egress_delay(self, nbytes: float) -> float:
        """Reserve the egress NIC for a message; returns total delay until
        the last byte leaves (queueing behind in-flight messages + wire)."""
        wire = nbytes / self.platform.nic_bandwidth
        start = max(self.engine.now, self._egress_free)
        self._egress_free = start + wire
        return (start - self.engine.now) + wire


@dataclass(frozen=True, slots=True)
class _Batch:
    index: int
    start_item: int
    stop_item: int

    @property
    def items(self) -> int:
        return self.stop_item - self.start_item


@dataclass(slots=True)
class _ShardLookups:
    """Active lookups routed to one shard for one (batch, net) RPC."""

    shard: ShardSpec
    lookups: list[tuple[TableConfig, int]] = field(default_factory=list)
    segments: int = 1

    @property
    def active(self) -> bool:
        return bool(self.lookups)


class ClusterSimulation:
    """Simulates one (model, plan, serving-config) deployment."""

    def __init__(
        self,
        model: ModelConfig,
        plan: ShardingPlan,
        config: ServingConfig | None = None,
        tracer: Tracer | None = None,
    ):
        plan.validate(model)
        self.model = model
        self.plan = plan
        self.config = config or ServingConfig()
        self.tracer = tracer or Tracer()
        self.engine = Engine()
        self._rpc_ids = itertools.count()
        self._rng = substream(self.config.seed, "cluster", model.name, plan.label)
        skew_rng = substream(self.config.seed, "clock-skew", model.name, plan.label)

        def skew() -> float:
            if self.config.clock_skew_sigma == 0.0:
                return 0.0
            return float(skew_rng.normal(0.0, self.config.clock_skew_sigma))

        self.fabric = Fabric(self.config.fabric_spec, seed=self.config.seed)
        io_threads = self.config.cost_model.io_threads
        self.main = SimServer(
            "main", self.config.main_platform, self.engine,
            self.config.service_workers, skew(), io_threads,
        )
        self.sparse_servers = [
            SimServer(
                f"sparse-{shard.index}", self.config.sparse_platform, self.engine,
                self.config.service_workers, skew(), io_threads,
            )
            for shard in plan.shards
        ]
        self.completed: dict[int, float] = {}
        self.on_complete: Callable[[int], None] | None = None

        # Precomputed RPC routing: for each net, the shards holding at
        # least one of its tables, with that net's (table, assignment)
        # pairs.  ``_rpc_targets`` runs once per (batch, net) on the hot
        # path and must not rediscover the placement every time.
        self._net_routing: dict[str, list[tuple[ShardSpec, list]]] = {}
        if not plan.is_singular:
            for net_cfg in model.nets:
                routing = []
                for shard in plan.shards:
                    pairs = [
                        (table, assignment)
                        for assignment in shard.assignments
                        if (table := model.table(assignment.table_name)).net
                        == net_cfg.name
                    ]
                    if pairs:
                        routing.append((shard, pairs))
                self._net_routing[net_cfg.name] = routing

    # -- span helper -------------------------------------------------------
    def _span(
        self,
        request: Request,
        shard: int,
        server: SimServer,
        layer: Layer,
        name: str,
        start: float,
        end: float,
        cpu: float = 0.0,
        **extra,
    ) -> None:
        self.tracer.record(
            Span(
                request_id=request.request_id,
                shard=shard,
                server=server.name,
                layer=layer,
                name=name,
                start=server.wall(start),
                end=server.wall(end),
                cpu_time=cpu,
                **extra,
            )
        )

    # -- batching ------------------------------------------------------------
    def _batches(self, request: Request) -> list[_Batch]:
        size = self.config.batch_size or self.model.profile.batch_size
        count = min(-(-request.num_items // size), self.config.max_batches)
        edges = [
            round(index * request.num_items / count) for index in range(count)
        ] + [request.num_items]
        return [
            _Batch(i, edges[i], edges[i + 1]) for i in range(count)
        ]

    # -- lookup routing --------------------------------------------------------
    def _partition_split(self, request: Request, table: TableConfig, count: int, parts: int) -> np.ndarray:
        """Split a row-partitioned table's ids across partitions (id % P)."""
        rng = substream(
            self.config.seed, "part-split", request.request_id, table.name, parts
        )
        return rng.multinomial(count, [1.0 / parts] * parts)

    def _lookups_for_batch(
        self, request: Request, batch: _Batch, net_name: str
    ) -> list[tuple[TableConfig, int]]:
        """(table, ids) pairs a batch performs for one net (singular view)."""
        lookups = []
        for table in self.model.tables_for_net(net_name):
            draw = request.draws.get(table.name)
            if draw is None:
                continue
            count = draw.ids_in_slice(batch.start_item, batch.stop_item)
            if count > 0:
                lookups.append((table, count))
        return lookups

    def _rpc_targets(
        self, request: Request, batch: _Batch, net_name: str
    ) -> list[_ShardLookups]:
        """Active per-shard lookup sets for one (batch, net) RPC fan-out."""
        targets = []
        draws = request.draws
        # A row-partitioned table appears on every partition's shard; its
        # batch slice and multinomial split are identical each time (the
        # split substream is keyed, not stateful), so compute them once.
        slice_counts: dict[str, int] = {}
        splits: dict[tuple[str, int], np.ndarray] = {}
        for shard, pairs in self._net_routing[net_name]:
            entry = _ShardLookups(shard=shard)
            lookups = entry.lookups
            segments = 1
            for table, assignment in pairs:
                draw = draws.get(table.name)
                if draw is None:
                    continue
                count = slice_counts.get(table.name)
                if count is None:
                    count = draw.ids_in_slice(batch.start_item, batch.stop_item)
                    slice_counts[table.name] = count
                if count == 0:
                    continue
                if assignment.num_parts > 1:
                    split_key = (table.name, assignment.num_parts)
                    split = splits.get(split_key)
                    if split is None:
                        split = self._partition_split(
                            request, table, count, assignment.num_parts
                        )
                        splits[split_key] = split
                    count = int(split[assignment.part_index])
                    if count == 0:
                        continue
                lookups.append((table, count))
                if table.scope is FeatureScope.ITEM and batch.items > segments:
                    segments = batch.items
            entry.segments = segments
            targets.append(entry)
        return targets

    # -- request lifecycle -------------------------------------------------------
    def submit(self, request: Request) -> Event:
        """Inject one request now; returns its completion event."""
        return self.engine.process(self._serve_request(request))

    def _serve_request(self, request: Request):
        engine, cm, main = self.engine, self.config.cost_model, self.main
        t_start = engine.now

        yield main.workers.acquire()
        t0 = engine.now
        deser = cm.serde_time(
            request_payload_bytes(self.model, request),
            main.platform,
            tables=len(request.draws),
        )
        yield deser
        self._span(
            request, MAIN_SHARD, main, Layer.SERDE, "request_deser",
            t0, engine.now, cpu=deser,
        )
        t0 = engine.now
        yield cm.request_handler_fixed
        handler_cpu = cm.request_handler_fixed
        main.workers.release()

        batches = self._batches(request)
        batch_events = [
            engine.process(self._run_batch(request, batch)) for batch in batches
        ]
        yield engine.all_of(batch_events)

        yield main.workers.acquire()
        t0 = engine.now
        ser = cm.serde_time(ranking_response_bytes(request.num_items), main.platform)
        yield ser
        self._span(
            request, MAIN_SHARD, main, Layer.SERDE, "response_ser",
            t0, engine.now, cpu=ser,
        )
        yield cm.response_handler_fixed
        handler_cpu += cm.response_handler_fixed
        main.workers.release()

        self._span(
            request, MAIN_SHARD, main, Layer.SERVICE, "request_e2e",
            t_start, engine.now, cpu=handler_cpu,
        )
        self.completed[request.request_id] = engine.now - t_start
        if self.on_complete is not None:
            self.on_complete(request.request_id)

    def _run_batch(self, request: Request, batch: _Batch):
        engine, cm, main = self.engine, self.config.cost_model, self.main
        t_batch = engine.now
        yield main.workers.acquire()
        for net_cfg in self.model.nets:
            net_tables = self.model.tables_for_net(net_cfg.name)
            rpc_targets = (
                [] if self.plan.is_singular
                else self._rpc_targets(request, batch, net_cfg.name)
            )
            active_rpcs = [t for t in rpc_targets if t.active]
            num_ops = len(net_tables) + 12 + len(active_rpcs)

            t0 = engine.now
            overhead = cm.net_overhead(num_ops)
            if not self.plan.is_singular:
                active_names = {
                    table.name for t in active_rpcs for table, _ in t.lookups
                }
                overhead += cm.fill_per_table * (len(net_tables) - len(active_names))
            yield overhead
            self._span(
                request, MAIN_SHARD, main, Layer.NET_OVERHEAD, "net_sched",
                t0, engine.now, cpu=overhead, net=net_cfg.name, batch=batch.index,
            )

            dense_total = cm.dense_time(net_cfg, batch.items, main.platform)
            t0 = engine.now
            pre = dense_total * cm.dense_pre_fraction
            yield pre
            self._span(
                request, MAIN_SHARD, main, Layer.OPERATOR, "dense_pre",
                t0, engine.now, cpu=pre,
                category=OpCategory.DENSE, net=net_cfg.name, batch=batch.index,
            )

            if self.plan.is_singular:
                yield from self._local_sparse(request, batch, net_cfg.name)
            else:
                yield from self._remote_sparse(request, batch, net_cfg.name, active_rpcs)

            t0 = engine.now
            post = dense_total - pre
            yield post
            self._span(
                request, MAIN_SHARD, main, Layer.OPERATOR, "dense_post",
                t0, engine.now, cpu=post,
                category=OpCategory.DENSE, net=net_cfg.name, batch=batch.index,
            )
        main.workers.release()
        self._span(
            request, MAIN_SHARD, main, Layer.BATCH, f"batch_{batch.index}",
            t_batch, engine.now, batch=batch.index,
        )

    def _local_sparse(self, request: Request, batch: _Batch, net_name: str):
        """Singular configuration: SLS ops execute inline on the main shard."""
        engine, cm, main = self.engine, self.config.cost_model, self.main
        lookups = self._lookups_for_batch(request, batch, net_name)
        dispatched = len(self.model.tables_for_net(net_name))
        work = cm.sls_time(lookups, main.platform, dispatched_tables=dispatched)
        t0 = engine.now
        yield work
        self._span(
            request, MAIN_SHARD, main, Layer.OPERATOR, "sls_local",
            t0, engine.now, cpu=work,
            category=OpCategory.SPARSE, net=net_name, batch=batch.index,
        )
        self._span(
            request, MAIN_SHARD, main, Layer.EMBEDDED, "embedded",
            t0, engine.now, net=net_name, batch=batch.index,
        )

    def _remote_sparse(
        self,
        request: Request,
        batch: _Batch,
        net_name: str,
        targets: list[_ShardLookups],
    ):
        """Distributed: serialize + issue async RPCs, wait, deserialize."""
        engine, cm, main = self.engine, self.config.cost_model, self.main
        t_embedded = engine.now
        responses = []
        for target in targets:
            req_bytes = rpc_request_bytes(target.lookups, target.segments)
            t0 = engine.now
            ser = cm.serde_time(
                req_bytes, main.platform, tables=len(target.lookups), client_side=True
            )
            yield ser + cm.rpc_dispatch_fixed
            self._span(
                request, MAIN_SHARD, main, Layer.SERDE, "rpc_request_ser",
                t0, engine.now, cpu=ser + cm.rpc_dispatch_fixed,
                net=net_name, batch=batch.index,
            )
            resp_bytes = rpc_response_bytes(
                [table for table, _ in target.lookups], batch.items
            )
            responses.append(
                engine.process(
                    self._rpc(request, batch, net_name, target, req_bytes, resp_bytes)
                )
            )
        if not responses:
            # Every candidate shard was inactive for this batch; the RPC ops
            # short-circuit and downstream layers read zero-filled blobs.
            return
        main.workers.release()
        yield engine.all_of(responses)
        yield main.workers.acquire()
        self._span(
            request, MAIN_SHARD, main, Layer.EMBEDDED, "embedded",
            t_embedded, engine.now, net=net_name, batch=batch.index,
        )

    def _rpc(
        self,
        request: Request,
        batch: _Batch,
        net_name: str,
        target: _ShardLookups,
        req_bytes: float,
        resp_bytes: float,
    ):
        """One remote call: network out, shard service, network back."""
        engine, cm = self.engine, self.config.cost_model
        main = self.main
        server = self.sparse_servers[target.shard.index]
        rpc_id = next(self._rpc_ids)
        t_client = engine.now

        out_delay = main.egress_delay(req_bytes) + self.fabric.one_way_delay(
            main.platform, server.platform, 0.0
        )
        yield out_delay

        t_service = engine.now
        yield server.workers.acquire()
        t0 = engine.now
        deser = cm.serde_time(req_bytes, server.platform, tables=len(target.lookups))
        yield deser
        self._span(
            request, target.shard.index, server, Layer.SERDE, "rpc_deser",
            t0, engine.now, cpu=deser, net=net_name, batch=batch.index, rpc_id=rpc_id,
        )
        yield cm.rpc_service_fixed

        t0 = engine.now
        overhead = cm.net_overhead(len(target.lookups) + 2)
        yield overhead
        self._span(
            request, target.shard.index, server, Layer.NET_OVERHEAD, "net_sched",
            t0, engine.now, cpu=overhead, net=net_name, batch=batch.index, rpc_id=rpc_id,
        )

        t0 = engine.now
        work = cm.sls_time(target.lookups, server.platform)
        yield work
        self._span(
            request, target.shard.index, server, Layer.OPERATOR, "sls_remote",
            t0, engine.now, cpu=work,
            category=OpCategory.SPARSE, net=net_name, batch=batch.index, rpc_id=rpc_id,
        )

        t0 = engine.now
        ser = cm.serde_time(resp_bytes, server.platform, tables=len(target.lookups))
        yield ser
        self._span(
            request, target.shard.index, server, Layer.SERDE, "rpc_resp_ser",
            t0, engine.now, cpu=ser, net=net_name, batch=batch.index, rpc_id=rpc_id,
        )
        server.workers.release()
        self._span(
            request, target.shard.index, server, Layer.SERVICE, "rpc_e2e",
            t_service, engine.now, cpu=cm.rpc_service_fixed,
            net=net_name, batch=batch.index, rpc_id=rpc_id,
        )

        back_delay = server.egress_delay(resp_bytes) + self.fabric.one_way_delay(
            server.platform, main.platform, 0.0
        )
        yield back_delay
        self._span(
            request, MAIN_SHARD, main, Layer.RPC_CLIENT, "rpc_outstanding",
            t_client, engine.now,
            net=net_name, batch=batch.index, rpc_id=rpc_id,
        )
        # Response tensors deserialize on the client's IO threads, off the
        # request workers, overlapping the waits for slower RPCs.
        yield main.io_threads.acquire()
        t0 = engine.now
        deser = cm.serde_time(
            resp_bytes, main.platform, tables=len(target.lookups), client_side=True
        )
        yield deser
        self._span(
            request, MAIN_SHARD, main, Layer.SERDE, "rpc_response_deser",
            t0, engine.now, cpu=deser, net=net_name, batch=batch.index, rpc_id=rpc_id,
        )
        main.io_threads.release()

    # -- replay drivers ---------------------------------------------------------
    def run_serial(self, requests: Iterable[Request]) -> None:
        """Serial blocking replay: next request sent after the previous
        response returns (paper Section VI)."""

        def driver():
            for request in requests:
                yield self.submit(request)

        self.engine.process(driver())
        self.engine.run()

    def run_open_loop(self, requests: list[Request], schedule: ReplaySchedule) -> None:
        """Open-loop replay at the schedule's QPS (paper Section VII-A)."""
        if schedule.mode is not ReplayMode.OPEN_LOOP:
            raise ValueError("use run_serial for serial schedules")
        arrivals = schedule.arrival_times(len(requests))

        def driver():
            previous = 0.0
            for request, at in zip(requests, arrivals):
                yield float(at - previous)
                previous = at
                self.submit(request)

        self.engine.process(driver())
        self.engine.run()

"""repro: reproduction of "Understanding Capacity-Driven Scale-Out Neural
Recommendation Inference" (Lui et al., ISPASS 2021).

The package provides, as importable subsystems:

* :mod:`repro.models` -- the DRM1/DRM2/DRM3 synthetic model zoo;
* :mod:`repro.core` -- operator graphs and real numeric DLRM execution;
* :mod:`repro.sharding` -- capacity-driven sharding strategies and the
  model partitioner;
* :mod:`repro.requests` -- production-like request synthesis and replay;
* :mod:`repro.simulation` -- the discrete-event kernel, platforms,
  network fabric, and calibrated cost model;
* :mod:`repro.serving` -- the simulated distributed serving stack;
* :mod:`repro.planning` -- SLA policies, replication/elasticity sizing,
  and the closed-loop SLA-driven deployment search
  (:class:`~repro.planning.capacity.CapacityPlanner`);
* :mod:`repro.tracing` -- the cross-layer distributed tracing framework;
* :mod:`repro.compression` -- row-wise quantization and pruning;
* :mod:`repro.analysis` / :mod:`repro.experiments` -- quantile analysis
  and the per-figure experiment harness.

Quickstart::

    from repro.models import drm1
    from repro.experiments import run_suite, figures

    results = run_suite(drm1())
    print(figures.fig6_overheads(results, "DRM1").text)
"""

from repro.models import build, drm1, drm2, drm3
from repro.experiments import (
    RunResult,
    SuiteSettings,
    figures,
    paper_configurations,
    run_configuration,
    run_suite,
)
from repro.planning import CandidateSpace, CapacityPlanner, SlaPolicy
from repro.serving import ClusterSimulation, ServingConfig
from repro.sharding import STRATEGIES, ShardingPlan, estimate_pooling_factors, singular_plan

__version__ = "1.0.0"

__all__ = [
    "ClusterSimulation",
    "RunResult",
    "STRATEGIES",
    "ServingConfig",
    "ShardingPlan",
    "SuiteSettings",
    "build",
    "drm1",
    "drm2",
    "drm3",
    "estimate_pooling_factors",
    "figures",
    "paper_configurations",
    "run_configuration",
    "run_suite",
    "singular_plan",
]

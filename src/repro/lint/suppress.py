"""Inline ``# detlint: disable=...`` suppression comments.

Syntax (one comment, same physical line as the finding it silences)::

    risky_call()  # detlint: disable=DET003 -- benchmark timestamps are wall-clock

* ``disable=`` takes one or more comma-separated rule ids.
* The ``-- <reason>`` clause is **mandatory**.  A suppression is an
  exception to the determinism contract; the reason is what a reviewer
  audits.  A directive with no reason, an empty reason, an unknown rule
  id, or a malformed rule list suppresses nothing and is itself reported
  as DET000.
* DET000 cannot be suppressed (a broken directive cannot vouch for
  itself).

Comments are extracted with :mod:`tokenize`, not regexes over raw lines,
so ``detlint:`` text inside string literals is never misread as a
directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

#: Anything that *looks* like a directive gets full syntax validation.
_DIRECTIVE_MARKER = re.compile(r"#\s*detlint:")
_DIRECTIVE = re.compile(
    r"#\s*detlint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)\s*--\s*(?P<reason>\S.*)$"
)
_RULE_ID = re.compile(r"^DET\d{3}$")

#: The meta rule id for malformed directives / unparseable files.
META_RULE = "DET000"


@dataclass
class SuppressionIndex:
    """Per-file map of line -> suppressed rule ids, plus parse errors."""

    #: 1-based line -> frozenset of rule ids disabled on that line.
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    #: DET000 findings for malformed directives.
    errors: list[Finding] = field(default_factory=list)

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule == META_RULE:
            return False
        return finding.rule in self.by_line.get(finding.line, frozenset())


def parse_suppressions(
    source: str, path: str, known_rules: frozenset[str]
) -> SuppressionIndex:
    """Build the suppression index for one module's source text."""
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The AST pass reports the parse failure; nothing to index here.
        return index
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _DIRECTIVE_MARKER.search(comment):
            continue
        line = token.start[0]
        match = _DIRECTIVE.search(comment)
        if not match:
            index.errors.append(
                Finding(
                    rule=META_RULE,
                    path=path,
                    line=line,
                    col=token.start[1],
                    message=(
                        "malformed detlint directive: expected "
                        "'# detlint: disable=DETnnn -- <reason>' "
                        "(the reason clause is mandatory)"
                    ),
                    suggestion="state which rule is disabled and why",
                )
            )
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        bad = tuple(
            rule
            for rule in rules
            if not _RULE_ID.match(rule)
            or rule not in known_rules
            or rule == META_RULE
        )
        if not rules or bad:
            index.errors.append(
                Finding(
                    rule=META_RULE,
                    path=path,
                    line=line,
                    col=token.start[1],
                    message=(
                        "detlint directive names unknown or unsuppressable "
                        f"rule(s): {', '.join(bad) if bad else '(none given)'}"
                    ),
                    suggestion="use DET001..DET007 ids (DET000 cannot be disabled)",
                )
            )
            continue
        merged = index.by_line.get(line, frozenset()) | frozenset(rules)
        index.by_line[line] = merged
    return index

"""DET006: the whole-repo registry of constant substream key paths.

:func:`repro.core.rng.substream` guarantees stream independence only
when every component derives a *distinct* key path.  Two call sites that
spell the same fully-constant path -- say ``substream(seed, "chaos",
"network")`` in two different modules -- silently share one generator:
each site's draws advance the other's stream, and enabling one feature
perturbs the other's replay.  That is exactly the coupling the contract
(rule 3 in :mod:`repro.core.rng`) forbids, and it is invisible to any
single-file check.

The per-module collector (:class:`repro.lint.rules.Det006KeyCollector`)
records every ``substream``/``derive_seed`` call whose key arguments are
all literals; this module groups the sites across the whole linted tree
and reports every member of a duplicated group, cross-referencing the
other sites.  Paths with a non-literal tail (``substream(seed,
"requests", model.name, ...)``) are not registered: their dynamic
components are expected to disambiguate them, which the byte-identity
tests verify dynamically.
"""

from __future__ import annotations

from repro.lint.findings import Finding
from repro.lint.rules import SubstreamKeySite


def collision_findings(sites: list[SubstreamKeySite]) -> list[Finding]:
    """Findings for every site whose constant key path is duplicated.

    A "duplicate" is the same key tuple at two or more distinct
    ``(path, line)`` locations -- cross-file or within one file; both
    spellings create one shared stream.
    """
    groups: dict[tuple[str, ...], list[SubstreamKeySite]] = {}
    for site in sites:
        groups.setdefault(site.keys, []).append(site)
    findings: list[Finding] = []
    for keys, members in groups.items():
        locations = sorted({(site.path, site.line) for site in members})
        if len(locations) < 2:
            continue
        rendered_path = ", ".join(keys)
        for site in members:
            others = ", ".join(
                f"{path}:{line}"
                for path, line in locations
                if (path, line) != (site.path, site.line)
            )
            findings.append(
                Finding(
                    rule="DET006",
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        f"substream key path ({rendered_path}) is also "
                        f"derived at {others}: the call sites share one "
                        "stream and perturb each other's draws"
                    ),
                    suggestion=(
                        "give each component a unique constant key prefix "
                        "(e.g. include the component name in the path)"
                    ),
                )
            )
    return findings

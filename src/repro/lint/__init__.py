"""Static enforcement of the determinism contract (``repro lint``).

Every result this repository reproduces rests on the contract documented
in :mod:`repro.core.rng`: byte-identical replays across serial/parallel
sweeps, FULL/AGGREGATE trace modes, and chaos-on/chaos-off baselines.
The regression tests enforce that contract *dynamically* -- they catch a
violation only on the inputs they happen to replay.  This package
enforces it *statically*: an ``ast``-based pass (no third-party
dependencies) that rejects known determinism hazards at review time,
before a sweep can silently diverge.

The rule set (see :data:`repro.lint.rules.RULES` for the registry):

======  ==============================================================
DET000  malformed ``detlint`` suppression comment / unparseable file
DET001  stdlib ``random`` or ``np.random`` global-state draws
DET002  unseeded ``np.random.default_rng()`` / ``Generator`` outside
        :func:`repro.core.rng.substream`
DET003  wall-clock reads (``time.time``, ``perf_counter``,
        ``datetime.now``, ...) in replayed code
DET004  RNG draws / ``substream()`` derivation inside iteration over
        unordered collections (set literals, un-``sorted`` dict views,
        ``os.listdir`` / ``glob``)
DET005  builtin salted ``hash()`` used where a seed or substream key
        could flow (use :func:`repro.core.rng.derive_seed`)
DET006  two call sites deriving the *same* fully-constant substream
        key path (whole-repo registry; cross-file)
DET007  ``os.environ`` / ``os.getenv`` reads inside the simulation
        core (``repro.simulation``, ``repro.serving``, ``repro.chaos``)
======  ==============================================================

Findings can be silenced two ways, both auditable:

* a path-scoped allowlist entry (:class:`repro.lint.config.AllowRule`),
  e.g. the default ``DET003 -> benchmarks/*`` entry -- the perf harness
  times wall-clock by design; or
* an inline ``# detlint: disable=DETnnn -- <reason>`` comment on the
  offending line.  The reason is *mandatory*: a suppression without one
  is itself reported (DET000) and does not suppress anything.

Entry points: :func:`lint_paths` (library), ``repro lint [paths]``
(CLI; exit 1 on findings), and the self-lint gate in
``tests/test_lint.py`` which keeps ``src/`` clean in CI.
"""

from __future__ import annotations

from repro.lint.config import AllowRule, DEFAULT_ALLOWLIST, LintConfig
from repro.lint.findings import Finding
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import RULES, Rule
from repro.lint.runner import LintReport, discover_files, lint_paths, lint_source

__all__ = [
    "AllowRule",
    "DEFAULT_ALLOWLIST",
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "Rule",
    "discover_files",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]

"""Text and JSON renderings of a :class:`~repro.lint.runner.LintReport`.

Both reporters consume the same sorted finding list, so the terminal
output and the CI artifact always agree.  The JSON payload is versioned
(``"version": 1``) and key-sorted, making it diffable across commits the
same way ``results/BENCH_throughput.json`` is.
"""

from __future__ import annotations

import json

from repro.lint.runner import LintReport
from repro.lint.rules import RULES


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    if report.findings:
        lines.append("")
        for rule_id, count in report.counts.items():
            title = RULES[rule_id].title if rule_id in RULES else "unknown rule"
            lines.append(f"{rule_id} ({title}): {count}")
        lines.append(
            f"{len(report.findings)} finding(s) in {len(report.files)} file(s)"
        )
    else:
        lines.append(
            f"determinism lint clean: {len(report.files)} file(s), 0 findings"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the ``--format json`` / CI artifact form)."""
    payload = {
        "version": 1,
        "files_linted": len(report.files),
        "counts": report.counts,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

"""Path-scoped allowlists for the determinism linter.

An :class:`AllowRule` exempts one rule id under one ``fnmatch`` glob
(matched against the ``/``-normalized path the linter reports).  Unlike
an inline ``# detlint: disable`` comment -- which vouches for one line
-- an allowlist entry vouches for a whole subtree, so it is reserved for
code that is *categorically* outside the replayed world.

The default allowlist ships exactly one entry: DET003 (wall-clock reads)
under ``benchmarks/*``.  The perf harness times real elapsed seconds by
design; everything else that reads a clock must justify itself inline
(see the reasoned suppression in ``repro/analysis/bench.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase


@dataclass(frozen=True)
class AllowRule:
    """Exempt ``rule`` for every path matching the ``pattern`` glob."""

    rule: str
    pattern: str

    @staticmethod
    def parse(spec: str) -> "AllowRule":
        """Parse the CLI spelling ``DETnnn:<glob>``."""
        rule, sep, pattern = spec.partition(":")
        if not sep or not rule.strip() or not pattern.strip():
            raise ValueError(
                f"bad --allow spec {spec!r}: expected 'DETnnn:<path glob>'"
            )
        return AllowRule(rule.strip(), pattern.strip())


DEFAULT_ALLOWLIST: tuple[AllowRule, ...] = (
    # The throughput benchmarks measure real wall-clock by definition.
    AllowRule("DET003", "benchmarks/*"),
)


@dataclass(frozen=True)
class LintConfig:
    """Linter configuration: which findings are allowlisted away."""

    allowlist: tuple[AllowRule, ...] = DEFAULT_ALLOWLIST

    def allows(self, rule: str, path: str) -> bool:
        """True when ``rule`` at ``path`` is exempted by the allowlist."""
        return any(
            entry.rule == rule and fnmatchcase(path, entry.pattern)
            for entry in self.allowlist
        )

    def with_extra(self, extra: tuple[AllowRule, ...]) -> "LintConfig":
        return LintConfig(allowlist=self.allowlist + extra)

"""Determinism-hazard rules: the registry and the per-module AST checkers.

Each rule is a small :class:`ast.NodeVisitor` (no third-party
dependencies) over one module's tree, sharing a :class:`ModuleContext`
that resolves names through the module's import aliases -- so
``np.random.seed``, ``numpy.random.seed`` and
``from numpy.random import seed`` all canonicalize to the same dotted
name before matching.  DET006 is the one cross-file rule; its per-module
collector lives here but the collision check is in
:mod:`repro.lint.registry`.

Static analysis is necessarily approximate.  The rules are tuned to the
contract in :mod:`repro.core.rng`: they over-approximate where a miss
would be silent corruption (any ``hash()`` call is suspect in a replayed
system) and under-approximate where the pattern cannot be recognized
reliably (a generator hidden behind an arbitrary variable name).  What a
rule cannot see, the byte-identity regression tests still catch; what it
can see, it rejects before the sweep ever runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.findings import Finding

# ---------------------------------------------------------------------------
# Registry


@dataclass(frozen=True)
class Rule:
    """One determinism rule: id, short title, and the hazard it rejects."""

    id: str
    title: str
    rationale: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "DET000",
            "malformed suppression / unparseable file",
            "a detlint directive without a reason (or with an unknown rule "
            "id) suppresses nothing; a file that does not parse cannot be "
            "checked",
        ),
        Rule(
            "DET001",
            "global-state RNG",
            "the stdlib `random` module and `np.random.*` module-level "
            "functions share hidden global state; any import-order or "
            "call-order change silently reshuffles every draw",
        ),
        Rule(
            "DET002",
            "unseeded generator construction",
            "`np.random.default_rng()` with no seed draws from OS entropy; "
            "every replay differs by construction",
        ),
        Rule(
            "DET003",
            "wall-clock read",
            "`time.time()`/`perf_counter()`/`datetime.now()` read the host "
            "clock; replayed code must take time from the simulation engine",
        ),
        Rule(
            "DET004",
            "RNG draw under unordered iteration",
            "drawing (or deriving a substream) inside iteration over a set, "
            "an un-sorted dict view, or a directory listing makes the draw "
            "order depend on hash seeding or filesystem order",
        ),
        Rule(
            "DET005",
            "builtin hash() in seed/key derivation",
            "`hash()` is salted per process (PYTHONHASHSEED); a seed or "
            "substream key derived from it differs across runs and hosts",
        ),
        Rule(
            "DET006",
            "duplicated substream key path",
            "two call sites deriving the same fully-constant substream key "
            "path share one stream: each site's draws perturb the other's",
        ),
        Rule(
            "DET007",
            "environment read in simulation core",
            "`os.environ` inside repro.simulation / repro.serving / "
            "repro.chaos makes simulated behaviour depend on ambient shell "
            "state that no seed or config captures",
        ),
    )
}

KNOWN_RULE_IDS: frozenset[str] = frozenset(RULES)

#: Module whose job is to own RNG construction (exempt from DET001/002).
_RNG_MODULE_SUFFIX = "repro/core/rng.py"

#: Packages forming the replayed simulation core (DET007 scope).
_SIM_CORE_PACKAGES = ("repro/simulation/", "repro/serving/", "repro/chaos/")

_NP_GLOBAL_STATE_FNS = frozenset(
    {
        "seed", "get_state", "set_state", "rand", "randn", "randint",
        "random", "random_sample", "random_integers", "ranf", "sample",
        "bytes", "choice", "shuffle", "permutation", "beta", "binomial",
        "chisquare", "dirichlet", "exponential", "gamma", "geometric",
        "gumbel", "hypergeometric", "laplace", "logistic", "lognormal",
        "logseries", "multinomial", "multivariate_normal",
        "negative_binomial", "noncentral_chisquare", "noncentral_f",
        "normal", "pareto", "poisson", "power", "rayleigh",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform",
        "vonmises", "wald", "weibull", "zipf",
    }
)

_BIT_GENERATORS = frozenset({"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"})

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "time.clock_gettime", "time.clock_gettime_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

_UNORDERED_PRODUCERS = frozenset(
    {"set", "frozenset", "os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Generator methods that advance stream state when called on an
#: rng-named receiver (DET004's draw heuristic).
_DRAW_METHODS = frozenset(
    {
        "random", "integers", "normal", "standard_normal", "uniform",
        "choice", "shuffle", "permutation", "permuted", "poisson",
        "exponential", "lognormal", "multinomial", "binomial", "gamma",
        "beta", "bytes", "spawn",
    }
)

_SUBSTREAM_FNS = frozenset({"substream", "derive_seed"})


# ---------------------------------------------------------------------------
# Module context / name resolution


@dataclass
class ModuleContext:
    """Per-module state shared by every rule checker."""

    path: str
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, tree: ast.AST, path: str) -> "ModuleContext":
        ctx = cls(path=path)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.asname:
                        ctx.aliases[name.asname] = name.name
                    else:
                        root = name.name.split(".", 1)[0]
                        ctx.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for name in node.names:
                    if name.name == "*":
                        continue
                    bound = name.asname or name.name
                    ctx.aliases[bound] = f"{node.module}.{name.name}"
        return ctx

    @property
    def is_rng_module(self) -> bool:
        return self.path.endswith(_RNG_MODULE_SUFFIX)

    @property
    def in_sim_core(self) -> bool:
        slashed = "/" + self.path
        return any(f"/{pkg}" in slashed for pkg in _SIM_CORE_PACKAGES)

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name for a Name/Attribute chain, or None.

        Resolution follows the module's import aliases; an unimported
        bare name resolves to itself (builtins like ``hash``/``set``).
        """
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def _finding(
    rule: str, ctx: ModuleContext, node: ast.AST, message: str, suggestion: str
) -> Finding:
    line = getattr(node, "lineno", 0)
    col = getattr(node, "col_offset", 0)
    return Finding(
        rule=rule, path=ctx.path, line=line, col=col,
        message=message, suggestion=suggestion,
    )


class _RuleVisitor(ast.NodeVisitor):
    """Base: collects findings for one rule over one module."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []


# ---------------------------------------------------------------------------
# DET001 -- global-state RNG


class Det001GlobalRng(_RuleVisitor):
    _SUGGESTION = (
        "draw from a named substream: repro.core.rng.substream(seed, ...)"
    )

    def visit_Import(self, node: ast.Import) -> None:
        for name in node.names:
            if name.name == "random" or name.name.startswith("random."):
                self.findings.append(
                    _finding(
                        "DET001", self.ctx, node,
                        "import of the stdlib `random` module (hidden global "
                        "state, salted by interpreter startup)",
                        self._SUGGESTION,
                    )
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not node.level and node.module and (
            node.module == "random" or node.module.startswith("random.")
        ):
            self.findings.append(
                _finding(
                    "DET001", self.ctx, node,
                    "import from the stdlib `random` module",
                    self._SUGGESTION,
                )
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if resolved:
            head, _, tail = resolved.rpartition(".")
            if head == "random":
                self.findings.append(
                    _finding(
                        "DET001", self.ctx, node,
                        f"call to stdlib random.{tail}() (global-state RNG)",
                        self._SUGGESTION,
                    )
                )
            elif head == "numpy.random" and tail in _NP_GLOBAL_STATE_FNS:
                self.findings.append(
                    _finding(
                        "DET001", self.ctx, node,
                        f"call to np.random.{tail}() (module-level global "
                        "state shared by every caller)",
                        self._SUGGESTION,
                    )
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET002 -- unseeded generator construction


def _seed_argument_missing(call: ast.Call) -> bool:
    """True when the call passes no seed (or an explicit None seed)."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for keyword in call.keywords:
        if keyword.arg == "seed":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is None
    return True


class Det002UnseededGenerator(_RuleVisitor):
    _SUGGESTION = (
        "construct generators only through substream(seed, ...) so the "
        "stream is a pure function of (root seed, key path)"
    )

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if resolved:
            tail = resolved.rpartition(".")[2]
            if resolved == "numpy.random.default_rng" and _seed_argument_missing(
                node
            ):
                self.findings.append(
                    _finding(
                        "DET002", self.ctx, node,
                        "unseeded np.random.default_rng() draws from OS "
                        "entropy; no two replays match",
                        self._SUGGESTION,
                    )
                )
            elif tail == "Generator" and resolved.startswith("numpy.random"):
                # An unseeded bit generator *argument* is flagged by the
                # branch below when its own Call node is visited.
                if not node.args:
                    self.findings.append(
                        _finding(
                            "DET002", self.ctx, node,
                            "np.random.Generator constructed without a bit "
                            "generator",
                            self._SUGGESTION,
                        )
                    )
            elif tail in _BIT_GENERATORS and _seed_argument_missing(node):
                self.findings.append(
                    _finding(
                        "DET002", self.ctx, node,
                        f"unseeded bit generator {tail}()",
                        self._SUGGESTION,
                    )
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET003 -- wall-clock reads


class Det003WallClock(_RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if resolved in _WALL_CLOCK_CALLS:
            self.findings.append(
                _finding(
                    "DET003", self.ctx, node,
                    f"wall-clock read {resolved}() in replayed code",
                    "take time from the simulation engine (engine.now) or "
                    "suppress with a reason if the timestamp is genuinely "
                    "about the host",
                )
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET004 -- RNG draws under unordered iteration


class Det004UnorderedIteration(_RuleVisitor):
    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._unordered_stack: list[str] = []

    # -- unordered-iterable classification --------------------------------
    def _unordered_reason(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            resolved = self.ctx.resolve(node.func)
            if resolved == "sorted":
                return None  # sorted() imposes a total order
            if resolved in {"enumerate", "list", "tuple", "reversed"}:
                if node.args:
                    return self._unordered_reason(node.args[0])
                return None
            if resolved in _UNORDERED_PRODUCERS:
                return f"{resolved}()"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _DICT_VIEW_METHODS
            ):
                return f"an un-sorted dict .{node.func.attr}() view"
        return None

    # -- draw classification ----------------------------------------------
    def _draw_description(self, node: ast.Call) -> str | None:
        resolved = self.ctx.resolve(node.func)
        if resolved and resolved.rpartition(".")[2] in _SUBSTREAM_FNS:
            return f"{resolved.rpartition('.')[2]}() substream derivation"
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _DRAW_METHODS:
            receiver: str | None = None
            if isinstance(func.value, ast.Name):
                receiver = func.value.id
            elif isinstance(func.value, ast.Attribute):
                receiver = func.value.attr
            if receiver and "rng" in receiver.lower():
                return f"{receiver}.{func.attr}() draw"
        return None

    # -- traversal ---------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self.visit(node.target)
        reason = self._unordered_reason(node.iter)
        if reason:
            self._unordered_stack.append(reason)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        if reason:
            self._unordered_stack.pop()

    visit_AsyncFor = visit_For  # type: ignore[assignment, method-assign]

    def _visit_comprehension(
        self, node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp
    ) -> None:
        pushed = 0
        for generator in node.generators:
            self.visit(generator.iter)
            self.visit(generator.target)
            reason = self._unordered_reason(generator.iter)
            if reason:
                self._unordered_stack.append(reason)
                pushed += 1
            for condition in generator.ifs:
                self.visit(condition)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        for _ in range(pushed):
            self._unordered_stack.pop()

    visit_ListComp = _visit_comprehension  # type: ignore[assignment, method-assign]
    visit_SetComp = _visit_comprehension  # type: ignore[assignment, method-assign]
    visit_GeneratorExp = _visit_comprehension  # type: ignore[assignment, method-assign]
    visit_DictComp = _visit_comprehension  # type: ignore[assignment, method-assign]

    def visit_Call(self, node: ast.Call) -> None:
        if self._unordered_stack:
            description = self._draw_description(node)
            if description:
                self.findings.append(
                    _finding(
                        "DET004", self.ctx, node,
                        f"{description} inside iteration over "
                        f"{self._unordered_stack[-1]}: draw order is not "
                        "part of the replay schedule",
                        "iterate a sorted() or otherwise deterministic "
                        "sequence, or hoist the draw out of the loop",
                    )
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET005 -- builtin hash()


class Det005SaltedHash(_RuleVisitor):
    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._function_stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment, method-assign]

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and self.ctx.resolve(node.func) == "hash"
            and "__hash__" not in self._function_stack
        ):
            self.findings.append(
                _finding(
                    "DET005", self.ctx, node,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); anything derived from it -- a seed, "
                    "a substream key, a shard assignment -- differs across "
                    "runs",
                    "derive seeds with repro.core.rng.derive_seed (SHA-256) "
                    "or use hashlib directly",
                )
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET006 -- substream key-path collection (cross-file check in registry.py)


@dataclass(frozen=True)
class SubstreamKeySite:
    """One fully-constant ``substream``/``derive_seed`` key path."""

    keys: tuple[str, ...]
    path: str
    line: int
    col: int


class Det006KeyCollector(_RuleVisitor):
    """Collects fully-constant key paths; emits no findings itself."""

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self.sites: list[SubstreamKeySite] = []

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.resolve(node.func)
        if (
            resolved
            and resolved.rpartition(".")[2] in _SUBSTREAM_FNS
            and len(node.args) >= 2
        ):
            keys: list[str] = []
            fully_constant = True
            for argument in node.args[1:]:
                if isinstance(argument, ast.Constant):
                    keys.append(repr(argument.value))
                else:
                    fully_constant = False
                    break
            if fully_constant and keys:
                self.sites.append(
                    SubstreamKeySite(
                        keys=tuple(keys), path=self.ctx.path,
                        line=node.lineno, col=node.col_offset,
                    )
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET007 -- environment reads in the simulation core


class Det007EnvironRead(_RuleVisitor):
    _SUGGESTION = (
        "thread the knob through an explicit config object "
        "(ServingConfig / SuiteSettings) so replays capture it"
    )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.ctx.resolve(node) == "os.environ":
            self.findings.append(
                _finding(
                    "DET007", self.ctx, node,
                    "os.environ read inside the simulation core",
                    self._SUGGESTION,
                )
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # `from os import environ` binds a bare name.
        if self.ctx.resolve(node) == "os.environ":
            self.findings.append(
                _finding(
                    "DET007", self.ctx, node,
                    "os.environ read inside the simulation core",
                    self._SUGGESTION,
                )
            )

    def visit_Call(self, node: ast.Call) -> None:
        if self.ctx.resolve(node.func) == "os.getenv":
            self.findings.append(
                _finding(
                    "DET007", self.ctx, node,
                    "os.getenv() read inside the simulation core",
                    self._SUGGESTION,
                )
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Per-module entry point


def check_module(
    tree: ast.AST, ctx: ModuleContext
) -> tuple[list[Finding], list[SubstreamKeySite]]:
    """Run every per-module rule; return (findings, DET006 key sites).

    DET001/DET002 are skipped inside ``repro/core/rng.py`` -- that module
    *is* the sanctioned constructor.  DET007 only applies inside the
    simulation-core packages.
    """
    visitors: list[_RuleVisitor] = [
        Det003WallClock(ctx),
        Det004UnorderedIteration(ctx),
        Det005SaltedHash(ctx),
    ]
    if not ctx.is_rng_module:
        visitors.append(Det001GlobalRng(ctx))
        visitors.append(Det002UnseededGenerator(ctx))
    if ctx.in_sim_core:
        visitors.append(Det007EnvironRead(ctx))
    collector = Det006KeyCollector(ctx)
    visitors.append(collector)
    findings: list[Finding] = []
    for visitor in visitors:
        visitor.visit(tree)
        findings.extend(visitor.findings)
    return findings, collector.sites

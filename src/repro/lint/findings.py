"""The determinism linter's finding model.

A :class:`Finding` is one concrete contract hazard at one source
location.  Findings are value objects: frozen, ordered by location, and
rendered identically by every reporter -- the text and JSON outputs are
two views of the same tuple stream, so CI artifacts and terminal output
cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One determinism-contract violation at one source location."""

    rule: str
    #: Path as given to the linter, normalized to ``/`` separators.
    path: str
    #: 1-based line of the offending node (suppressions attach here).
    line: int
    #: 0-based column, as reported by ``ast``.
    col: int
    message: str
    #: Actionable fix, e.g. "draw from substream(seed, ...) instead".
    suggestion: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        """One-line ``path:line:col: RULE message (suggestion)`` form."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.suggestion:
            text += f" [fix: {self.suggestion}]"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-reporter payload (stable key set; see reporters.py)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suggestion": self.suggestion,
        }

"""File discovery and the lint pipeline (``lint_paths``).

The runner is itself held to the contract it enforces: file discovery
walks directories in sorted order (``os.walk`` with sorted ``dirs`` /
``files``), so the finding list -- and therefore the CI artifact -- is
byte-identical no matter what order the filesystem returns entries in.

Pipeline per file: parse -> index suppressions -> run the per-module
rules -> collect DET006 key sites.  Then, across all files: resolve
DET006 collisions, drop allowlisted findings, drop findings with a
valid same-line suppression, and sort.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.registry import collision_findings
from repro.lint.rules import (
    KNOWN_RULE_IDS,
    ModuleContext,
    SubstreamKeySite,
    check_module,
)
from repro.lint.suppress import META_RULE, parse_suppressions


@dataclass
class LintReport:
    """Outcome of one lint run: surviving findings + what was scanned."""

    findings: list[Finding] = field(default_factory=list)
    files: list[str] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for finding in self.findings:
            totals[finding.rule] = totals.get(finding.rule, 0) + 1
        return dict(sorted(totals.items()))

    @property
    def clean(self) -> bool:
        return not self.findings


def _normalize(path: str) -> str:
    return os.path.normpath(path).replace(os.sep, "/")


def discover_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    found: list[str] = []
    seen: set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        candidate = _normalize(os.path.join(root, name))
                        if candidate not in seen:
                            seen.add(candidate)
                            found.append(candidate)
        else:
            candidate = _normalize(path)
            if candidate not in seen:
                seen.add(candidate)
                found.append(candidate)
    return found


def _lint_module(
    source: str, path: str
) -> tuple[list[Finding], list[SubstreamKeySite], dict[int, frozenset[str]]]:
    """Single-file pass: findings (suppressions applied, allowlist not),
    DET006 key sites, and the line -> suppressed-rules map (so the
    cross-file pass can honour suppressions on DET006 sites too)."""
    normalized = _normalize(path)
    suppressions = parse_suppressions(source, normalized, KNOWN_RULE_IDS)
    try:
        tree = ast.parse(source, filename=normalized)
    except SyntaxError as error:
        parse_failure = Finding(
            rule=META_RULE,
            path=normalized,
            line=error.lineno or 0,
            col=(error.offset or 1) - 1,
            message=f"file does not parse: {error.msg}",
            suggestion="fix the syntax error so the file can be checked",
        )
        return [parse_failure, *suppressions.errors], [], {}
    ctx = ModuleContext.from_tree(tree, normalized)
    findings, sites = check_module(tree, ctx)
    kept = [finding for finding in findings if not suppressions.suppresses(finding)]
    kept.extend(suppressions.errors)
    return kept, sites, suppressions.by_line


def lint_source(
    source: str, path: str, config: LintConfig | None = None
) -> tuple[list[Finding], list[SubstreamKeySite]]:
    """Lint one module's source text (single-file rules only).

    Returns the per-module findings (suppressions applied, allowlist
    applied when a ``config`` is given) and the module's DET006 key
    sites for cross-file resolution.
    """
    kept, sites, _ = _lint_module(source, path)
    if config is not None:
        kept = [f for f in kept if not config.allows(f.rule, f.path)]
    return kept, sites


def lint_paths(paths: list[str], config: LintConfig | None = None) -> LintReport:
    """Lint files/directories; the public entry point behind ``repro lint``."""
    config = config or LintConfig()
    report = LintReport(files=discover_files(paths))
    all_sites: list[SubstreamKeySite] = []
    suppressed_lines: dict[str, dict[int, frozenset[str]]] = {}
    for path in report.files:
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            report.findings.append(
                Finding(
                    rule=META_RULE, path=path, line=0, col=0,
                    message=f"cannot read file: {error}",
                    suggestion="check the path passed to repro lint",
                )
            )
            continue
        findings, sites, by_line = _lint_module(source, path)
        suppressed_lines[path] = by_line
        report.findings.extend(findings)
        all_sites.extend(sites)
    # Cross-file DET006 pass: collisions honour the same suppression and
    # allowlist machinery as every single-file rule.
    for finding in collision_findings(all_sites):
        if finding.rule in suppressed_lines.get(finding.path, {}).get(
            finding.line, frozenset()
        ):
            continue
        report.findings.append(finding)
    report.findings = [
        finding
        for finding in report.findings
        if not config.allows(finding.rule, finding.path)
    ]
    report.findings.sort(key=Finding.sort_key)
    return report

"""Server platform specifications (paper Section V-B).

Two server classes are characterized in the paper:

* **SC-Large** -- a typical large data-center server: 256 GB DRAM, two
  20-core CPUs, higher clocks and more network bandwidth.
* **SC-Small** -- a typical efficient web server: 64 GB DRAM, two slower
  18-core CPUs, and less network bandwidth.

The key modeling detail behind the paper's Figure 15 is that embedding
lookups are bound by DRAM *access latency* (pointer-chase style gathers),
which is nearly identical across the two classes, while dense compute
scales with core clock.  The specs below encode that distinction.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.types import GIB


@dataclass(frozen=True)
class Platform:
    """Hardware description consumed by the cost model.

    Attributes:
        name: Display name.
        cores: Worker cores available to the serving process.
        dram_capacity: Usable DRAM for model parameters, in bytes.
        clock_ghz: Core clock; scales dense/serde compute throughput.
        mem_bandwidth: Streaming DRAM bandwidth in bytes/second.
        dram_access_ns: Random-access latency for one dependent cache-line
            fetch, in nanoseconds.  Dominates embedding-lookup cost and is
            roughly platform-independent across the two classes.
        nic_bandwidth: Network interface bandwidth in bytes/second.
    """

    name: str
    cores: int
    dram_capacity: float
    clock_ghz: float
    mem_bandwidth: float
    dram_access_ns: float
    nic_bandwidth: float

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError(
                f"platform {self.name!r}: cores must be >= 1, got {self.cores!r}"
            )
        for attr in ("dram_capacity", "clock_ghz", "mem_bandwidth", "nic_bandwidth"):
            value = getattr(self, attr)
            if not float(value) > 0.0:  # also rejects NaN
                raise ValueError(
                    f"platform {self.name!r}: {attr} must be positive, got {value!r}"
                )
        if not float(self.dram_access_ns) >= 0.0:
            raise ValueError(
                f"platform {self.name!r}: dram_access_ns must be non-negative, "
                f"got {self.dram_access_ns!r}"
            )

    @functools.cached_property
    def relative_clock(self) -> float:
        """Clock relative to SC-Large; scales CPU-bound cost terms."""
        return self.clock_ghz / SC_LARGE.clock_ghz


SC_LARGE = Platform(
    name="SC-Large",
    cores=40,
    dram_capacity=256 * GIB,
    clock_ghz=2.5,
    mem_bandwidth=85e9,
    dram_access_ns=78.0,
    nic_bandwidth=3.125e9,  # 25 Gbps
)

SC_SMALL = Platform(
    name="SC-Small",
    cores=36,
    dram_capacity=64 * GIB,
    clock_ghz=2.0,
    mem_bandwidth=60e9,
    dram_access_ns=82.0,
    nic_bandwidth=1.25e9,  # 10 Gbps
)

PLATFORMS = {platform.name: platform for platform in (SC_LARGE, SC_SMALL)}

"""Discrete-event simulation substrate: kernel, platforms, network, costs."""

from repro.simulation.engine import (
    DEFAULT_KERNEL,
    KERNELS,
    AllOf,
    AnyOf,
    At,
    BatchedEngine,
    Engine,
    Event,
    Process,
    Resource,
    SimulationError,
    SyncResource,
    Timeout,
    make_engine,
)
from repro.simulation.network import Fabric, FabricSpec
from repro.simulation.platform import PLATFORMS, SC_LARGE, SC_SMALL, Platform

__all__ = [
    "AllOf",
    "AnyOf",
    "At",
    "BatchedEngine",
    "DEFAULT_KERNEL",
    "Engine",
    "Event",
    "Fabric",
    "FabricSpec",
    "KERNELS",
    "PLATFORMS",
    "Platform",
    "Process",
    "Resource",
    "SC_LARGE",
    "SC_SMALL",
    "SimulationError",
    "SyncResource",
    "Timeout",
    "make_engine",
]

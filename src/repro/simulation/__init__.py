"""Discrete-event simulation substrate: kernel, platforms, network, costs."""

from repro.simulation.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Process,
    Resource,
    SimulationError,
    Timeout,
)
from repro.simulation.network import Fabric, FabricSpec
from repro.simulation.platform import PLATFORMS, SC_LARGE, SC_SMALL, Platform

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Fabric",
    "FabricSpec",
    "PLATFORMS",
    "Platform",
    "Process",
    "Resource",
    "SC_LARGE",
    "SC_SMALL",
    "SimulationError",
    "Timeout",
]

"""Data-center network fabric model.

All inter-shard communication in the paper travels over the standard TCP/IP
stack on the data-center intranet (Section III-C), and the measured
"network latency" bucket includes in-kernel packet processing and
forwarding time (Section VI-B2).  The fabric model therefore charges each
message:

``delay = propagation + kernel + size / min(src_nic, dst_nic) + jitter``

where jitter is lognormal -- long-tailed, as observed in production
fabrics -- and is drawn from a per-fabric seeded stream so experiment runs
are reproducible.  Per-server clock skew is modeled separately (servers
stamp trace points with skewed wall clocks; see :mod:`repro.tracing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import substream
from repro.core.types import US
from repro.simulation.platform import Platform


@dataclass(frozen=True)
class FabricSpec:
    """Tunable parameters of the fabric latency distribution."""

    propagation: float = 15 * US
    """One-way propagation + switching delay between racks."""

    kernel_overhead: float = 8 * US
    """In-kernel packet processing at the two endpoints (combined)."""

    jitter_median: float = 6 * US
    """Median of the lognormal jitter term."""

    jitter_sigma: float = 0.55
    """Log-scale sigma of the jitter term (controls the tail)."""

    def __post_init__(self):
        for name in ("propagation", "kernel_overhead", "jitter_median", "jitter_sigma"):
            value = getattr(self, name)
            if not float(value) >= 0.0:  # also rejects NaN
                raise ValueError(
                    f"FabricSpec.{name} must be non-negative, got {value!r}"
                )


class Fabric:
    """Samples one-way message delays between servers."""

    #: Jitter factors drawn per refill.  A bulk ``normal(size=N)`` draw
    #: consumes the generator's bit stream exactly like ``N`` sequential
    #: scalar draws (the same property the vectorized request generator
    #: relies on), so buffering only changes *when* bits are consumed from
    #: this dedicated substream -- never which jitter a message sees.
    _JITTER_BATCH = 4096

    def __init__(self, spec: FabricSpec | None = None, seed: int = 0):
        self.spec = spec or FabricSpec()
        self._rng = substream(seed, "fabric")
        self._jitter_factors = np.empty(0)
        self._jitter_pos = 0

    def _refill_jitter(self) -> None:
        self._jitter_factors = np.exp(
            self._rng.normal(0.0, self.spec.jitter_sigma, size=self._JITTER_BATCH)
        )
        self._jitter_pos = 0

    def one_way_delay(self, src: Platform, dst: Platform, nbytes: float) -> float:
        """Sample the one-way delay for an ``nbytes`` message src -> dst."""
        spec = self.spec
        wire = nbytes / min(src.nic_bandwidth, dst.nic_bandwidth)
        pos = self._jitter_pos
        if pos >= len(self._jitter_factors):
            self._refill_jitter()
            pos = 0
        self._jitter_pos = pos + 1
        jitter = spec.jitter_median * float(self._jitter_factors[pos])
        return spec.propagation + spec.kernel_overhead + wire + jitter

    def next_zero_byte_delay(self) -> float:
        """Next zero-byte one-way delay, platform-independent.

        Identical stream, order, and float expression to
        ``one_way_delay(src, dst, 0.0)`` (the wire term of an empty
        message is ``0.0`` regardless of NIC bandwidths), minus the
        per-call platform lookups -- the vectorized replay kernel's
        inlined variant.  Interleaving calls with :meth:`one_way_delay`
        is well-defined: both consume the same buffered factors in call
        order.
        """
        spec = self.spec
        pos = self._jitter_pos
        if pos >= len(self._jitter_factors):
            self._refill_jitter()
            pos = 0
        self._jitter_pos = pos + 1
        jitter = spec.jitter_median * float(self._jitter_factors[pos])
        return spec.propagation + spec.kernel_overhead + 0.0 + jitter

    def drain_zero_byte_delays(self) -> list[float]:
        """Consume the rest of the jitter buffer as zero-byte delays.

        The vectorized kernel's bulk accessor: refills if the buffer is
        exhausted, converts every remaining factor to the zero-byte
        delay :meth:`next_zero_byte_delay` would have returned for it
        (elementwise, so each float is bitwise identical to the scalar
        call), and marks the buffer consumed.  Successive drains walk
        the substream exactly like successive scalar draws.
        """
        if self._jitter_pos >= len(self._jitter_factors):
            self._refill_jitter()
        spec = self.spec
        base = spec.propagation + spec.kernel_overhead + 0.0
        out = (
            base + spec.jitter_median * self._jitter_factors[self._jitter_pos:]
        ).tolist()
        self._jitter_pos = len(self._jitter_factors)
        return out

    def expected_floor(self) -> float:
        """Deterministic lower bound of a zero-byte message delay."""
        return self.spec.propagation + self.spec.kernel_overhead

"""Calibrated cost model for serving-stack and operator work.

Every timing the simulator charges comes from here, so the calibration
story lives in one place.  The paper publishes no absolute times (all of
its figures are normalized), so constants below are set to produce the
*relationships* the paper reports -- see DESIGN.md section 5 -- with
magnitudes representative of commodity data-center serving:

* embedding lookups are DRAM-latency bound (dependent cache-line chains),
  nearly platform-independent (paper Fig. 15);
* serialization scales with bytes and with core clock;
* each RPC costs fixed service/handler/scheduling time on both sides --
  the "constant overheads" that dominate once shards multiply (Sec. VI-B2);
* dense operator cost comes from each net's config and scales with clock.

All returned times are seconds on one core.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.core.types import NS, US
from repro.models.config import FeatureScope, NetConfig, TableConfig
from repro.simulation.platform import Platform


def _sls_per_id(
    table: TableConfig, platform: Platform, overlap: float, dequant: float
) -> float:
    """Per-id lookup cost.  Deliberately not memoized: hashing the frozen
    dataclass keys costs more than these few multiplications."""
    lines = max(1, -(-int(table.dim * table.dtype.bytes_per_element) // 64))
    chain = platform.dram_access_ns * NS * lines * overlap
    extra = dequant if table.dtype.row_overhead_bytes else 0.0
    return chain + extra


@dataclass(frozen=True)
class CostModel:
    """Tunable constants for the serving cost model."""

    # -- serialization ----------------------------------------------------
    serde_fixed: float = 1.2 * US
    """Per-message fixed serde cost (framing, allocation)."""

    serde_per_table: float = 1.6 * US
    """Shard-side per-feature (de)serialization cost: each table's ids and
    pooled vectors travel as a nested Thrift struct, and struct building --
    not raw bytes -- dominates RPC serde.  This is the shard-side cost that
    sharding parallelizes, and it scales with the number of *active*
    features, which is how input sparsity drives distributed-inference
    overheads (paper abstract, Section VI)."""

    client_serde_per_table: float = 0.3 * US
    """Main-shard per-feature serde cost.  Cheaper than the shard side:
    the async RPC client serializes id lists without copies and
    deserializes responses into zero-copy tensor views."""

    serde_bytes_per_sec: float = 5.0e9
    """Serde throughput at the SC-Large reference clock."""

    # -- service handler ----------------------------------------------------
    request_handler_fixed: float = 40 * US
    """Main-shard Thrift handler work per ranking request."""

    response_handler_fixed: float = 18 * US
    """Main-shard response assembly per ranking request."""

    rpc_service_fixed: float = 26 * US
    """Sparse-shard Thrift service boilerplate per RPC."""

    rpc_dispatch_fixed: float = 1.8 * US
    """Main-shard cost to schedule/book-keep one async RPC op."""

    io_threads: int = 4
    """IO threads per server: async RPC responses are deserialized here,
    off the request workers, overlapping the remaining RPC waits."""

    fill_per_table: float = 0.2 * US
    """Main-shard zero-fill for a remote table absent from the request
    (the sparsity optimization skips its lookup; downstream layers still
    need a zero blob)."""

    # -- ML framework -------------------------------------------------------
    net_overhead_fixed: float = 8 * US
    """Caffe2 net setup/teardown per net execution."""

    net_overhead_per_op: float = 0.12 * US
    """Per-operator scheduling cost within a net."""

    # -- sparse operators ---------------------------------------------------
    sls_dispatch_per_table: float = 0.5 * US
    """SLS operator dispatch per table (even when the lookup is empty)."""

    sls_dram_overlap: float = 0.45
    """Fraction of the dependent-cache-line chain not hidden by MLP."""

    # -- dense split ----------------------------------------------------------
    dense_pre_fraction: float = 0.5
    """Share of a net's dense work before the sparse join (bottom MLP)."""

    # -- compressed-table execution -------------------------------------------
    dequant_per_id: float = 0.035 * US
    """Extra ALU work per lookup id for quantized rows (Table III)."""

    def __post_init__(self):
        # Every constant above is a cost or a count: a negative (or NaN)
        # value would surface as a negative delay deep inside the DES.
        # Fail at construction with the offending field named instead.
        for spec in fields(self):
            value = getattr(self, spec.name)
            if not float(value) >= 0.0:  # also rejects NaN
                raise ValueError(
                    f"CostModel.{spec.name} must be non-negative, got {value!r}"
                )
        if not self.serde_bytes_per_sec > 0.0:
            raise ValueError(
                f"CostModel.serde_bytes_per_sec must be positive, got "
                f"{self.serde_bytes_per_sec!r}"
            )
        if self.io_threads < 1:
            raise ValueError(
                f"CostModel.io_threads must be >= 1, got {self.io_threads!r}"
            )
        if not 0.0 <= self.dense_pre_fraction <= 1.0:
            raise ValueError(
                f"CostModel.dense_pre_fraction must be within [0, 1], got "
                f"{self.dense_pre_fraction!r}"
            )

    # ------------------------------------------------------------------------
    def serde_time(
        self,
        nbytes: float,
        platform: Platform,
        tables: int = 0,
        client_side: bool = False,
    ) -> float:
        """(De)serialization of an ``nbytes`` message carrying ``tables``
        per-feature structs; ``client_side`` selects the cheaper zero-copy
        path of the async RPC client."""
        per_table = self.client_serde_per_table if client_side else self.serde_per_table
        return (
            self.serde_fixed
            + (per_table * tables) / platform.relative_clock
            + nbytes / (self.serde_bytes_per_sec * platform.relative_clock)
        )

    def dense_time(self, net: NetConfig, items: int, platform: Platform) -> float:
        """One batch's non-sparse operator time for ``net``."""
        micros = net.dense_us_fixed + net.dense_us_per_item * items
        return micros * US / platform.relative_clock

    def sls_per_id(self, table: TableConfig, platform: Platform) -> float:
        """Cost of one pooled lookup id: a dependent cache-line chain."""
        return _sls_per_id(table, platform, self.sls_dram_overlap, self.dequant_per_id)

    def sls_time(
        self,
        lookups: list[tuple[TableConfig, int]],
        platform: Platform,
        dispatched_tables: int | None = None,
    ) -> float:
        """SLS time for a set of (table, id-count) lookups.

        ``dispatched_tables`` counts operator dispatches (defaults to the
        number of entries); on the singular model every table's op runs
        even when its feature is absent.
        """
        dispatch = self.sls_dispatch_per_table * (
            dispatched_tables if dispatched_tables is not None else len(lookups)
        )
        overlap, dequant = self.sls_dram_overlap, self.dequant_per_id
        gather = 0.0
        for table, count in lookups:
            gather += count * _sls_per_id(table, platform, overlap, dequant)
        return dispatch + gather

    def net_overhead(self, num_ops: int) -> float:
        """Framework overhead for one net execution of ``num_ops`` ops."""
        return self.net_overhead_fixed + self.net_overhead_per_op * num_ops


# -- payload sizing ------------------------------------------------------------

_PER_TABLE_FRAMING = 24.0
_PER_MESSAGE_FRAMING = 64.0


def rpc_request_bytes(lookups: list[tuple[TableConfig, int]], segments: int) -> float:
    """Serialized RPC request: 8-byte ids + 4-byte lengths + framing."""
    ids = sum(count for _, count in lookups)
    return (
        _PER_MESSAGE_FRAMING
        + ids * 8.0
        + len(lookups) * (segments * 4.0 + _PER_TABLE_FRAMING)
    )


def rpc_response_bytes(tables: list[TableConfig], batch_items: int) -> float:
    """Serialized RPC response: pooled fp32 vectors per active table.

    USER-scoped features pool to one vector per request; ITEM-scoped
    features return one vector per candidate item in the batch.  This is
    why response (de)serialization is the dominant parallelizable cost for
    content-heavy nets.
    """
    total = _PER_MESSAGE_FRAMING
    for table in tables:
        rows = batch_items if table.scope is FeatureScope.ITEM else 1
        total += rows * table.dim * 4.0 + _PER_TABLE_FRAMING
    return total


def ranking_response_bytes(num_items: int) -> float:
    """Response to the ranking client: one score + framing per item."""
    return _PER_MESSAGE_FRAMING + 8.0 * num_items

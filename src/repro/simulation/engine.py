"""A minimal discrete-event simulation kernel.

The serving substrate (Section III of the paper) is modeled as a set of
cooperating *processes* -- Python generators that ``yield`` events such as
timeouts, resource acquisitions, or other processes.  The kernel is a small
subset of the SimPy programming model, implemented here so the repository is
self-contained:

* :class:`Engine` owns the event heap and the simulation clock.
* :class:`Event` is a one-shot promise; callbacks run when it triggers.
* :class:`Process` drives a generator, resuming it whenever the event it
  yielded triggers, and is itself an event that triggers on completion.
* :class:`Resource` models a counted resource (e.g. a server's core pool)
  with FIFO queuing.

Determinism: events scheduled for the same timestamp are processed in
insertion order (a monotonic sequence number breaks ties), so repeated runs
with the same seeds produce identical traces.

Fast path: a process may yield a plain ``float``/``int`` delay instead of
an :class:`Timeout`.  The kernel then schedules the generator's resumption
directly -- no Event allocation, no callback registration, no trigger
dispatch -- which roughly halves the per-hop cost of the simulator's hot
loop.  The sequence number is taken at the same point either way, so a
``yield delay`` is scheduled identically to ``yield engine.timeout(delay)``
and replacing one with the other cannot reorder a simulation.
"""

from __future__ import annotations

import heapq
import numbers
from collections import deque
from heapq import heappush
from typing import Any, Callable, Generator, Iterable, Optional, Union

ProcessGenerator = Generator[Union["Event", float, int], Any, Any]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Event:
    """A one-shot occurrence with an optional value.

    Events start *pending*; :meth:`succeed` schedules them to *trigger* at
    the current simulation time, after which their callbacks fire exactly
    once, in registration order.
    """

    __slots__ = ("engine", "callbacks", "_value", "_triggered", "_scheduled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to trigger now, carrying ``value``."""
        if self._scheduled:
            raise SimulationError("event succeeded twice")
        self._value = value
        self._scheduled = True
        self.engine._schedule(0.0, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _trigger(self) -> None:
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self._value = value
        self._scheduled = True
        engine._schedule(delay, self)


class Process(Event):
    """Drives a generator; triggers with the generator's return value."""

    __slots__ = ("_generator", "_step_ref")

    def __init__(self, engine: "Engine", generator: ProcessGenerator):
        super().__init__(engine)
        self._generator = generator
        # The bound ``_step`` is created once and reused: the plain-delay
        # fast path schedules it on every hop, and allocating a fresh
        # bound-method object per hop is measurable in full sweeps.
        self._step_ref = self._step
        # Kick off at the current time (not synchronously) so that process
        # creation order does not leak into execution order mid-callback.
        engine._schedule_call(0.0, self._step_ref)

    def _resume(self, event: Event) -> None:
        self._step(event._value)

    def _step(self, value: Any = None) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self._value = stop.value
            self._scheduled = True
            # Break the self -> _step_ref -> self reference cycle so the
            # finished process and its generator frame are reclaimed by
            # refcounting, not deferred to the cyclic GC.
            self._generator = None
            self._step_ref = None
            self.engine._schedule(0.0, self)
            return
        cls = target.__class__
        if cls is float or cls is int:
            if target < 0:
                raise SimulationError(f"negative timeout delay: {target}")
            # Inlined _schedule_call: this is the hot loop of every sweep.
            engine = self.engine
            engine._sequence += 1
            heappush(
                engine._heap, (engine.now + target, engine._sequence, self._step_ref)
            )
        elif isinstance(target, Event):
            target.add_callback(self._resume)
        elif isinstance(target, numbers.Real) and not isinstance(target, bool):
            # Slow path for numpy scalars (np.float64 etc.) leaking out of
            # array math -- same semantics as the exact-type fast path.
            # bool stays rejected: `yield flag` is a bug, not a delay.
            delay = float(target)
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            self.engine._schedule_call(delay, self._step_ref)
        else:
            raise SimulationError(
                f"process yielded {type(target).__name__}; processes must "
                "yield Events or float/int delays"
            )


class AllOf(Event):
    """Triggers when every child event has triggered.

    The value is the list of child values, in the order given.
    """

    __slots__ = ("_pending", "_children")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers; value is (index, value)."""

    __slots__ = ("_done",)

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._done = False
        children = list(events)
        if not children:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(children):
            child.add_callback(lambda event, index=index: self._on_child(index, event))

    def _on_child(self, index: int, event: Event) -> None:
        if not self._done:
            self._done = True
            self.succeed((index, event._value))


class Resource:
    """A counted resource with FIFO queueing (e.g. a pool of CPU cores)."""

    __slots__ = ("engine", "capacity", "_in_use", "_queue")

    def __init__(self, engine: "Engine", capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def acquire(self) -> Event:
        """Return an event that triggers once a unit is held by the caller."""
        event = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        if self._in_use == 0:
            raise SimulationError("release() without a matching acquire()")
        if self._queue:
            # Hand the unit directly to the next waiter; _in_use is unchanged.
            self._queue.popleft().succeed(self)
        else:
            self._in_use -= 1


class Engine:
    """Event loop: a heap of ``(time, sequence, target)`` entries.

    A target is either an :class:`Event` (triggered when popped) or a bare
    callable scheduled via :meth:`_schedule_call` (called with ``None``) --
    the allocation-free fast path used for plain-delay process resumption.
    """

    __slots__ = ("now", "_sequence", "_heap")

    def __init__(self):
        #: Current simulation time.  A plain attribute, not a property:
        #: the serving layer reads it on every span boundary and the
        #: property call overhead is visible in full-sweep profiles.
        self.now = 0.0
        self._sequence = 0
        self._heap: list[tuple[float, int, Any]] = []

    def _schedule(self, delay: float, event: Event) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def _schedule_call(self, delay: float, fn: Callable[[Any], None]) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, fn))

    # -- factory helpers ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    # -- execution -------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains (or ``until`` is reached).

        Returns the final simulation time.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                return until
            at, _, target = pop(heap)
            self.now = at
            if isinstance(target, Event):
                target._trigger()
            else:
                target(None)
        return self.now

"""A minimal discrete-event simulation kernel.

The serving substrate (Section III of the paper) is modeled as a set of
cooperating *processes* -- Python generators that ``yield`` events such as
timeouts, resource acquisitions, or other processes.  The kernel is a small
subset of the SimPy programming model, implemented here so the repository is
self-contained:

* :class:`Engine` owns the event heap and the simulation clock.
* :class:`Event` is a one-shot promise; callbacks run when it triggers.
* :class:`Process` drives a generator, resuming it whenever the event it
  yielded triggers, and is itself an event that triggers on completion.
* :class:`Resource` models a counted resource (e.g. a server's core pool)
  with FIFO queuing.

Determinism: events scheduled for the same timestamp are processed in
insertion order (a monotonic sequence number breaks ties), so repeated runs
with the same seeds produce identical traces.

Fast path: a process may yield a plain ``float``/``int`` delay instead of
an :class:`Timeout`.  The kernel then schedules the generator's resumption
directly -- no Event allocation, no callback registration, no trigger
dispatch -- which roughly halves the per-hop cost of the simulator's hot
loop.  The sequence number is taken at the same point either way, so a
``yield delay`` is scheduled identically to ``yield engine.timeout(delay)``
and replacing one with the other cannot reorder a simulation.  A process
may also yield :class:`At` to resume at an *absolute* time: fused
multi-segment waits compute intermediate times with the exact same float
additions the kernel would have performed hop by hop, then sleep once.

Kernel selection (:func:`make_engine`)
======================================

Two kernels share this event model:

* ``"reference"`` -- :class:`Engine`: one heap entry per event, resource
  grants always deferred through a delay-0 event.  This is the bit-exact
  historical kernel every regression artifact was recorded under.
* ``"batched"`` -- :class:`BatchedEngine`: delay-0 scheduling (process
  kick-offs, ``succeed()``, resource hand-offs) lands in an O(1) FIFO
  *now-queue* that is merged with the heap by ``(time, sequence)``, so
  same-timestamp cascades -- the dominant event class in serving sweeps --
  bypass heap churn entirely; and :class:`SyncResource` grants a free unit
  *synchronously* (the continuation runs inline instead of after a delay-0
  hop).

Canonical event ordering
========================

Both kernels order events by ``(time, sequence)`` with one monotonic
sequence counter, so *scheduling order at equal timestamps is execution
order* -- this is the canonical ordering the determinism contract in
:mod:`repro.core.rng` (rule 2) relies on: every RNG draw made from inside
the simulation happens at a position fixed by that ordering.  The batched
kernel preserves the canonical ordering exactly (the now-queue is FIFO and
sequence numbers are assigned at the same points), with one documented
exception: a synchronous resource grant runs the acquiring continuation
*earlier within the same timestamp* than the reference kernel would.
Code between an ``acquire()`` and its next positive-delay yield must
therefore not touch cross-process shared state (fabric jitter draws,
egress reservations) -- the serving layer obeys this, and the
old-kernel == new-kernel regression tests in
``tests/test_kernel_equivalence.py`` pin the result columns bit-identical
on every paper configuration, in both trace modes, chaos included.

Vectorized equivalence
----------------------

The ``vectorized`` kernel replays eligible runs (serial closed-loop,
chaos-free, AGGREGATE tracing) with no event loop at all, yet commits to
the *same* canonical ordering: in that regime every event's timestamp
and sequence position is a pure function of the precomputed per-request
plan, so the columnar evaluator (:mod:`repro.simulation.vectorized`)
can walk requests in arrival order and shard RPCs in issue order --
exactly the order the reference loop would pop them -- while computing
durations from numpy columns.  Floats stay bit-identical because every
accumulator is reduced with the same left-associated sequential adds the
chained DES yields perform (cumulative per-shard adds, never
``np.sum``, whose pairwise tree reassociates), and every RNG substream
(fabric jitter, clock skew) is drawn bulk-bufferedly in the same global
time order the scalar calls consume it.  The same regression suite pins
vectorized == reference on every eligible paper configuration, serial
and parallel.
"""

from __future__ import annotations

import heapq
import numbers
from collections import deque
from heapq import heappush
from typing import Any, Callable, Generator, Iterable, Optional, Union

ProcessGenerator = Generator[Union["Event", float, int], Any, Any]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Event:
    """A one-shot occurrence with an optional value.

    Events start *pending*; :meth:`succeed` schedules them to *trigger* at
    the current simulation time, after which their callbacks fire exactly
    once, in registration order.
    """

    __slots__ = ("engine", "callbacks", "_value", "_triggered", "_scheduled")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to trigger now, carrying ``value``."""
        if self._scheduled:
            raise SimulationError("event succeeded twice")
        self._value = value
        self._scheduled = True
        self.engine._schedule(0.0, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _trigger(self) -> None:
        self._triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class At:
    """Absolute-time yield target: resume the process at exactly ``time``.

    The fused fast paths compute a segment's end time with the same
    sequential float additions the kernel performs for chained plain-delay
    yields (``t1 = t0 + d1; t2 = t1 + d2; ...``) and then yield
    ``At(t2)`` once.  Yielding the *summed delay* instead would not be
    bit-identical (``t0 + (d1 + d2)`` associates differently), which is
    why this marker exists.  Scheduling takes the same sequence slot a
    plain-delay yield would, so fusing cannot reorder a simulation.
    """

    __slots__ = ("time",)

    def __init__(self, time: float):
        self.time = time


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self._value = value
        self._scheduled = True
        engine._schedule(delay, self)


class Process(Event):
    """Drives a generator; triggers with the generator's return value."""

    __slots__ = ("_generator", "_step_ref")

    def __init__(self, engine: "Engine", generator: ProcessGenerator):
        super().__init__(engine)
        # Annotated Any, not Optional: both are nulled on completion to
        # break the reference cycle, and the hot loop cannot afford
        # per-hop None checks to satisfy a narrower type.
        self._generator: Any = generator
        # The bound ``_step`` is created once and reused: the plain-delay
        # fast path schedules it on every hop, and allocating a fresh
        # bound-method object per hop is measurable in full sweeps.
        self._step_ref: Any = self._step
        # Kick off at the current time (not synchronously) so that process
        # creation order does not leak into execution order mid-callback.
        engine._schedule_call(0.0, self._step_ref)

    def _resume(self, event: Event) -> None:
        self._step(event._value)

    def _step(self, value: Any = None) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self._value = stop.value
            self._scheduled = True
            # Break the self -> _step_ref -> self reference cycle so the
            # finished process and its generator frame are reclaimed by
            # refcounting, not deferred to the cyclic GC.
            self._generator = None
            self._step_ref = None
            self.engine._schedule(0.0, self)
            return
        cls = target.__class__
        if cls is float or cls is int:
            if target < 0:
                raise SimulationError(f"negative timeout delay: {target}")
            # Inlined _schedule_call: this is the hot loop of every sweep.
            engine = self.engine
            engine._sequence += 1
            heappush(
                engine._heap, (engine.now + target, engine._sequence, self._step_ref)
            )
        elif cls is At:
            at = target.time
            engine = self.engine
            if at < engine.now:
                raise SimulationError(
                    f"At({at}) is in the past (now={engine.now})"
                )
            engine._sequence += 1
            heappush(engine._heap, (at, engine._sequence, self._step_ref))
        elif isinstance(target, Event):
            target.add_callback(self._resume)
        elif isinstance(target, numbers.Real) and not isinstance(target, bool):
            # Slow path for numpy scalars (np.float64 etc.) leaking out of
            # array math -- same semantics as the exact-type fast path.
            # bool stays rejected: `yield flag` is a bug, not a delay.
            delay = float(target)
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            self.engine._schedule_call(delay, self._step_ref)
        else:
            raise SimulationError(
                f"process yielded {type(target).__name__}; processes must "
                "yield Events or float/int delays"
            )


class AllOf(Event):
    """Triggers when every child event has triggered.

    The value is the list of child values, in the order given.
    """

    __slots__ = ("_pending", "_children")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers; value is (index, value)."""

    __slots__ = ("_done",)

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self._done = False
        children = list(events)
        if not children:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(children):
            child.add_callback(lambda event, index=index: self._on_child(index, event))

    def _on_child(self, index: int, event: Event) -> None:
        if not self._done:
            self._done = True
            self.succeed((index, event._value))


class Resource:
    """A counted resource with FIFO queueing (e.g. a pool of CPU cores)."""

    __slots__ = ("engine", "capacity", "_in_use", "_queue")

    def __init__(self, engine: "Engine", capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        # Events here; SyncResource.acquire_call also queues bare
        # callables, so the element type is Any.
        self._queue: deque[Any] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def acquire(self) -> Event:
        """Return an event that triggers once a unit is held by the caller."""
        event = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        if self._in_use == 0:
            raise SimulationError("release() without a matching acquire()")
        if self._queue:
            # Hand the unit directly to the next waiter; _in_use is unchanged.
            self._queue.popleft().succeed(self)
        else:
            self._in_use -= 1


class Engine:
    """Event loop: a heap of ``(time, sequence, target)`` entries.

    A target is either an :class:`Event` (triggered when popped) or a bare
    callable scheduled via :meth:`_schedule_call` (called with ``None``) --
    the allocation-free fast path used for plain-delay process resumption.
    """

    __slots__ = ("now", "_sequence", "_heap")

    def __init__(self):
        #: Current simulation time.  A plain attribute, not a property:
        #: the serving layer reads it on every span boundary and the
        #: property call overhead is visible in full-sweep profiles.
        self.now = 0.0
        self._sequence = 0
        self._heap: list[tuple[float, int, Any]] = []

    def _schedule(self, delay: float, event: Event) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def _schedule_call(self, delay: float, fn: Callable[[Any], None]) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, fn))

    # -- factory helpers ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    # -- execution -------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or the clock reaches ``until``.

        Boundary semantics (pinned by regression tests in
        ``tests/test_engine.py``):

        * The cutoff is **inclusive**: events scheduled at exactly
          ``until`` are processed before returning, so ``run(until=t)``
          followed by ``run()`` never drops, duplicates, or reorders
          events at the boundary.
        * On return with ``until``, ``now`` reads exactly ``until`` --
          *also* when the queue drained earlier (nothing can occur in an
          empty stretch, so the clock provably advanced).  Historically a
          drained queue left ``now`` at the last event, inconsistent with
          the early-stop branch.
        * Without ``until``, ``now`` reads the time of the last processed
          event.

        Returns the final simulation time.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                return until
            at, _, target = pop(heap)
            self.now = at
            if isinstance(target, Event):
                target._trigger()
            else:
                target(None)
        if until is not None and until > self.now:
            self.now = until
        return self.now


class SyncResource(Resource):
    """A :class:`Resource` whose free-unit grants are synchronous.

    :meth:`acquire` on a free unit returns an already-triggered event, so
    the acquiring process continues *inline* (zero scheduled events)
    instead of after a delay-0 hop -- the single largest per-hop saving in
    serving sweeps, where almost every acquire finds a free worker.
    Contended acquires still queue FIFO, and :meth:`release` still hands
    the unit to the next waiter through a deferred event, so wake-up order
    is identical to the reference kernel.

    Determinism: the inline continuation runs earlier *within the same
    timestamp* than under the reference :class:`Resource` (see "Canonical
    event ordering" in the module docstring).  Callers must not touch
    cross-process shared state between the acquire and their next yield.

    :meth:`acquire_call` is the allocation-free variant for callback-style
    state machines: it either grants synchronously (returns ``True``) or
    queues the callback for :meth:`release` to schedule.
    """

    __slots__ = ("_granted",)

    def __init__(self, engine: "Engine", capacity: int):
        super().__init__(engine, capacity)
        # One reusable pre-triggered grant event: triggered events never
        # mutate (callbacks on them fire immediately), so every
        # uncontended acquire can hand out the same instance.
        granted = Event(engine)
        granted._triggered = True
        granted._scheduled = True
        granted._value = self
        self._granted = granted

    def acquire(self) -> Event:
        """Grant synchronously when a unit is free; queue FIFO otherwise."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return self._granted
        event = Event(self.engine)
        self._queue.append(event)
        return event

    def acquire_call(self, fn: Callable[[Any], None]) -> bool:
        """Callback-style acquire: ``True`` = granted now, caller holds a
        unit and continues inline; ``False`` = ``fn`` queued FIFO and will
        be scheduled (holding a unit) when a release hands one over."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        self._queue.append(fn)
        return False

    def release(self) -> None:
        if self._in_use == 0:
            raise SimulationError("release() without a matching acquire()")
        if self._queue:
            # Hand the unit to the next waiter; _in_use is unchanged.  The
            # wake-up is deferred (delay-0) exactly like the reference
            # kernel's, so hand-off order is preserved across kernels.
            waiter = self._queue.popleft()
            if waiter.__class__ is Event:
                waiter.succeed(self)
            else:
                self.engine._schedule_call(0.0, waiter)
        else:
            self._in_use -= 1


class BatchedEngine(Engine):
    """Batched event loop: heap for timed events, FIFO queue for "now".

    Every delay-0 schedule -- process kick-offs, ``Event.succeed()``,
    resource hand-offs, ``AllOf``/``AnyOf`` completions -- appends to an
    O(1) *now-queue* instead of churning the heap.  The run loop merges
    the two by ``(time, sequence)``, which keeps the canonical event
    ordering bit-identical to the reference kernel: now-queue entries are
    naturally sorted (the sequence counter is monotonic and entries are
    only created at the current time), so the merge is a single
    comparison per dispatch, and a same-timestamp cascade drains as a
    batch of queue pops with zero ``log n`` factors.

    Resources created through :meth:`resource` are :class:`SyncResource`
    (synchronous free-unit grants); see the module docstring for the
    one documented ordering difference that introduces.
    """

    __slots__ = ("_now_queue",)

    def __init__(self):
        super().__init__()
        self._now_queue: deque[tuple[float, int, Any]] = deque()

    def _schedule(self, delay: float, event: Event) -> None:
        self._sequence += 1
        if delay == 0.0:
            self._now_queue.append((self.now, self._sequence, event))
        else:
            heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def _schedule_call(self, delay: float, fn: Callable[[Any], None]) -> None:
        self._sequence += 1
        if delay == 0.0:
            self._now_queue.append((self.now, self._sequence, fn))
        else:
            heapq.heappush(self._heap, (self.now + delay, self._sequence, fn))

    def schedule_call_at(self, at: float, fn: Callable[[Any], None]) -> None:
        """Schedule ``fn`` at absolute time ``at`` (the callback-machine
        analogue of yielding :class:`At`)."""
        if at < self.now:
            raise SimulationError(f"At({at}) is in the past (now={self.now})")
        self._sequence += 1
        if at == self.now:
            self._now_queue.append((at, self._sequence, fn))
        else:
            heapq.heappush(self._heap, (at, self._sequence, fn))

    def resource(self, capacity: int) -> Resource:
        return SyncResource(self, capacity)

    def run(self, until: Optional[float] = None) -> float:
        """Same contract and boundary semantics as :meth:`Engine.run`."""
        heap = self._heap
        queue = self._now_queue
        pop = heapq.heappop
        popleft = queue.popleft
        while True:
            if queue:
                # Merge by (time, sequence).  Queue entries sit at the
                # current time, heap entries at >= now, so the heap only
                # wins an exact-timestamp tie on an older sequence number
                # (e.g. a Timeout landing precisely on ``now``).
                if heap:
                    head = heap[0]
                    entry = queue[0]
                    if head[0] < entry[0] or (
                        head[0] == entry[0] and head[1] < entry[1]
                    ):
                        at, _, target = pop(heap)
                    else:
                        at, _, target = popleft()
                else:
                    at, _, target = popleft()
            elif heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return until
                at, _, target = pop(heap)
            else:
                break
            self.now = at
            if isinstance(target, Event):
                target._trigger()
            else:
                target(None)
        if until is not None and until > self.now:
            self.now = until
        return self.now


#: Selectable DES kernels (``ServingConfig.kernel`` / ``--kernel``).
#: ``"vectorized"`` is the columnar replay fast path: eligible runs
#: (serial closed-loop, chaos-free, AGGREGATE tracing) bypass the event
#: loop entirely (see :mod:`repro.simulation.vectorized` /
#: :mod:`repro.serving.columnar`); everything else falls back to the
#: batched kernel with a recorded reason (``RunResult.kernel_fallback``).
KERNELS = ("reference", "batched", "vectorized")

#: The kernel every surface defaults to; committed artifacts are
#: produced with it and the batched kernel is regression-pinned
#: bit-identical against it.
DEFAULT_KERNEL = "reference"


def make_engine(kernel: str = DEFAULT_KERNEL) -> Engine:
    """Construct the selected DES kernel (see ``KERNELS``).

    ``"vectorized"`` returns a :class:`BatchedEngine`: the columnar fast
    path never runs a DES loop (the experiment runner dispatches
    eligible runs to :func:`repro.serving.columnar.run_vectorized`
    before an engine turns over), so an *engine* constructed for the
    vectorized kernel is by definition the fallback path -- which is
    the batched kernel, bit-identical to the reference.
    """
    if kernel == "reference":
        return Engine()
    if kernel in ("batched", "vectorized"):
        return BatchedEngine()
    raise ValueError(
        f"unknown DES kernel {kernel!r}; expected one of {KERNELS}"
    )
